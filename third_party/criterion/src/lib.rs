//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset this workspace uses: [`Criterion`],
//! [`BenchmarkGroup`] (`sample_size`, `throughput`, `bench_function`,
//! `finish`), [`Bencher`] (`iter`, `iter_with_setup`), [`BenchmarkId`],
//! [`Throughput`], and the `criterion_group!` / `criterion_main!`
//! macros. Measurement is a simple adaptive wall-clock loop: warm up,
//! pick an iteration count that fills the measurement window, report
//! mean ns/iter (and MB/s when a throughput is set).
//!
//! Output: one human-readable line per benchmark on stdout. When the
//! `CRITERION_STUB_JSON` environment variable names a file, one JSON
//! object per benchmark is appended to it — the repo's bench-recording
//! scripts use this to capture machine-readable results.
//!
//! Environment knobs: `CRITERION_STUB_MEAS_MS` (measurement window per
//! benchmark, default 300 ms), `CRITERION_STUB_WARMUP_MS` (default
//! 100 ms). Passing `--test` (as `cargo test --benches` does) switches
//! to a single-iteration smoke run.

use std::fmt::Write as _;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Measured cost of one benchmark.
#[derive(Debug, Clone)]
struct Sample {
    mean_ns: f64,
    iters: u64,
    throughput: Option<Throughput>,
}

/// Per-iteration data volume, for MB/s reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes moved per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id that is just a parameter under the group's name.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher<'a> {
    smoke: bool,
    meas: Duration,
    warmup: Duration,
    result: &'a mut Option<Sample>,
}

impl Bencher<'_> {
    /// Measure `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke {
            std::hint::black_box(routine());
            *self.result = Some(Sample {
                mean_ns: 0.0,
                iters: 1,
                throughput: None,
            });
            return;
        }
        // Warm-up: also estimates per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warmup || warm_iters == 0 {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);
        let target = (self.meas.as_nanos() as f64 / est_ns).ceil().max(1.0) as u64;
        let start = Instant::now();
        for _ in 0..target {
            std::hint::black_box(routine());
        }
        let total = start.elapsed();
        *self.result = Some(Sample {
            mean_ns: total.as_nanos() as f64 / target as f64,
            iters: target,
            throughput: None,
        });
    }

    /// Measure `routine` with an untimed per-iteration `setup`.
    pub fn iter_with_setup<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
    ) {
        if self.smoke {
            std::hint::black_box(routine(setup()));
            *self.result = Some(Sample {
                mean_ns: 0.0,
                iters: 1,
                throughput: None,
            });
            return;
        }
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        let mut timed_ns = 0u128;
        while warm_start.elapsed() < self.warmup || warm_iters == 0 {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            timed_ns += t.elapsed().as_nanos();
            warm_iters += 1;
        }
        let est_ns = (timed_ns as f64 / warm_iters as f64).max(1.0);
        let target = (self.meas.as_nanos() as f64 / est_ns).ceil().max(1.0) as u64;
        let mut total_ns = 0u128;
        for _ in 0..target {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            total_ns += t.elapsed().as_nanos();
        }
        *self.result = Some(Sample {
            mean_ns: total_ns as f64 / target as f64,
            iters: target,
            throughput: None,
        });
    }
}

/// The harness entry point.
pub struct Criterion {
    smoke: bool,
    meas: Duration,
    warmup: Duration,
}

fn env_ms(var: &str, default_ms: u64) -> Duration {
    Duration::from_millis(
        std::env::var(var)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default_ms),
    )
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            smoke: std::env::args().any(|a| a == "--test"),
            meas: env_ms("CRITERION_STUB_MEAS_MS", 300),
            warmup: env_ms("CRITERION_STUB_WARMUP_MS", 100),
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let sample = self.run(f);
        report(&id.label, &sample, None);
        self
    }

    fn run<F: FnMut(&mut Bencher<'_>)>(&self, mut f: F) -> Sample {
        let mut result = None;
        let mut b = Bencher {
            smoke: self.smoke,
            meas: self.meas,
            warmup: self.warmup,
            result: &mut result,
        };
        f(&mut b);
        result.expect("benchmark closure must call Bencher::iter*")
    }
}

/// A group of benchmarks sharing a name and (optionally) a throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the stand-in sizes its own loop.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility (upstream: target measurement time).
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.criterion.meas = time;
        self
    }

    /// Set the per-iteration data volume for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let mut sample = self.criterion.run(f);
        sample.throughput = self.throughput;
        report(
            &format!("{}/{}", self.name, id.label),
            &sample,
            self.throughput,
        );
        self
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

fn report(label: &str, sample: &Sample, throughput: Option<Throughput>) {
    if sample.iters == 1 && sample.mean_ns == 0.0 {
        println!("bench {label:<56} smoke-tested (1 iter)");
        return;
    }
    let mut line = format!(
        "bench {label:<56} {:>12.0} ns/iter ({} iters)",
        sample.mean_ns, sample.iters
    );
    let mut mbs = None;
    if let Some(Throughput::Bytes(bytes)) = throughput {
        let v = bytes as f64 / (sample.mean_ns / 1e9) / (1024.0 * 1024.0);
        mbs = Some(v);
        let _ = write!(line, "  {v:>10.1} MB/s");
    }
    println!("{line}");
    if let Ok(path) = std::env::var("CRITERION_STUB_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let mut obj = format!(
                "{{\"id\":\"{}\",\"mean_ns\":{:.1},\"iters\":{}",
                label.replace('"', "'"),
                sample.mean_ns,
                sample.iters
            );
            if let Some(Throughput::Bytes(bytes)) = throughput {
                let _ = write!(
                    obj,
                    ",\"bytes_per_iter\":{},\"mb_per_s\":{:.2}",
                    bytes,
                    mbs.unwrap_or(0.0)
                );
            }
            obj.push('}');
            let _ = writeln!(f, "{obj}");
        }
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Opaque value barrier (re-export of the std hint).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let c = Criterion {
            smoke: false,
            meas: Duration::from_millis(5),
            warmup: Duration::from_millis(2),
        };
        let sample = c.run(|b| b.iter(|| std::hint::black_box(3u64).pow(7)));
        assert!(sample.iters >= 1);
        assert!(sample.mean_ns > 0.0);
    }

    #[test]
    fn iter_with_setup_excludes_setup() {
        let c = Criterion {
            smoke: false,
            meas: Duration::from_millis(5),
            warmup: Duration::from_millis(2),
        };
        let sample =
            c.run(|b| b.iter_with_setup(|| vec![1u8; 64], |v| std::hint::black_box(v.len())));
        assert!(sample.iters >= 1);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", "4MB").label, "f/4MB");
        assert_eq!(BenchmarkId::from_parameter(64).label, "64");
    }
}
