//! Offline stand-in for the `parking_lot` crate.
//!
//! Implements the subset this workspace uses: `Mutex` with
//! parking_lot's no-poison `lock()` signature, over `std::sync::Mutex`
//! (poison is swallowed, matching parking_lot's semantics of not
//! propagating panics through locks).

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard; unlocks on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Unlike
    /// `std::sync::Mutex`, poison from a panicking holder is ignored.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0usize));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = std::sync::Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
