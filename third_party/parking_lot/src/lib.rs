//! Offline stand-in for the `parking_lot` crate.
//!
//! Implements the subset this workspace uses: `Mutex` and `RwLock` with
//! parking_lot's no-poison `lock()`/`read()`/`write()` signatures, over
//! their `std::sync` counterparts (poison is swallowed, matching
//! parking_lot's semantics of not propagating panics through locks).

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard; unlocks on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Unlike
    /// `std::sync::Mutex`, poison from a panicking holder is ignored.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read RAII guard; unlocks on drop.
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// Exclusive-write RAII guard; unlocks on drop.
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, ignoring poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive write access, ignoring poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0usize));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = std::sync::Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
