//! `any::<T>()` — whole-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy covering the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_takes_both_values() {
        let mut rng = TestRng::for_test("bools");
        let s = any::<bool>();
        let draws: Vec<bool> = (0..64).map(|_| s.generate(&mut rng)).collect();
        assert!(draws.contains(&true) && draws.contains(&false));
    }
}
