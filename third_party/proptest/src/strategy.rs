//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    /// The stand-in yields only the derived strategy's value (the uses
    /// in this workspace thread the original through with `Just`).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Always produce a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// [`Strategy::prop_flat_map`] adapter.
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Box a strategy for heterogeneous collections (used by `prop_oneof!`).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct OneOf<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> OneOf<V> {
    /// Build from a non-empty arm list.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// References to strategies are strategies (lets the `proptest!` macro
/// and helpers generate without consuming).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// A `Vec` of strategies generates a `Vec` of values, index-aligned.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategies {
    ($(($($n:tt $T:ident),+))*) => {$(
        impl<$($T: Strategy),+> Strategy for ($($T,)+) {
            type Value = ($($T::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn just_clones() {
        let mut rng = TestRng::for_test("just");
        assert_eq!(Just(41usize).generate(&mut rng), 41);
    }

    #[test]
    fn vec_of_strategies_is_index_aligned() {
        let mut rng = TestRng::for_test("vecs");
        let per_dim: Vec<_> = vec![0usize..=0, 5usize..=5, 9usize..=9];
        assert_eq!(per_dim.generate(&mut rng), vec![0, 5, 9]);
    }

    #[test]
    fn flat_map_threads_values() {
        let mut rng = TestRng::for_test("fm");
        let s =
            (1usize..=4).prop_flat_map(|n| (Just(n), crate::collection::vec(0usize..10, n..=n)));
        for _ in 0..50 {
            let (n, v) = s.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
    }
}
