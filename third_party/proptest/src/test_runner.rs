//! Deterministic case generation: config + seeded RNG.

/// Configuration for a `proptest!` block. Only `cases` is consulted by
/// the stand-in; the other fields exist so upstream struct-literal
/// update syntax (`..ProptestConfig::default()`) keeps compiling.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; local rejects are not implemented.
    pub max_local_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
            max_local_rejects: 65536,
        }
    }
}

/// SplitMix64: tiny, fast, and deterministic. Seeded from the test name
/// so each property gets an independent, stable stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A stream seeded from `test_name` (FNV-1a of the name).
    pub fn for_test(test_name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)` (`bound` > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift; bias is negligible for test generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let mut a1 = TestRng::for_test("a");
        let mut a2 = TestRng::for_test("a");
        let mut b = TestRng::for_test("b");
        let xs: Vec<u64> = (0..8).map(|_| a1.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| a2.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
