//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the [`Strategy`](strategy::Strategy) trait
//! with `prop_map`/`prop_flat_map`, integer-range / tuple / `Vec` /
//! [`Just`](strategy::Just) strategies, `prop::collection::vec`, `any::<T>()`, the
//! `proptest!`, `prop_oneof!`, and `prop_assert*!` macros, and
//! [`ProptestConfig`](test_runner::ProptestConfig). Cases are generated from a fixed deterministic
//! seed (SplitMix64), so failures reproduce across runs; there is no
//! shrinking — `prop_assert*` panics like `assert*` with the failing
//! values in the message.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-importable API surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirrors `proptest::prelude::prop`: module-path access to the
    /// strategy constructors.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Define property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0usize..10, v in prop::collection::vec(any::<u8>(), 0..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident
        ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                // Values are drawn from a deterministic per-test stream,
                // so failures reproduce across runs.
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..config.cases {
                    $(let $arg = {
                        let __s = $strat;
                        $crate::strategy::Strategy::generate(&__s, &mut rng)
                    };)*
                    // The body sees owned values, as with real proptest.
                    $body
                }
            }
        )*
    };
}

/// Weighted-less `oneof`: pick one of the listed strategies uniformly.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![$($crate::strategy::boxed($s)),+])
    };
}

/// Assert inside a property body (panics — no shrinking in the stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u64> {
        (0u64..100).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 5u64..=5) {
            prop_assert!((3..10).contains(&x));
            prop_assert_eq!(y, 5);
        }

        #[test]
        fn map_and_flat_map(e in evens(), v in prop::collection::vec(any::<u8>(), 2..=4)) {
            prop_assert_eq!(e % 2, 0);
            prop_assert!(v.len() >= 2 && v.len() <= 4);
        }

        #[test]
        fn oneof_picks_listed(x in prop_oneof![Just(1usize), Just(7), 100usize..=200]) {
            prop_assert!(x == 1 || x == 7 || (100..=200).contains(&x));
        }

        #[test]
        fn tuples_and_nested(t in ((0u32..4, any::<u8>()), 1usize..=3)) {
            let ((tag, _byte), n) = t;
            prop_assert!(tag < 4 && (1..=3).contains(&n));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let draw = || {
            let mut rng = crate::test_runner::TestRng::for_test("fixed");
            let s = crate::collection::vec(0u64..1000, 3..=5);
            Strategy::generate(&s, &mut rng)
        };
        assert_eq!(draw(), draw());
    }
}
