//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length bounds for collection strategies, convertible from ranges.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive.
    hi: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

/// Generate a `Vec` whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span + 1) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_bounds() {
        let mut rng = TestRng::for_test("lens");
        let s = vec(0u8..=255, 2..5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let fixed = vec(0u8..=255, 3..=3);
        assert_eq!(fixed.generate(&mut rng).len(), 3);
    }
}
