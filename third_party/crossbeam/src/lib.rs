//! Offline stand-in for the `crossbeam` crate.
//!
//! Implements the subset this workspace uses — `channel::{unbounded,
//! Sender, Receiver, RecvTimeoutError, TryRecvError}` — by re-exporting
//! `std::sync::mpsc`, whose API for these items is identical. `Sender`
//! has been `Sync` since Rust 1.72, so the fabric's `Vec<Sender<_>>`
//! sharing pattern works unchanged.

pub mod channel {
    pub use std::sync::mpsc::{
        Receiver, RecvError, RecvTimeoutError, SendError, Sender, TryRecvError,
    };

    /// An unbounded MPSC channel (upstream crossbeam is MPMC; this
    /// workspace only ever uses one consumer per channel).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}
