//! Regression net for the paper reproduction: every figure's sweep must
//! stay inside the band the paper reports (with a small modeling
//! margin at the extremes). If a calibration or planner change pushes
//! any cell out of band, this test names the exact cell.

use panda_model::experiment::{figure_spec, run_figure_sized};
use panda_model::Sp2Machine;

/// (figure, band lo, band hi, sizes to check). Bands are the paper's
/// reported ranges widened by the modeling margin documented in
/// EXPERIMENTS.md.
const BANDS: &[(u32, f64, f64, &[usize])] = &[
    // Figures 3/4: 85-98 % of AIX peak (margin: −5 % at the small end).
    (3, 0.80, 1.00, &[16, 64, 512]),
    (4, 0.80, 1.00, &[16, 64, 512]),
    // Figures 5/6: ~90 % of MPI peak, declining at small sizes with
    // startup; the paper's own small-size points fall well below 0.9.
    (5, 0.60, 0.95, &[16, 64, 512]),
    (6, 0.60, 0.95, &[16, 64, 512]),
    // Figures 7/8: 68-95 % of AIX peak.
    (7, 0.68, 0.95, &[16, 64, 512]),
    (8, 0.68, 0.95, &[16, 64, 512]),
    // Figure 9: 38-86 % of MPI peak.
    (9, 0.38, 0.86, &[16, 64, 512]),
];

#[test]
fn all_figures_stay_in_their_paper_bands() {
    let machine = Sp2Machine::nas_sp2();
    for &(figure, lo, hi, sizes) in BANDS {
        let spec = figure_spec(figure);
        for point in run_figure_sized(&machine, &spec, sizes) {
            assert!(
                point.report.normalized >= lo && point.report.normalized <= hi,
                "figure {figure}, {} i/o nodes, {} MB: normalized {:.3} outside [{lo}, {hi}]",
                point.io_nodes,
                point.array_mb,
                point.report.normalized
            );
        }
    }
}

#[test]
fn large_size_points_hit_the_paper_sweet_spot() {
    // At 512 MB the paper's curves sit near their tops; pin the exact
    // sub-bands so drift in either direction is caught.
    let machine = Sp2Machine::nas_sp2();
    let check = |figure: u32, lo: f64, hi: f64| {
        let spec = figure_spec(figure);
        for point in run_figure_sized(&machine, &spec, &[512]) {
            assert!(
                point.report.normalized >= lo && point.report.normalized <= hi,
                "figure {figure} @512MB/{} io: {:.3} outside [{lo}, {hi}]",
                point.io_nodes,
                point.report.normalized
            );
        }
    };
    check(3, 0.88, 0.95); // read, natural, disk-bound
    check(4, 0.90, 0.96); // write, natural, disk-bound
    check(5, 0.87, 0.93); // read, fast disk
    check(6, 0.87, 0.93); // write, fast disk
    check(7, 0.80, 0.90); // read, traditional (below fig 3)
    check(8, 0.84, 0.92); // write, traditional (below fig 4)
    check(9, 0.50, 0.65); // write, traditional, fast disk
}

#[test]
fn ordering_relations_between_figures_hold() {
    // The qualitative relations the paper's narrative depends on.
    let machine = Sp2Machine::nas_sp2();
    let norm = |figure: u32| {
        let spec = figure_spec(figure);
        run_figure_sized(&machine, &spec, &[512])
            .into_iter()
            .map(|p| p.report.normalized)
            .fold(0.0f64, f64::max)
    };
    // Traditional order is slower than natural chunking, on both paths.
    assert!(norm(7) < norm(3));
    assert!(norm(8) < norm(4));
    // Removing the disk exposes reorganization: figure 9 sits far below
    // the natural-chunking fast-disk figures.
    assert!(norm(9) < norm(6) - 0.2);
}
