//! Cross-validation: the performance model and the real runtime must
//! agree *exactly* on the protocol's message counts and byte volumes.
//!
//! The model's credibility rests on replaying the implementation's
//! schedule; these tests run the same collective through both the
//! threaded runtime (counting real messages per tag on the fabric) and
//! the DES (counting simulated messages), and require equality:
//!
//! * write path: real `FETCH` messages == model control messages, and
//!   real `DATA` messages == model data messages;
//! * read path: real `DATA` messages == model data messages;
//! * `DATA` payload bytes == total array bytes in both.

use std::sync::Arc;

use panda_core::protocol::tags;
use panda_core::{ArrayMeta, OpKind, PandaConfig, PandaSystem, ReadSet, WriteSet};
use panda_fs::{FileSystem, MemFs};
use panda_model::{simulate, CollectiveSpec, Sp2Machine};
use panda_schema::{DataSchema, Dist, ElementType, Mesh, Shape};

struct Case {
    name: &'static str,
    meta: ArrayMeta,
    servers: usize,
    subchunk: usize,
}

fn cases() -> Vec<Case> {
    let shape = Shape::new(&[16, 16, 8]).unwrap();
    let mem = DataSchema::block_all(
        shape.clone(),
        ElementType::F64,
        Mesh::new(&[2, 2, 2]).unwrap(),
    )
    .unwrap();
    let natural = ArrayMeta::natural("n", mem.clone()).unwrap();
    let traditional = ArrayMeta::new(
        "t",
        mem.clone(),
        DataSchema::traditional_order(shape.clone(), ElementType::F64, 3).unwrap(),
    )
    .unwrap();
    let columns = ArrayMeta::new(
        "c",
        mem,
        DataSchema::new(
            shape,
            ElementType::F64,
            &[Dist::Star, Dist::Block, Dist::Block],
            Mesh::new(&[3, 2]).unwrap(),
        )
        .unwrap(),
    )
    .unwrap();
    vec![
        Case {
            name: "natural",
            meta: natural,
            servers: 3,
            subchunk: 512,
        },
        Case {
            name: "traditional",
            meta: traditional,
            servers: 3,
            subchunk: 1024,
        },
        Case {
            name: "columns",
            meta: columns,
            servers: 2,
            subchunk: 256,
        },
    ]
}

fn run_real(
    meta: &ArrayMeta,
    servers: usize,
    subchunk: usize,
    op: OpKind,
    depth: usize,
) -> (u64, u64, u64) {
    let config = PandaConfig::new(meta.num_clients(), servers)
        .with_subchunk_bytes(subchunk)
        .with_pipeline_depth(depth);
    let (system, mut clients) = PandaSystem::builder()
        .config(config.clone())
        .launch(|_| Arc::new(MemFs::new()) as Arc<dyn FileSystem>)
        .unwrap();
    let datas: Vec<Vec<u8>> = (0..meta.num_clients())
        .map(|r| vec![1u8; meta.client_bytes(r)])
        .collect();
    // Write first (also the file source for the read case).
    std::thread::scope(|s| {
        for (client, data) in clients.iter_mut().zip(&datas) {
            s.spawn(move || {
                client
                    .write_set(&WriteSet::new().array(meta, "x", data.as_slice()))
                    .unwrap()
            });
        }
    });
    let fetch_w = system.fabric_stats.tag_counts(tags::FETCH);
    let data_w = system.fabric_stats.tag_counts(tags::DATA);

    if matches!(op, OpKind::Write) {
        system.shutdown(clients).unwrap();
        return (fetch_w.msgs, data_w.msgs, data_w.bytes);
    }

    std::thread::scope(|s| {
        for (client, data) in clients.iter_mut().zip(&datas) {
            let mut buf = vec![0u8; data.len()];
            s.spawn(move || {
                client
                    .read_set(&mut ReadSet::new().array(meta, "x", buf.as_mut_slice()))
                    .unwrap();
            });
        }
    });
    let data_r = system.fabric_stats.tag_counts(tags::DATA);
    system.shutdown(clients).unwrap();
    // Read-path DATA = total minus the write-phase share. Payload
    // includes the encoded region header; compare message counts only
    // for reads (byte framing is checked on the write path).
    (0, data_r.msgs - data_w.msgs, 0)
}

fn run_model(meta: &ArrayMeta, servers: usize, subchunk: usize, op: OpKind) -> (u64, u64, u64) {
    let m = Sp2Machine::nas_sp2();
    let r = simulate(
        &m,
        &CollectiveSpec {
            arrays: vec![meta.clone()],
            op,
            num_servers: servers,
            subchunk_bytes: subchunk,
            fast_disk: false,
            section: None,
        },
    );
    (r.ctrl_msgs, r.data_msgs, r.total_bytes)
}

#[test]
fn write_path_message_counts_match_exactly() {
    for case in cases() {
        let (real_fetch, real_data, real_data_bytes) =
            run_real(&case.meta, case.servers, case.subchunk, OpKind::Write, 1);
        let (model_ctrl, model_data, model_bytes) =
            run_model(&case.meta, case.servers, case.subchunk, OpKind::Write);
        assert_eq!(
            real_fetch, model_ctrl,
            "{}: FETCH count vs model control msgs",
            case.name
        );
        assert_eq!(
            real_data, model_data,
            "{}: DATA count vs model data msgs",
            case.name
        );
        // Real DATA payloads carry an encoded region header on top of
        // the raw array bytes; the array bytes themselves must match.
        assert!(
            real_data_bytes >= model_bytes,
            "{}: payload bytes at least the array bytes",
            case.name
        );
        assert_eq!(model_bytes, case.meta.total_bytes() as u64, "{}", case.name);
    }
}

#[test]
fn section_read_message_counts_match_exactly() {
    use panda_schema::Region;
    for case in cases() {
        let section = Region::new(&[2, 3, 1], &[11, 14, 7]).unwrap();
        // Real runtime.
        let config = PandaConfig::new(case.meta.num_clients(), case.servers)
            .with_subchunk_bytes(case.subchunk);
        let (system, mut clients) = PandaSystem::builder()
            .config(config.clone())
            .launch(|_| Arc::new(MemFs::new()) as Arc<dyn FileSystem>)
            .unwrap();
        let datas: Vec<Vec<u8>> = (0..case.meta.num_clients())
            .map(|r| vec![1u8; case.meta.client_bytes(r)])
            .collect();
        std::thread::scope(|s| {
            for (client, data) in clients.iter_mut().zip(&datas) {
                let meta = &case.meta;
                s.spawn(move || {
                    client
                        .write_set(&WriteSet::new().array(meta, "x", data.as_slice()))
                        .unwrap()
                });
            }
        });
        let data_before = system.fabric_stats.tag_counts(tags::DATA);
        std::thread::scope(|s| {
            for client in clients.iter_mut() {
                let (meta, section) = (&case.meta, &section);
                s.spawn(move || {
                    let mut buf = vec![0u8; client.section_bytes(meta, section)];
                    client
                        .read_set(&mut ReadSet::new().section(meta, "x", section.clone(), &mut buf))
                        .unwrap();
                });
            }
        });
        let real_data = system.fabric_stats.tag_counts(tags::DATA).msgs - data_before.msgs;
        system.shutdown(clients).unwrap();

        // Model with the same section.
        let m = Sp2Machine::nas_sp2();
        let r = simulate(
            &m,
            &CollectiveSpec {
                arrays: vec![case.meta.clone()],
                op: OpKind::Read,
                num_servers: case.servers,
                subchunk_bytes: case.subchunk,
                fast_disk: false,
                section: Some(section.clone()),
            },
        );
        assert_eq!(real_data, r.data_msgs, "{}: section DATA count", case.name);
        // A proper section moves fewer bytes than the whole array.
        assert!(
            r.total_bytes < case.meta.total_bytes() as u64,
            "{}",
            case.name
        );
    }
}

#[test]
fn pipelined_runtime_sends_the_same_message_set() {
    // Pipelining reorders work in time but must not change *what*
    // crosses the fabric: at depth 3 the FETCH/DATA counts still match
    // the model exactly, so the model's replay stays valid for
    // pipelined deployments.
    for case in cases() {
        let (real_fetch, real_data, _) =
            run_real(&case.meta, case.servers, case.subchunk, OpKind::Write, 3);
        let (model_ctrl, model_data, _) =
            run_model(&case.meta, case.servers, case.subchunk, OpKind::Write);
        assert_eq!(
            real_fetch, model_ctrl,
            "{}: depth-3 FETCH count vs model control msgs",
            case.name
        );
        assert_eq!(
            real_data, model_data,
            "{}: depth-3 write DATA count vs model",
            case.name
        );

        let (_, real_data, _) = run_real(&case.meta, case.servers, case.subchunk, OpKind::Read, 3);
        let (_, model_data, _) = run_model(&case.meta, case.servers, case.subchunk, OpKind::Read);
        assert_eq!(
            real_data, model_data,
            "{}: depth-3 read DATA count vs model",
            case.name
        );
    }
}

#[test]
fn read_path_message_counts_match_exactly() {
    for case in cases() {
        let (_, real_data, _) = run_real(&case.meta, case.servers, case.subchunk, OpKind::Read, 1);
        let (model_ctrl, model_data, _) =
            run_model(&case.meta, case.servers, case.subchunk, OpKind::Read);
        assert_eq!(
            real_data, model_data,
            "{}: read DATA count vs model",
            case.name
        );
        // The read path sends no per-piece control messages.
        assert_eq!(model_ctrl, 0, "{}", case.name);
    }
}
