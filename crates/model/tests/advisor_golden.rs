//! Golden test: the committed `results/advisor.txt` is byte-identical
//! to what the advisor renders today. The artifact and the `advisor`
//! bench bin share one rendering function, so when the DES or the
//! machine constants change, this test fails until the artifact is
//! regenerated (`cargo run --release -p panda-bench --bin advisor >
//! results/advisor.txt`).

use panda_model::advisor::flagship_report;

#[test]
fn committed_advisor_report_matches_the_des() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/advisor.txt");
    let committed = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let current = flagship_report();
    assert!(
        committed == current,
        "results/advisor.txt is stale; regenerate with \
         `cargo run --release -p panda-bench --bin advisor > results/advisor.txt`"
    );
}
