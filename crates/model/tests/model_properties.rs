//! Property tests on the performance model: physical sanity bounds
//! that must hold for *any* configuration, not just the paper's grid.

use panda_core::OpKind;
use panda_fs::aix::{IoDirection, MB};
use panda_model::experiment::{paper_array, DiskKind};
use panda_model::{simulate, CollectiveSpec, Sp2Machine};
use proptest::prelude::*;

fn spec_strategy() -> impl Strategy<Value = CollectiveSpec> {
    (
        prop_oneof![Just(2usize), Just(4), Just(8), Just(16), Just(32)],
        prop_oneof![Just(8usize), Just(16), Just(24), Just(32)],
        1usize..=8,
        prop_oneof![Just(DiskKind::Natural), Just(DiskKind::Traditional)],
        prop_oneof![Just(OpKind::Write), Just(OpKind::Read)],
        any::<bool>(),
        prop_oneof![Just(1usize << 18), Just(1 << 20), Just(1 << 22)],
    )
        .prop_map(
            |(mb, compute, servers, disk, op, fast, subchunk)| CollectiveSpec {
                arrays: vec![paper_array(mb, compute, servers, disk)],
                op,
                num_servers: servers,
                subchunk_bytes: subchunk,
                fast_disk: fast,
                section: None,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Throughput can never exceed the machine's hard capacities, and
    /// elapsed time includes at least the startup overhead plus the
    /// serial transfer lower bound.
    #[test]
    fn physical_bounds_hold(spec in spec_strategy()) {
        let m = Sp2Machine::nas_sp2();
        let r = simulate(&m, &spec);
        prop_assert!(r.elapsed > m.startup);
        // Per-I/O-node throughput is bounded by the network; with real
        // disks also by the raw disk rate.
        prop_assert!(r.per_io_node_mbs <= m.net.bandwidth / MB + 1e-9);
        if !spec.fast_disk {
            prop_assert!(r.per_io_node_mbs <= m.disk.raw_bandwidth / MB + 1e-9);
        }
        // Normalization divides by the throughput of 1 MB requests
        // (the paper's baseline); runs configured with larger subchunks
        // can exceed it, but never the raw-hardware ratio.
        let max_norm = if spec.fast_disk {
            1.0
        } else {
            m.disk.raw_bandwidth / (m.disk.peak_mbs(IoDirection::Write).min(
                m.disk.peak_mbs(IoDirection::Read)) * MB)
        };
        prop_assert!(r.normalized > 0.0 && r.normalized <= max_norm + 1e-9,
            "normalized {} > {max_norm}", r.normalized);
        // The DES moved exactly the array bytes.
        prop_assert_eq!(r.total_bytes, spec.arrays[0].total_bytes() as u64);
        // Message accounting: one data message per piece ≥ one per
        // subchunk; bytes/messages consistent.
        prop_assert!(r.data_msgs > 0);
        if matches!(spec.op, OpKind::Write) {
            prop_assert_eq!(r.ctrl_msgs, r.data_msgs);
        } else {
            prop_assert_eq!(r.ctrl_msgs, 0);
        }
    }

    /// Elapsed time is monotone (never decreases) in array size, all
    /// else equal.
    #[test]
    fn elapsed_monotone_in_size(
        servers in 1usize..=8,
        fast in any::<bool>(),
        op in prop_oneof![Just(OpKind::Write), Just(OpKind::Read)],
    ) {
        let m = Sp2Machine::nas_sp2();
        let mut prev = 0.0f64;
        for mb in [16usize, 32, 64, 128] {
            let r = simulate(&m, &CollectiveSpec {
                arrays: vec![paper_array(mb, 8, servers, DiskKind::Natural)],
                op,
                num_servers: servers,
                subchunk_bytes: 1 << 20,
                fast_disk: fast,
                section: None,
            });
            prop_assert!(r.elapsed >= prev, "mb={mb}: {} < {prev}", r.elapsed);
            prev = r.elapsed;
        }
    }

    /// Adding I/O nodes never hurts (elapsed is non-increasing in the
    /// number of servers for a fixed workload).
    #[test]
    fn more_io_nodes_never_slower(
        mb in prop_oneof![Just(32usize), Just(64), Just(128)],
        fast in any::<bool>(),
    ) {
        let m = Sp2Machine::nas_sp2();
        let mut prev = f64::INFINITY;
        for servers in [1usize, 2, 4, 8] {
            let r = simulate(&m, &CollectiveSpec {
                arrays: vec![paper_array(mb, 8, servers, DiskKind::Natural)],
                op: OpKind::Write,
                num_servers: servers,
                subchunk_bytes: 1 << 20,
                fast_disk: fast,
                section: None,
            });
            prop_assert!(
                r.elapsed <= prev * 1.001,
                "servers={servers}: {} > {prev}",
                r.elapsed
            );
            prev = r.elapsed;
        }
    }

    /// Natural chunking is never slower than a reorganizing schema on
    /// the same workload (the paper's headline comparison) — PROVIDED
    /// natural chunks are at least subchunk-sized. (A real model
    /// finding: when memory chunks shrink below 1 MB, natural chunking
    /// inherits sub-1 MB disk writes and the AIX small-write penalty,
    /// while a traditional-order slab keeps writing full 1 MB
    /// subchunks and wins. The paper's configurations keep chunks
    /// ≥ 0.5 MB and its 85-98 % floor at the small end is consistent
    /// with exactly this effect.)
    #[test]
    fn natural_no_slower_than_traditional_when_chunks_are_large(
        mb in prop_oneof![Just(64usize), Just(128), Just(256)],
        servers in prop_oneof![Just(2usize), Just(4), Just(8)],
        fast in any::<bool>(),
        op in prop_oneof![Just(OpKind::Write), Just(OpKind::Read)],
    ) {
        // 32 compute nodes → chunk = mb/32 MB; keep chunks ≥ 2 MB and
        // the server count dividing the 32 chunks (balanced round
        // robin; see `round_robin_imbalance_is_real` for the other
        // case, which the paper discusses in §3).
        let m = Sp2Machine::nas_sp2();
        let run = |disk| simulate(&m, &CollectiveSpec {
            arrays: vec![paper_array(mb, 32, servers, disk)],
            op,
            num_servers: servers,
            subchunk_bytes: 1 << 20,
            fast_disk: fast,
            section: None,
        }).elapsed;
        let natural = run(DiskKind::Natural);
        let traditional = run(DiskKind::Traditional);
        prop_assert!(
            natural <= traditional * 1.001,
            "natural {natural} vs traditional {traditional}"
        );
    }

    /// Paper §3: "array chunks may be unevenly distributed across i/o
    /// nodes when the number of i/o nodes does not evenly divide the
    /// number of compute nodes ... a schema such as the traditional
    /// order schemas ... can be chosen which distributes the data
    /// evenly." The model reproduces this: with 5 servers over 32
    /// chunks, natural chunking loses to the perfectly balanced
    /// traditional slabs.
    #[test]
    fn round_robin_imbalance_is_real(
        mb in prop_oneof![Just(64usize), Just(128)],
    ) {
        let m = Sp2Machine::nas_sp2();
        let run = |disk| simulate(&m, &CollectiveSpec {
            arrays: vec![paper_array(mb, 32, 5, disk)],
            op: OpKind::Write,
            num_servers: 5,
            subchunk_bytes: 1 << 20,
            fast_disk: false,
            section: None,
        }).elapsed;
        let natural = run(DiskKind::Natural);
        let traditional = run(DiskKind::Traditional);
        prop_assert!(natural > traditional, "{natural} vs {traditional}");
        // ... and the imbalance is bounded by ceil(32/5)/(32/5) = 1.09.
        prop_assert!(natural < traditional * 1.15);
    }

    /// The AIX model's request-size curve is monotone: larger requests
    /// never have lower throughput.
    #[test]
    fn aix_throughput_monotone(dir in prop_oneof![Just(IoDirection::Read), Just(IoDirection::Write)]) {
        let m = Sp2Machine::nas_sp2();
        let mut prev = 0.0;
        for kb in [4usize, 16, 64, 256, 1024, 4096] {
            let t = m.disk.throughput_mbs(kb << 10, dir);
            prop_assert!(t >= prev);
            prev = t;
        }
    }
}
