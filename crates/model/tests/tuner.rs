//! End-to-end auto-tuner tests: calibrate against a live deployment,
//! check the closed loop (probe → fit → search → apply), and
//! cross-validate the fitted model against the discrete-event
//! simulation.

use std::sync::Arc;

use panda_core::{
    ArrayMeta, ConfigIssue, OpKind, PandaConfig, PandaError, PandaSystem, ReadSet, TunedConfig,
    WriteSet,
};
use panda_fs::MemFs;
use panda_model::{simulate, Calibrate, CollectiveSpec, TunerOptions};
use panda_obs::TimelineRecorder;
use panda_schema::{DataSchema, ElementType, Mesh, Shape};

fn session_meta(rows: usize) -> ArrayMeta {
    let shape = Shape::new(&[rows, 128]).unwrap();
    let mem = DataSchema::block_all(shape.clone(), ElementType::F64, Mesh::new(&[1, 1]).unwrap())
        .unwrap();
    let disk = DataSchema::traditional_order(shape, ElementType::F64, 2).unwrap();
    ArrayMeta::new("tuned", mem, disk).unwrap()
}

fn service_config() -> PandaConfig {
    PandaConfig::new(2, 2)
        .with_subchunk_bytes(32 << 10)
        .with_recorder(Arc::new(TimelineRecorder::with_capacity(1 << 16)))
}

#[test]
fn calibrate_fits_searches_and_applies() {
    let meta = session_meta(256);
    let mut service = PandaSystem::builder()
        .config(service_config())
        .serve(|_| Arc::new(MemFs::new()))
        .unwrap();

    let opts = TunerOptions::default();
    let calibration = service.calibrate(&meta, &opts).unwrap();

    // The probes actually measured something.
    assert!(calibration.costs.write.disk.eval(64 << 10) > 0.0);
    assert_eq!(calibration.costs.num_servers, 2);
    assert_eq!(calibration.costs.probe_io_workers, 2);

    // The full grid was scored (PerCollective policy: nothing pruned),
    // sorted best-first, and the winner validates against the policy.
    let grid = opts.depths.len() * opts.io_workers.len() * opts.subchunk_bytes.len();
    assert_eq!(calibration.candidates.len(), grid);
    let preds: Vec<f64> = calibration
        .candidates
        .iter()
        .map(|c| c.predicted_s)
        .collect();
    assert!(preds.windows(2).all(|w| w[0] <= w[1]));
    assert!(preds.iter().all(|p| p.is_finite() && *p > 0.0));
    let tuned = calibration.tuned;
    assert_eq!(tuned.predicted_s, preds[0]);
    tuned.validate(panda_fs::SyncPolicy::default()).unwrap();

    // Predict() agrees with the scored grid entry.
    let best = &calibration.candidates[0];
    let again = calibration.predict(
        &meta,
        OpKind::Write,
        best.subchunk_bytes,
        best.pipeline_depth,
        best.io_workers,
    );
    assert!((again - best.write_s).abs() < 1e-12);

    // Probe files were cleaned up.
    for fs in &service.system().filesystems {
        assert!(fs.list().iter().all(|f| !f.contains("__panda_probe")));
    }

    // Apply the winner online: the tuned request runs and round-trips.
    let mut session = service.open().unwrap();
    let data: Vec<u8> = (0..meta.client_bytes(0)).map(|i| i as u8).collect();
    session
        .write_set(&WriteSet::new().array(&meta, "t0", &data).tuned(&tuned))
        .unwrap();
    let mut back = vec![0u8; data.len()];
    session
        .read_set(&mut ReadSet::new().array(&meta, "t0", &mut back).tuned(&tuned))
        .unwrap();
    assert_eq!(back, data);

    // And offline: the winner folds into the next launch's config.
    let next = tuned.apply(PandaConfig::new(2, 2));
    assert_eq!(next.subchunk_bytes, tuned.subchunk_bytes);
    assert_eq!(next.pipeline_depth, tuned.pipeline_depth);
    assert_eq!(next.io_workers, tuned.io_workers);

    service.shutdown(vec![session]).unwrap();
}

#[test]
fn fitted_model_cross_validates_against_the_simulation() {
    let meta = session_meta(256);
    let mut service = PandaSystem::builder()
        .config(service_config())
        .serve(|_| Arc::new(MemFs::new()))
        .unwrap();
    let calibration = service.calibrate(&meta, &TunerOptions::default()).unwrap();
    service.shutdown(std::iter::empty()).unwrap();

    // Replay a candidate on the fitted machine through the DES and
    // compare with the analytical prediction. The two models are
    // independent codepaths over the same constants; they should agree
    // to well within an order of magnitude (the DES models per-piece
    // messaging the analytical walk folds into the step overhead).
    let machine = calibration.fitted_machine();
    for &(sub, depth) in &[(32 << 10, 1usize), (64 << 10, 2), (128 << 10, 4)] {
        let spec = CollectiveSpec {
            arrays: vec![meta.clone()],
            op: OpKind::Write,
            num_servers: 2,
            subchunk_bytes: sub,
            fast_disk: false,
            section: None,
        };
        let sim_s = simulate(&machine.clone().with_pipeline_depth(depth), &spec).elapsed;
        let analytic_s = calibration.predict(&meta, OpKind::Write, sub, depth, 1);
        assert!(sim_s > 0.0 && analytic_s > 0.0);
        let ratio = analytic_s / sim_s;
        assert!(
            (0.1..10.0).contains(&ratio),
            "analytic {analytic_s} vs sim {sim_s} at sub={sub} depth={depth}"
        );
    }
}

#[test]
fn calibration_without_a_timeline_is_a_typed_error() {
    let meta = session_meta(64);
    // Default recorder is the NullRecorder: no timeline.
    let mut service = PandaSystem::builder()
        .config(PandaConfig::new(1, 1))
        .serve(|_| Arc::new(MemFs::new()))
        .unwrap();
    let err = service
        .calibrate(&meta, &TunerOptions::default())
        .unwrap_err();
    assert!(matches!(
        err,
        PandaError::Config {
            issue: ConfigIssue::CalibrationNeedsTimeline
        }
    ));
    // The borrowed probe slot was returned.
    assert_eq!(service.slots_remaining(), 1);
    service.shutdown(std::iter::empty()).unwrap();
}

#[test]
fn invalid_overrides_are_rejected_at_submit_time() {
    let meta = session_meta(64);
    let mut service = PandaSystem::builder()
        .config(PandaConfig::new(1, 1))
        .serve(|_| Arc::new(MemFs::new()))
        .unwrap();
    let mut session = service.open().unwrap();
    let data = vec![1u8; meta.client_bytes(0)];

    let zero_sub = TunedConfig::new(0, 1, 1);
    let err = session
        .write_set(&WriteSet::new().array(&meta, "t", &data).tuned(&zero_sub))
        .unwrap_err();
    assert!(matches!(
        err,
        PandaError::Config {
            issue: ConfigIssue::ZeroSubchunkBytes
        }
    ));

    let zero_depth = TunedConfig::new(4096, 0, 1);
    let err = session
        .write_set(&WriteSet::new().array(&meta, "t", &data).tuned(&zero_depth))
        .unwrap_err();
    assert!(matches!(
        err,
        PandaError::Config {
            issue: ConfigIssue::ZeroPipelineDepth
        }
    ));

    let zero_workers = TunedConfig::new(4096, 1, 0);
    let err = session
        .write_set(
            &WriteSet::new()
                .array(&meta, "t", &data)
                .tuned(&zero_workers),
        )
        .unwrap_err();
    assert!(matches!(
        err,
        PandaError::Config {
            issue: ConfigIssue::ZeroIoWorkers
        }
    ));

    // A rejected submit leaves the session usable: a valid override
    // still goes through.
    let ok = TunedConfig::new(4096, 2, 1);
    session
        .write_set(&WriteSet::new().array(&meta, "t", &data).tuned(&ok))
        .unwrap();
    service.shutdown(vec![session]).unwrap();
}

#[test]
fn per_write_sync_rejects_deep_overrides_at_submit_time() {
    let meta = session_meta(64);
    let mut service = PandaSystem::builder()
        .config(PandaConfig::new(1, 1).with_sync_policy(panda_fs::SyncPolicy::PerWrite))
        .serve(|_| Arc::new(MemFs::new()))
        .unwrap();
    let mut session = service.open().unwrap();
    let data = vec![1u8; meta.client_bytes(0)];
    let deep = TunedConfig::new(4096, 4, 1);
    let err = session
        .write_set(&WriteSet::new().array(&meta, "t", &data).tuned(&deep))
        .unwrap_err();
    assert!(matches!(
        err,
        PandaError::Config {
            issue: ConfigIssue::SyncPolicyConflict { pipeline_depth: 4 }
        }
    ));
    service.shutdown(vec![session]).unwrap();
}
