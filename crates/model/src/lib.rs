//! # panda-model — calibrated SP2 performance model for Panda
//!
//! The paper's evaluation ran on the NAS IBM SP2; this crate replays the
//! *real* Panda planner's schedule (from `panda-core::plan`) through a
//! discrete-event simulation (`panda-sim`) of that machine, calibrated
//! from the paper's Table 1:
//!
//! | parameter | value | source |
//! |---|---|---|
//! | message latency | 43 µs | Table 1, NAS-measured |
//! | message bandwidth | 34 MB/s | Table 1, NAS-measured (MPI-F peak) |
//! | AIX read peak (1 MB requests) | 2.85 MB/s | Table 1, measured |
//! | AIX write peak (1 MB requests) | 2.23 MB/s | Table 1, measured |
//! | raw disk transfer | 3.0 MB/s | Table 1 |
//! | Panda startup overhead | 0.013 s | §3 |
//!
//! Two parameters are not in the paper and are calibrated to the
//! reported throughput bands (documented in `EXPERIMENTS.md`): the
//! per-message software overhead of MPI-F for large messages, and the
//! effective memory-copy bandwidth for strided gather/scatter during
//! reorganization. The pipeline depth between subchunk assembly and
//! disk I/O defaults to 1 (no overlap): the paper *describes* double
//! buffering, but its measured natural-vs-traditional gap on a real
//! disk is only explicable if message overheads add to (rather than
//! hide behind) disk time; depth 2 is exposed as an ablation knob and
//! corresponds to the paper's "non-blocking communication" future work.
//!
//! The simulated servers execute exactly the plans the real servers
//! execute — same chunks, same subchunks, same piece regions, same
//! order — so the model cannot drift from the implementation.

#![warn(missing_docs)]

pub mod actors;
pub mod advisor;
pub mod baseline_model;
pub mod drift;
pub mod experiment;
pub mod fit;
pub mod machine;
pub mod report;
pub mod tuner;

pub use actors::{simulate, simulate_concurrent, CollectiveSpec, ConcurrentOutcome};
pub use drift::{service_drift_pass, DriftDetector, DriftPass, DriftReport, PhaseDrift};
pub use fit::{CostLine, DirectionCosts, FittedCosts, ProbeObservation};
pub use machine::{NetworkModel, Sp2Machine};
pub use panda_core::TunedConfig;
pub use report::SimReport;
pub use tuner::{calibrate_fleet, Calibrate, Calibration, Candidate, TunerOptions};
