//! Drift detection: does the live deployment still behave like the
//! model we calibrated?
//!
//! A [`Calibration`] freezes per-phase cost lines
//! (`t = per_op + per_byte · bytes`) at probe time. Backends drift —
//! a shared disk gets busier, a network path degrades, a throttle
//! changes — and a tuner driving stale constants picks stale operating
//! points. The [`DriftDetector`] closes that gap using the *live*
//! telemetry plane: it reads per-phase first/second moments from a
//! [`MetricsHub`](panda_obs::MetricsHub) snapshot window, predicts what
//! the calibrated lines say those phases *should* have cost, and scores
//! the relative disagreement. Phases the model has no line for
//! (throttle accounting, receive waits) and phases with too few samples
//! are excluded.
//!
//! The loop is opt-in: launch with
//! [`PandaConfig::with_auto_retune`](panda_core::PandaConfig::with_auto_retune)
//! and drive [`service_drift_pass`] periodically — when the drift score
//! crosses the configured threshold it recalibrates through the same
//! [`Calibrate`] trait the manual tuner uses and rebases the detector
//! on the fresh fit.

use panda_core::{ArrayMeta, PandaError, PandaService};
use panda_obs::{MetricsSnapshot, Phase, Recorder};

use crate::fit::{CostLine, DirectionCosts, FittedCosts};
use crate::tuner::{Calibrate, Calibration, TunerOptions};

/// Phases with too little predicted time get their disagreement scored
/// against this floor instead (seconds), so a microsecond of noise on a
/// near-free phase cannot fire the detector.
const PREDICTED_FLOOR_S: f64 = 1e-6;

/// A phase must carry at least this fraction of the window's measured
/// seconds for its disagreement to drive the score. Minor phases are
/// still reported in [`DriftReport::phases`] for inspection.
pub const MIN_PHASE_SHARE: f64 = 0.05;

/// One phase's live-vs-calibrated comparison.
#[derive(Debug, Clone, Copy)]
pub struct PhaseDrift {
    /// Which phase.
    pub phase: Phase,
    /// Samples observed in the window.
    pub ops: u64,
    /// Bytes moved in the window.
    pub bytes: u64,
    /// Seconds the window actually spent in the phase.
    pub measured_s: f64,
    /// Seconds the calibrated cost line predicts for the window's
    /// `(ops, bytes)` — the closer of the write- and read-direction
    /// lines.
    pub predicted_s: f64,
    /// Relative disagreement: `|measured − predicted| / predicted`.
    pub drift: f64,
}

/// The outcome of one drift check.
#[derive(Debug, Clone)]
pub struct DriftReport {
    /// The worst per-phase drift among qualifying phases (0 when no
    /// phase qualified).
    pub score: f64,
    /// Whether `score` crossed the detector's threshold.
    pub drifted: bool,
    /// Every phase that had a cost line and enough samples.
    pub phases: Vec<PhaseDrift>,
}

impl DriftReport {
    /// The phase driving the score, if any phase qualified.
    pub fn worst(&self) -> Option<&PhaseDrift> {
        self.phases
            .iter()
            .max_by(|a, b| a.drift.total_cmp(&b.drift))
    }
}

/// Compares live per-phase moments against a stored calibration's cost
/// lines over an explicit snapshot window. See the module docs.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    baseline: FittedCosts,
    threshold: f64,
    min_samples: u64,
    window: Option<MetricsSnapshot>,
}

impl DriftDetector {
    /// Default per-phase sample floor before a phase may fire.
    pub const DEFAULT_MIN_SAMPLES: u64 = 8;

    /// A detector scoring against `costs`, firing at relative drift
    /// `threshold` (e.g. `0.5` = a phase runs 50 % off its line).
    pub fn new(costs: FittedCosts, threshold: f64) -> Self {
        DriftDetector {
            baseline: costs,
            threshold: threshold.max(0.0),
            min_samples: Self::DEFAULT_MIN_SAMPLES,
            window: None,
        }
    }

    /// A detector baselined on a completed calibration.
    pub fn from_calibration(calibration: &Calibration, threshold: f64) -> Self {
        Self::new(calibration.costs, threshold)
    }

    /// Require at least `min_samples` phase samples in the window
    /// before that phase can contribute to the score.
    pub fn with_min_samples(mut self, min_samples: u64) -> Self {
        self.min_samples = min_samples;
        self
    }

    /// The firing threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The calibrated costs currently scored against.
    pub fn baseline(&self) -> &FittedCosts {
        &self.baseline
    }

    /// Start a fresh observation window at the recorder's current
    /// counters (everything before this call is excluded from future
    /// scores). Returns `false` — and leaves the window unset — when
    /// the recorder has no [`MetricsHub`](panda_obs::MetricsHub)
    /// attached.
    pub fn begin_window(&mut self, recorder: &dyn Recorder) -> bool {
        self.window = recorder.metrics();
        self.window.is_some()
    }

    /// Score the live counters against the baseline over the current
    /// window. `None` when the recorder has no hub. Does not move the
    /// window — repeated checks score a growing window until
    /// [`DriftDetector::begin_window`] or [`DriftDetector::rebase`].
    pub fn check(&self, recorder: &dyn Recorder) -> Option<DriftReport> {
        let live = recorder.metrics()?;
        let delta = match &self.window {
            Some(start) => live.since(start),
            None => live,
        };
        Some(self.score_window(&delta))
    }

    /// Adopt a fresh calibration and restart the window, so the next
    /// check scores only post-recalibration traffic against the new
    /// lines.
    pub fn rebase(&mut self, calibration: &Calibration, recorder: &dyn Recorder) {
        self.baseline = calibration.costs;
        self.begin_window(recorder);
    }

    /// Score one already-delta'd snapshot window.
    ///
    /// Every modeled phase with enough samples is reported, but only
    /// phases carrying at least [`MIN_PHASE_SHARE`] of the window's
    /// measured seconds drive the score: a phase that is 1 % of the
    /// runtime mispredicted 3x is µs-scale noise, not a reason to
    /// replan, and on small windows the minor phases routinely sit at
    /// scheduling granularity where relative error is meaningless.
    pub fn score_window(&self, window: &MetricsSnapshot) -> DriftReport {
        let lines = |phase: Phase| -> Option<(CostLine, CostLine)> {
            let pick = |d: &DirectionCosts| match phase {
                Phase::Exchange => Some(d.exchange),
                Phase::Disk => Some(d.disk),
                Phase::Reorg => Some(d.reorg),
                Phase::Throttle | Phase::RecvWait => None,
            };
            Some((pick(&self.baseline.write)?, pick(&self.baseline.read)?))
        };
        let mut phases = Vec::new();
        for p in &window.phases {
            let Some((write, read)) = lines(p.phase) else {
                continue;
            };
            if p.ops < self.min_samples.max(1) {
                continue;
            }
            let predict =
                |line: &CostLine| line.per_op_s * p.ops as f64 + line.per_byte_s * p.bytes as f64;
            // The hub pools both directions into one phase row; score
            // against whichever direction's line explains it better, so
            // only "neither calibration explains this" counts as drift.
            let (pw, pr) = (predict(&write), predict(&read));
            let drift_vs = |pred: f64| (p.secs - pred).abs() / pred.max(PREDICTED_FLOOR_S);
            let (predicted_s, drift) = if drift_vs(pw) <= drift_vs(pr) {
                (pw, drift_vs(pw))
            } else {
                (pr, drift_vs(pr))
            };
            phases.push(PhaseDrift {
                phase: p.phase,
                ops: p.ops,
                bytes: p.bytes,
                measured_s: p.secs,
                predicted_s,
                drift,
            });
        }
        let total_s: f64 = phases.iter().map(|p| p.measured_s).sum();
        let score = phases
            .iter()
            .filter(|p| p.measured_s >= MIN_PHASE_SHARE * total_s)
            .map(|p| p.drift)
            .fold(0.0, f64::max);
        DriftReport {
            score,
            drifted: score > self.threshold,
            phases,
        }
    }
}

/// One recalibration triggered (or not) by a drift pass.
#[derive(Debug)]
pub struct DriftPass {
    /// The drift report, when the service's recorder has a hub.
    pub report: Option<DriftReport>,
    /// The fresh calibration, when the score crossed the service's
    /// configured auto-retune threshold and recalibration ran.
    pub recalibrated: Option<Calibration>,
}

/// Drive one detector pass against a live service: score the window,
/// and — when the service was launched with
/// [`PandaConfig::with_auto_retune`](panda_core::PandaConfig::with_auto_retune)
/// and the score crosses that threshold — recalibrate through
/// [`Calibrate`] (probes borrow an idle session slot) and rebase the
/// detector on the fresh fit. Services launched without the opt-in
/// only ever report.
pub fn service_drift_pass(
    detector: &mut DriftDetector,
    service: &mut PandaService,
    meta: &ArrayMeta,
    opts: &TunerOptions,
) -> Result<DriftPass, PandaError> {
    let report = detector.check(service.system().recorder().as_ref());
    let fire = match (&report, service.system().auto_retune_threshold()) {
        (Some(r), Some(threshold)) => r.score > threshold,
        _ => false,
    };
    if !fire {
        return Ok(DriftPass {
            report,
            recalibrated: None,
        });
    }
    let calibration = service.calibrate(meta, opts)?;
    detector.rebase(&calibration, service.system().recorder().as_ref());
    Ok(DriftPass {
        report,
        recalibrated: Some(calibration),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_obs::{Event, MetricsHub, SubchunkKey};
    use std::time::Duration;

    /// Costs whose disk line is exactly 1 µs/KiB with a 100 µs per-op
    /// charge, identical in both directions.
    fn costs() -> FittedCosts {
        let dir = DirectionCosts {
            exchange: CostLine {
                per_op_s: 1e-4,
                per_byte_s: 1e-9,
            },
            disk: CostLine {
                per_op_s: 1e-4,
                per_byte_s: 1e-9,
            },
            reorg: CostLine {
                per_op_s: 0.0,
                per_byte_s: 1e-9,
            },
            step_overhead_s: 0.0,
            startup_s: 0.0,
            overlap: 1.0,
        };
        FittedCosts {
            write: dir,
            read: dir,
            num_servers: 1,
            probe_io_workers: 1,
        }
    }

    /// Record `n` disk writes of `bytes` bytes, each `slowdown`× the
    /// calibrated line's prediction.
    fn disk_traffic(hub: &MetricsHub, n: usize, bytes: u64, slowdown: f64) {
        let per = Duration::from_secs_f64((1e-4 + bytes as f64 * 1e-9) * slowdown);
        for i in 0..n {
            hub.record(
                1,
                &Event::DiskWriteDone {
                    key: SubchunkKey::scoped(1 << 32, 0, 0, i),
                    offset: 0,
                    bytes,
                    dur: per,
                },
            );
        }
    }

    #[test]
    fn on_model_traffic_scores_near_zero() {
        let hub = MetricsHub::new();
        let mut det = DriftDetector::new(costs(), 0.5);
        assert!(det.begin_window(&hub));
        disk_traffic(&hub, 32, 64 << 10, 1.0);
        let report = det.check(&hub).expect("hub attached");
        assert!(report.score < 0.05, "score {}", report.score);
        assert!(!report.drifted);
        let disk = report
            .phases
            .iter()
            .find(|p| p.phase == Phase::Disk)
            .expect("disk phase scored");
        assert_eq!(disk.ops, 32);
        assert!((disk.measured_s - disk.predicted_s).abs() / disk.predicted_s < 0.05);
    }

    #[test]
    fn throttled_backend_fires_and_rebase_resets() {
        let hub = MetricsHub::new();
        let mut det = DriftDetector::new(costs(), 0.5);
        det.begin_window(&hub);
        // The backend now takes 3× the calibrated disk line: relative
        // drift ≈ 2.0, well over the 0.5 threshold.
        disk_traffic(&hub, 32, 64 << 10, 3.0);
        let report = det.check(&hub).expect("hub attached");
        assert!(report.drifted, "score {}", report.score);
        assert!(report.score > 1.5 && report.score < 2.5);
        assert_eq!(report.worst().unwrap().phase, Phase::Disk);

        // Rebase on a calibration matching the slow backend: the window
        // restarts and new on-model traffic scores clean again.
        let mut slow = costs();
        let line = CostLine {
            per_op_s: 3e-4,
            per_byte_s: 3e-9,
        };
        slow.write.disk = line;
        slow.read.disk = line;
        let calibration = Calibration {
            costs: slow,
            candidates: Vec::new(),
            tuned: panda_core::TunedConfig::new(64 << 10, 1, 1),
            sync_policy: panda_fs::SyncPolicy::PerCollective,
        };
        det.rebase(&calibration, &hub);
        disk_traffic(&hub, 32, 64 << 10, 3.0);
        let report = det.check(&hub).expect("hub attached");
        assert!(!report.drifted, "score {}", report.score);
    }

    #[test]
    fn sparse_windows_and_hubless_recorders_stay_quiet() {
        let hub = MetricsHub::new();
        let det = DriftDetector::new(costs(), 0.5).with_min_samples(8);
        // Below the sample floor: the wildly-off phase cannot fire.
        disk_traffic(&hub, 3, 64 << 10, 100.0);
        let report = det.check(&hub).expect("hub attached");
        assert_eq!(report.score, 0.0);
        assert!(report.phases.is_empty());
        assert!(report.worst().is_none());

        // A recorder with no hub yields no report at all.
        let null = panda_obs::NullRecorder;
        let mut det = det;
        assert!(!det.begin_window(&null));
        assert!(det.check(&null).is_none());
    }
}
