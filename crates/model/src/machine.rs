//! The machine description: network, disks, CPU copy costs.

use panda_fs::aix::MB;
use panda_fs::AixModel;

/// Point-to-point message cost model for the SP2 high-performance
/// switch under MPI-F.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkModel {
    /// One-way latency, seconds (Table 1: 43 µs).
    pub latency: f64,
    /// Peak large-message bandwidth, bytes/second (Table 1: 34 MB/s).
    pub bandwidth: f64,
    /// Fixed software overhead per *data* message (both ends combined),
    /// seconds. Not in the paper; calibrated so that the blocking
    /// one-subchunk-at-a-time protocol reaches ≈ 90 % of peak MPI
    /// bandwidth with 1 MB messages, matching Figures 5/6.
    pub per_msg_overhead: f64,
    /// Cost of a small control message (request, done, release) from
    /// send call to delivery, *excluding* latency, seconds.
    pub small_msg_overhead: f64,
}

impl NetworkModel {
    /// Transfer wire time for a payload of `bytes` (one data message),
    /// excluding latency.
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        self.per_msg_overhead + bytes as f64 / self.bandwidth
    }

    /// End-to-end time for a small control message.
    pub fn control_time(&self) -> f64 {
        self.latency + self.small_msg_overhead
    }
}

/// The full machine model.
#[derive(Debug, Clone, PartialEq)]
pub struct Sp2Machine {
    /// The interconnect.
    pub net: NetworkModel,
    /// Each I/O node's AIX file system cost curve.
    pub disk: AixModel,
    /// Effective bandwidth of strided gather/scatter memory copies
    /// during reorganization, bytes/second. Calibrated so traditional-
    /// order fast-disk runs land in the paper's 38–86 % band (Figure 9).
    pub memcpy_bandwidth: f64,
    /// Fixed Panda startup cost per collective, seconds (§3: ≈ 0.013 s).
    pub startup: f64,
    /// Per-subchunk bookkeeping on the server (buffer management, plan
    /// step), seconds.
    pub per_subchunk_overhead: f64,
    /// Subchunk pipeline depth on the server: 1 = each subchunk's
    /// network phase completes before its disk phase and the next
    /// subchunk starts after both (calibrated default, see crate docs);
    /// 2 = double buffering, assembly of subchunk k+1 overlaps the disk
    /// I/O of subchunk k.
    pub pipeline_depth: usize,
}

impl Sp2Machine {
    /// The NAS IBM SP2 configuration used throughout the paper.
    pub fn nas_sp2() -> Self {
        Sp2Machine {
            net: NetworkModel {
                latency: 43e-6,
                bandwidth: 34.0 * MB,
                per_msg_overhead: 1.8e-3,
                small_msg_overhead: 60e-6,
            },
            disk: AixModel::nas_sp2(),
            memcpy_bandwidth: 80.0 * MB,
            startup: 0.013,
            per_subchunk_overhead: 1.2e-3,
            pipeline_depth: 1,
        }
    }

    /// The same machine with double-buffered (overlapped) disk I/O —
    /// the paper's described-but-not-measurable pipeline, used by the
    /// ablation bench.
    pub fn with_pipeline_depth(mut self, depth: usize) -> Self {
        assert!(depth >= 1);
        self.pipeline_depth = depth;
        self
    }

    /// Strided copy time for `bytes`.
    pub fn memcpy_time(&self, bytes: usize) -> f64 {
        bytes as f64 / self.memcpy_bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nas_parameters_match_table1() {
        let m = Sp2Machine::nas_sp2();
        assert!((m.net.latency - 43e-6).abs() < 1e-12);
        assert!((m.net.bandwidth / MB - 34.0).abs() < 1e-9);
        assert!((m.startup - 0.013).abs() < 1e-12);
        assert_eq!(m.pipeline_depth, 1);
    }

    #[test]
    fn one_mb_message_efficiency_is_about_ninety_percent() {
        // The calibration target: a blocking request/response cycle on
        // 1 MB subchunks should run at ≈ 88–93 % of peak bandwidth.
        let m = Sp2Machine::nas_sp2();
        let cycle = m.net.control_time()
            + m.net.transfer_time(1 << 20)
            + m.net.latency
            + m.per_subchunk_overhead;
        let eff = ((1 << 20) as f64 / cycle) / m.net.bandwidth;
        assert!(eff > 0.85 && eff < 0.95, "efficiency {eff}");
    }

    #[test]
    fn transfer_time_scales_with_size() {
        let m = Sp2Machine::nas_sp2();
        let t1 = m.net.transfer_time(1 << 20);
        let t2 = m.net.transfer_time(2 << 20);
        assert!(t2 > t1 * 1.5 && t2 < t1 * 2.0);
    }
}
