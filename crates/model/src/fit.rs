//! Fitting the analytical cost model from measured run reports.
//!
//! The measurement side lives in `panda-obs`: a probe collective's
//! [`CalibrationSummary`] carries per-phase least-squares moments over
//! (subchunk bytes → phase seconds) samples. This module turns two such
//! probes — same array, two subchunk sizes — into a [`DirectionCosts`]:
//! one affine cost line `t = per_op + per_byte · bytes` per phase
//! (exchange, disk, reorganization), plus a two-term *residual* model
//! for everything the phase events do not see (control messages, read
//! pushes, client-side copies): a fixed startup term and a per-step
//! term, solved exactly from the two probes' unexplained wall time.
//!
//! The fitted lines are the same shape as the hand-calibrated
//! [`Sp2Machine`](crate::Sp2Machine) constants; the point of the fit is
//! that they come from *this* deployment's measured behavior rather
//! than the paper's Table 1.

use panda_obs::{CalibrationSummary, PhaseStats};

/// Affine per-subchunk cost: `per_op_s + per_byte_s · bytes`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostLine {
    /// Fixed seconds per subchunk operation.
    pub per_op_s: f64,
    /// Seconds per byte moved.
    pub per_byte_s: f64,
}

impl CostLine {
    /// Cost of one subchunk of `bytes`.
    pub fn eval(&self, bytes: u64) -> f64 {
        self.per_op_s + self.per_byte_s * bytes as f64
    }

    /// Fit from pooled phase moments. Falls back to a pure rate when
    /// the samples cannot identify a slope, and never returns negative
    /// constants: a negative intercept becomes a pure rate, a negative
    /// slope a pure per-op cost (small-sample noise, not physics).
    pub fn from_stats(stats: &PhaseStats) -> CostLine {
        match stats.fit_line() {
            Some((per_op, per_byte)) if per_op >= 0.0 && per_byte >= 0.0 => CostLine {
                per_op_s: per_op,
                per_byte_s: per_byte,
            },
            Some((_, per_byte)) if per_byte < 0.0 => CostLine {
                per_op_s: if stats.samples == 0 {
                    0.0
                } else {
                    stats.secs / stats.samples as f64
                },
                per_byte_s: 0.0,
            },
            _ => CostLine {
                per_op_s: 0.0,
                per_byte_s: stats.mean_secs_per_byte(),
            },
        }
    }
}

/// One probe collective's measurement, as seen by the fit: the phase
/// moments, the client-observed end-to-end wall time, and the subchunk
/// step count of the *busiest* server under the probe's schedule.
#[derive(Debug, Clone, Copy)]
pub struct ProbeObservation {
    /// Per-phase moments from the request-scoped run report.
    pub summary: CalibrationSummary,
    /// End-to-end seconds measured around the submit call.
    pub wall_s: f64,
    /// Steps on the busiest server (walked from the real schedule).
    pub steps: usize,
}

/// The fitted cost model for one direction (write or read).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DirectionCosts {
    /// Exchange phase (server blocked on client data).
    pub exchange: CostLine,
    /// Disk phase (positioned read/write per subchunk).
    pub disk: CostLine,
    /// Reorganization (pack/scatter CPU seconds per subchunk, summed
    /// over workers — divide by the worker count for elapsed time).
    pub reorg: CostLine,
    /// Unmeasured per-step overhead on the critical server (control
    /// round trips, read pushes, client copies), seconds.
    pub step_overhead_s: f64,
    /// Fixed per-collective overhead, seconds.
    pub startup_s: f64,
    /// Fraction of the bottleneck stage that survives pipelining,
    /// measured by the deep-pipeline probe (1.0 = the stage is a fully
    /// serial resource, the depth-1 fit's assumption; < 1 when the
    /// measured stage durations hide latency a deep window overlaps,
    /// as on fast backends where per-subchunk scheduling stalls
    /// dominate the exchange phase).
    pub overlap: f64,
}

impl DirectionCosts {
    /// Fit one direction from probe runs.
    ///
    /// Phase lines come from the pooled moments of all probes (two
    /// subchunk sizes condition the slope). The residual — wall time
    /// minus the critical server's measured phase time — is split into
    /// `startup_s + step_overhead_s · steps` using the first and last
    /// probe (exact for two, endpoints otherwise); both terms are
    /// clamped nonnegative, degrading gracefully to a pure startup or a
    /// pure per-step cost when the data says so.
    ///
    /// `num_servers` converts pooled phase totals into a critical-server
    /// share (probe layouts are balanced round-robin, so servers carry
    /// equal loads); `io_workers` is the worker count the probes ran
    /// with, which parallelized their reorganization time.
    pub fn fit(probes: &[ProbeObservation], num_servers: usize, io_workers: usize) -> Self {
        let mut pooled = CalibrationSummary::default();
        for p in probes {
            pooled.merge(&p.summary);
        }
        let mut costs = DirectionCosts {
            exchange: CostLine::from_stats(&pooled.exchange),
            disk: CostLine::from_stats(&pooled.disk),
            reorg: CostLine::from_stats(&pooled.reorg),
            step_overhead_s: 0.0,
            startup_s: 0.0,
            overlap: 1.0,
        };
        let servers = num_servers.max(1) as f64;
        let workers = io_workers.max(1) as f64;
        let residual = |p: &ProbeObservation| {
            let measured =
                (p.summary.exchange.secs + p.summary.disk.secs + p.summary.reorg.secs / workers)
                    / servers;
            (p.wall_s - measured).max(0.0)
        };
        match probes {
            [] => {}
            [only] => {
                costs.startup_s = residual(only);
            }
            [first, .., last] => {
                let (r1, s1) = (residual(first), first.steps as f64);
                let (r2, s2) = (residual(last), last.steps as f64);
                if (s1 - s2).abs() < 0.5 {
                    costs.startup_s = 0.5 * (r1 + r2);
                } else {
                    let per_step = (r1 - r2) / (s1 - s2);
                    let startup = r1 - per_step * s1;
                    if per_step < 0.0 {
                        costs.startup_s = 0.5 * (r1 + r2);
                    } else if startup < 0.0 {
                        let mean_steps = 0.5 * (s1 + s2);
                        costs.step_overhead_s = if mean_steps > 0.0 {
                            0.5 * (r1 + r2) / mean_steps
                        } else {
                            0.0
                        };
                    } else {
                        costs.step_overhead_s = per_step;
                        costs.startup_s = startup;
                    }
                }
            }
        }
        costs
    }
}

/// The full fitted model: one [`DirectionCosts`] per direction, plus
/// the deployment shape the probes ran on.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FittedCosts {
    /// Write-direction costs.
    pub write: DirectionCosts,
    /// Read-direction costs.
    pub read: DirectionCosts,
    /// I/O nodes in the probed deployment.
    pub num_servers: usize,
    /// Reorganization workers per I/O node at probe time.
    pub probe_io_workers: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(samples: &[(u64, f64)]) -> PhaseStats {
        let mut s = PhaseStats::default();
        for &(x, y) in samples {
            s.push(x, y);
        }
        s
    }

    #[test]
    fn cost_line_clamps_noise_to_physical_constants() {
        // Clean affine data passes through.
        let line = CostLine::from_stats(&stats(&[(1024, 1e-3 + 1024e-9), (4096, 1e-3 + 4096e-9)]));
        assert!((line.per_op_s - 1e-3).abs() < 1e-9);
        assert!((line.per_byte_s - 1e-9).abs() < 1e-13);
        assert!((line.eval(2048) - (1e-3 + 2048e-9)).abs() < 1e-9);

        // Negative slope (larger subchunks measured *cheaper*): pure
        // per-op cost, never a negative rate.
        let line = CostLine::from_stats(&stats(&[(1024, 4e-3), (4096, 2e-3)]));
        assert_eq!(line.per_byte_s, 0.0);
        assert!((line.per_op_s - 3e-3).abs() < 1e-9);

        // Negative intercept (superlinear growth): pure rate.
        let line = CostLine::from_stats(&stats(&[(1024, 1e-6), (4096, 2e-3)]));
        assert_eq!(line.per_op_s, 0.0);
        assert!(line.per_byte_s > 0.0);

        // One size only: rate fallback.
        let line = CostLine::from_stats(&stats(&[(4096, 2e-3), (4096, 2e-3)]));
        assert_eq!(line.per_op_s, 0.0);
        assert!((line.per_byte_s - 2e-3 / 4096.0).abs() < 1e-12);
    }

    fn probe(subchunk: u64, steps: usize, wall_s: f64) -> ProbeObservation {
        // Synthetic probe on 1 server, 1 worker: each step spends
        // 1 µs/KiB in disk, nothing else measured.
        let mut summary = CalibrationSummary::default();
        for _ in 0..steps {
            summary.disk.push(subchunk, subchunk as f64 * 1e-9);
        }
        summary.subchunks = steps as u64;
        ProbeObservation {
            summary,
            wall_s,
            steps,
        }
    }

    #[test]
    fn residual_splits_into_startup_and_per_step() {
        // wall = measured + 0.010 + 0.001 * steps, exactly.
        let measured = |steps: usize, sub: u64| steps as f64 * sub as f64 * 1e-9;
        let probes = [
            probe(65536, 32, measured(32, 65536) + 0.010 + 0.001 * 32.0),
            probe(262144, 8, measured(8, 262144) + 0.010 + 0.001 * 8.0),
        ];
        let costs = DirectionCosts::fit(&probes, 1, 1);
        assert!((costs.startup_s - 0.010).abs() < 1e-9, "{costs:?}");
        assert!((costs.step_overhead_s - 0.001).abs() < 1e-9, "{costs:?}");
        // Disk rate recovered from the pooled samples.
        assert!((costs.disk.per_byte_s - 1e-9).abs() < 1e-12);
        // Prediction closes the loop on the probes themselves.
        let predict = |steps: usize, sub: u64| {
            costs.startup_s
                + costs.step_overhead_s * steps as f64
                + (0..steps).map(|_| costs.disk.eval(sub)).sum::<f64>()
        };
        assert!((predict(32, 65536) - probes[0].wall_s).abs() < 1e-6);
    }

    #[test]
    fn degenerate_residuals_stay_nonnegative() {
        // Wall below measured phases (noise): zero residual terms.
        let costs = DirectionCosts::fit(&[probe(65536, 32, 0.0), probe(262144, 8, 0.0)], 1, 1);
        assert_eq!(costs.startup_s, 0.0);
        assert_eq!(costs.step_overhead_s, 0.0);

        // Residual shrinking with steps: constant startup, no negative
        // per-step cost.
        let m32 = 32.0 * 65536.0 * 1e-9;
        let m8 = 8.0 * 262144.0 * 1e-9;
        let costs = DirectionCosts::fit(
            &[probe(65536, 32, m32 + 0.005), probe(262144, 8, m8 + 0.009)],
            1,
            1,
        );
        assert!(costs.step_overhead_s >= 0.0);
        assert!((costs.startup_s - 0.007).abs() < 1e-9);

        // Single probe: the whole residual is startup.
        let costs = DirectionCosts::fit(&[probe(65536, 4, m8 + 1.0)], 1, 1);
        assert!(costs.startup_s > 0.9);
        assert_eq!(costs.step_overhead_s, 0.0);
    }
}
