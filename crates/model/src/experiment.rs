//! The paper's experiment grid (§3), expressed as reusable builders.
//!
//! Arrays are `N x 512 x 512` f32 — `N` megabytes exactly, matching the
//! paper's 16–512 MB range (its "512 MB array of size 512x512x512" is
//! 512³ 4-byte elements). Compute meshes follow the paper: 8 = 2x2x2,
//! 16 = 4x2x2, 24 = 6x2x2, 32 = 4x4x2.

use panda_core::{ArrayMeta, OpKind};
use panda_schema::{DataSchema, ElementType, Mesh, Shape};

use crate::actors::{simulate, CollectiveSpec};
use crate::machine::Sp2Machine;
use crate::report::SimReport;

/// The array sizes swept in every figure, in MB.
pub const PAPER_SIZES_MB: [usize; 6] = [16, 32, 64, 128, 256, 512];

/// Compute mesh for a paper node count (8, 16, 24, or 32).
pub fn compute_mesh(nodes: usize) -> Vec<usize> {
    match nodes {
        8 => vec![2, 2, 2],
        16 => vec![4, 2, 2],
        24 => vec![6, 2, 2],
        32 => vec![4, 4, 2],
        _ => panic!("the paper uses 8/16/24/32 compute nodes, not {nodes}"),
    }
}

/// Disk-schema choice for an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskKind {
    /// Natural chunking: disk schema == memory schema.
    Natural,
    /// Traditional order: `BLOCK,*,*` over the I/O nodes.
    Traditional,
}

/// Build the experiment array: `mb x 512 x 512` f32 distributed
/// `BLOCK,BLOCK,BLOCK` over `compute_nodes`, with the chosen disk
/// schema over `io_nodes`.
pub fn paper_array(mb: usize, compute_nodes: usize, io_nodes: usize, disk: DiskKind) -> ArrayMeta {
    let shape = Shape::new(&[mb, 512, 512]).unwrap();
    let mesh = Mesh::new(&compute_mesh(compute_nodes)).unwrap();
    let memory = DataSchema::block_all(shape.clone(), ElementType::F32, mesh).unwrap();
    match disk {
        DiskKind::Natural => ArrayMeta::natural("array", memory).unwrap(),
        DiskKind::Traditional => {
            let disk = DataSchema::traditional_order(shape, ElementType::F32, io_nodes).unwrap();
            ArrayMeta::new("array", memory, disk).unwrap()
        }
    }
}

/// One cell of a figure: an (I/O nodes, array size) combination.
#[derive(Debug, Clone)]
pub struct FigPoint {
    /// Number of I/O nodes.
    pub io_nodes: usize,
    /// Array size in MB.
    pub array_mb: usize,
    /// Simulated outcome.
    pub report: SimReport,
}

/// Full specification of one figure's sweep.
#[derive(Debug, Clone)]
pub struct FigureSpec {
    /// Figure number in the paper (3..=9).
    pub figure: u32,
    /// Human description, printed by the harness.
    pub title: &'static str,
    /// Compute nodes.
    pub compute_nodes: usize,
    /// I/O node counts on the x-axis.
    pub io_node_counts: &'static [usize],
    /// Disk schema.
    pub disk: DiskKind,
    /// Read or write.
    pub op: OpKind,
    /// Infinitely fast disk?
    pub fast_disk: bool,
}

/// The paper's seven figures.
pub fn figure_spec(figure: u32) -> FigureSpec {
    match figure {
        3 => FigureSpec {
            figure: 3,
            title: "reading 16-512 MB arrays, 8 compute nodes, natural chunking",
            compute_nodes: 8,
            io_node_counts: &[2, 4, 8],
            disk: DiskKind::Natural,
            op: OpKind::Read,
            fast_disk: false,
        },
        4 => FigureSpec {
            figure: 4,
            title: "writing 16-512 MB arrays, 8 compute nodes, natural chunking",
            compute_nodes: 8,
            io_node_counts: &[2, 4, 8],
            disk: DiskKind::Natural,
            op: OpKind::Write,
            fast_disk: false,
        },
        5 => FigureSpec {
            figure: 5,
            title: "reading, 32 compute nodes, natural chunking, infinitely fast disk",
            compute_nodes: 32,
            io_node_counts: &[2, 4, 8],
            disk: DiskKind::Natural,
            op: OpKind::Read,
            fast_disk: true,
        },
        6 => FigureSpec {
            figure: 6,
            title: "writing, 32 compute nodes, natural chunking, infinitely fast disk",
            compute_nodes: 32,
            io_node_counts: &[2, 4, 8],
            disk: DiskKind::Natural,
            op: OpKind::Write,
            fast_disk: true,
        },
        7 => FigureSpec {
            figure: 7,
            title: "reading, 32 compute nodes, traditional order on disk",
            compute_nodes: 32,
            io_node_counts: &[2, 4, 6, 8],
            disk: DiskKind::Traditional,
            op: OpKind::Read,
            fast_disk: false,
        },
        8 => FigureSpec {
            figure: 8,
            title: "writing, 32 compute nodes, traditional order on disk",
            compute_nodes: 32,
            io_node_counts: &[2, 4, 6, 8],
            disk: DiskKind::Traditional,
            op: OpKind::Write,
            fast_disk: false,
        },
        9 => FigureSpec {
            figure: 9,
            title: "writing, 16 compute nodes, traditional order, infinitely fast disk",
            compute_nodes: 16,
            io_node_counts: &[2, 4, 6, 8],
            disk: DiskKind::Traditional,
            op: OpKind::Write,
            fast_disk: true,
        },
        _ => panic!("the paper's evaluation figures are 3..=9"),
    }
}

/// Run one figure's full sweep.
pub fn run_figure(machine: &Sp2Machine, spec: &FigureSpec) -> Vec<FigPoint> {
    run_figure_sized(machine, spec, &PAPER_SIZES_MB)
}

/// Run a figure's sweep over custom sizes (tests use a subset).
pub fn run_figure_sized(
    machine: &Sp2Machine,
    spec: &FigureSpec,
    sizes_mb: &[usize],
) -> Vec<FigPoint> {
    let mut out = Vec::new();
    for &io_nodes in spec.io_node_counts {
        for &mb in sizes_mb {
            let array = paper_array(mb, spec.compute_nodes, io_nodes, spec.disk);
            let report = simulate(
                machine,
                &CollectiveSpec {
                    arrays: vec![array],
                    op: spec.op,
                    num_servers: io_nodes,
                    subchunk_bytes: 1 << 20,
                    fast_disk: spec.fast_disk,
                    section: None,
                },
            );
            out.push(FigPoint {
                io_nodes,
                array_mb: mb,
                report,
            });
        }
    }
    out
}

/// The multiple-array experiment the paper describes in prose (§3): a
/// timestep collective over a group of three arrays.
pub fn multi_array_spec(mb_each: usize, compute_nodes: usize, io_nodes: usize) -> CollectiveSpec {
    let arrays = (0..3)
        .map(|_| paper_array(mb_each, compute_nodes, io_nodes, DiskKind::Natural))
        .collect();
    CollectiveSpec {
        arrays,
        op: OpKind::Write,
        num_servers: io_nodes,
        subchunk_bytes: 1 << 20,
        fast_disk: false,
        section: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meshes_match_paper() {
        assert_eq!(compute_mesh(8), vec![2, 2, 2]);
        assert_eq!(compute_mesh(16), vec![4, 2, 2]);
        assert_eq!(compute_mesh(24), vec![6, 2, 2]);
        assert_eq!(compute_mesh(32), vec![4, 4, 2]);
    }

    #[test]
    fn paper_array_sizes_are_exact_megabytes() {
        for mb in PAPER_SIZES_MB {
            let a = paper_array(mb, 8, 4, DiskKind::Natural);
            assert_eq!(a.total_bytes(), mb << 20);
        }
    }

    #[test]
    fn all_figures_have_specs() {
        for f in 3..=9 {
            let s = figure_spec(f);
            assert_eq!(s.figure, f);
            assert!(!s.io_node_counts.is_empty());
        }
    }

    #[test]
    fn figure4_band_matches_paper() {
        // Paper: writes under natural chunking run at 85-98 % of peak
        // AIX throughput per I/O node. Allow a slightly wider modeled
        // band at the extreme small end.
        let m = Sp2Machine::nas_sp2();
        let pts = run_figure_sized(&m, &figure_spec(4), &[64, 256, 512]);
        for p in &pts {
            assert!(
                p.report.normalized > 0.80 && p.report.normalized <= 1.0,
                "fig4 io={} mb={} normalized={}",
                p.io_nodes,
                p.array_mb,
                p.report.normalized
            );
        }
    }

    #[test]
    fn figure9_shows_reorganization_cost() {
        // Paper: 38-86 % of peak MPI bandwidth once the disk is free.
        let m = Sp2Machine::nas_sp2();
        let pts = run_figure_sized(&m, &figure_spec(9), &[64, 512]);
        for p in &pts {
            assert!(
                p.report.normalized > 0.30 && p.report.normalized < 0.90,
                "fig9 io={} mb={} normalized={}",
                p.io_nodes,
                p.array_mb,
                p.report.normalized
            );
        }
        // And it is visibly below the natural-chunking fast-disk band.
        let nat = run_figure_sized(&m, &figure_spec(6), &[512]);
        assert!(pts
            .iter()
            .all(|p| p.report.normalized < nat[0].report.normalized));
    }

    #[test]
    fn multi_array_throughput_similar_to_single() {
        let m = Sp2Machine::nas_sp2();
        let multi = simulate(&m, &multi_array_spec(64, 8, 4));
        let single = simulate(
            &m,
            &CollectiveSpec {
                arrays: vec![paper_array(192, 8, 4, DiskKind::Natural)],
                op: OpKind::Write,
                num_servers: 4,
                subchunk_bytes: 1 << 20,
                fast_disk: false,
                section: None,
            },
        );
        let ratio = multi.aggregate_mbs / single.aggregate_mbs;
        assert!(ratio > 0.9 && ratio < 1.1, "ratio {ratio}");
    }
}
