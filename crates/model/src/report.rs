//! Simulation reports: aggregate/normalized throughput, paper style.

use panda_core::OpKind;
use panda_fs::aix::{IoDirection, MB};

use crate::machine::Sp2Machine;

/// The outcome of one simulated collective operation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Elapsed virtual time, seconds (the paper's metric: maximum time
    /// spent by any compute node on the collective request).
    pub elapsed: f64,
    /// Total array bytes moved.
    pub total_bytes: u64,
    /// Aggregate throughput, MB/s.
    pub aggregate_mbs: f64,
    /// Throughput per I/O node, MB/s.
    pub per_io_node_mbs: f64,
    /// The paper's normalized throughput: per-I/O-node throughput
    /// divided by the peak AIX throughput (real disk) or by the peak
    /// MPI bandwidth (infinitely fast disk).
    pub normalized: f64,
    /// Data messages exchanged.
    pub data_msgs: u64,
    /// Control messages exchanged.
    pub ctrl_msgs: u64,
    /// Number of I/O nodes.
    pub num_servers: usize,
}

impl SimReport {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        machine: &Sp2Machine,
        op: OpKind,
        fast_disk: bool,
        num_servers: usize,
        total_bytes: u64,
        elapsed: f64,
        data_msgs: u64,
        ctrl_msgs: u64,
    ) -> Self {
        let aggregate_mbs = total_bytes as f64 / MB / elapsed;
        let per_io_node_mbs = aggregate_mbs / num_servers as f64;
        let denom_mbs = if fast_disk {
            machine.net.bandwidth / MB
        } else {
            match op {
                OpKind::Write => machine.disk.peak_mbs(IoDirection::Write),
                OpKind::Read => machine.disk.peak_mbs(IoDirection::Read),
            }
        };
        SimReport {
            elapsed,
            total_bytes,
            aggregate_mbs,
            per_io_node_mbs,
            normalized: per_io_node_mbs / denom_mbs,
            data_msgs,
            ctrl_msgs,
            num_servers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_uses_the_right_denominator() {
        let m = Sp2Machine::nas_sp2();
        // 2 servers moving 64 MB in 16 s → 4 MB/s aggregate, 2 MB/s per
        // node.
        let real = SimReport::new(&m, OpKind::Write, false, 2, 64 << 20, 16.0, 0, 0);
        assert!((real.aggregate_mbs - 4.0).abs() < 1e-9);
        assert!((real.per_io_node_mbs - 2.0).abs() < 1e-9);
        assert!((real.normalized - 2.0 / 2.23).abs() < 1e-9);

        let fast = SimReport::new(&m, OpKind::Write, true, 2, 64 << 20, 16.0, 0, 0);
        assert!((fast.normalized - 2.0 / 34.0).abs() < 1e-9);

        let read = SimReport::new(&m, OpKind::Read, false, 2, 64 << 20, 16.0, 0, 0);
        assert!((read.normalized - 2.0 / 2.85).abs() < 1e-9);
    }
}
