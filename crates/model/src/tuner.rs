//! Closed-loop auto-tuner: calibrate the cost model from run reports,
//! then pick the operating point.
//!
//! The paper hand-tunes Panda's knobs — subchunk size, pipeline depth,
//! worker count — per machine. This module closes the loop instead:
//!
//! 1. **Probe.** Run two short collectives (a write and a read, at two
//!    subchunk sizes) against the *real* backend, each pinned to
//!    pipeline depth 1 via the per-request
//!    [`TunedConfig`] override so phases do
//!    not overlap.
//! 2. **Fit.** Scope the deployment's [`panda_obs::RunReport`] to each
//!    probe request, condense it to per-phase least-squares moments
//!    ([`panda_obs::CalibrationSummary`]), and fit affine cost lines
//!    plus a startup/per-step residual ([`crate::fit`]).
//! 3. **Search.** Walk the real planner's
//!    [`CollectiveSchedule`] for every
//!    candidate `(subchunk, depth, workers)` and predict its wall time
//!    analytically: per server, serial time shrinks toward the
//!    bottleneck stage as the pipeline deepens.
//! 4. **Apply.** The winning [`TunedConfig`] either seeds the next
//!    launch ([`TunedConfig::apply`]) or rides individual requests
//!    (`WriteSet::tuned` / `ReadSet::tuned`).
//!
//! Entry points: [`Calibrate::calibrate`] on a [`Session`] or a
//! [`PandaService`], and [`calibrate_fleet`] for an SPMD fleet. The
//! fitted model also exports a [`Sp2Machine`]
//! ([`Calibration::fitted_machine`]) so predictions can be
//! cross-validated against the discrete-event simulation.

use std::time::Instant;

use panda_core::protocol::ArrayOp;
use panda_core::{
    ArrayMeta, CollectiveSchedule, ConfigIssue, OpKind, PandaClient, PandaError, PandaService,
    PandaSystem, ReadSet, Session, TunedConfig, WriteSet,
};
use panda_fs::{AixModel, SyncPolicy};
use panda_obs::{Recorder, RunReport};

use crate::fit::{DirectionCosts, FittedCosts, ProbeObservation};
use crate::machine::{NetworkModel, Sp2Machine};

/// File tag used by probe collectives (cleaned up when the caller can
/// reach the file systems).
pub const PROBE_TAG: &str = "__panda_probe";

/// The tuner's search space and probe plan.
#[derive(Debug, Clone, PartialEq)]
pub struct TunerOptions {
    /// Candidate pipeline depths.
    pub depths: Vec<usize>,
    /// Candidate reorganization worker counts. Launch-scoped: an
    /// online-only tuner should restrict this to the deployment's
    /// current value.
    pub io_workers: Vec<usize>,
    /// Candidate subchunk caps, bytes.
    pub subchunk_bytes: Vec<usize>,
    /// The two probe subchunk sizes. Two *different* sizes make the
    /// per-op/per-byte split identifiable.
    pub probe_subchunk_bytes: (usize, usize),
    /// Depth of the third, deep-pipeline probe (at
    /// `probe_subchunk_bytes.0`), which measures how much of the
    /// bottleneck stage a depth-`d` window actually overlaps —
    /// depth-1 phase durations alone overstate the serial floor on
    /// fast backends, where per-subchunk latency dominates them.
    /// `None` skips the probe and assumes a fully serial bottleneck;
    /// it is also skipped under `SyncPolicy::PerWrite`, which forbids
    /// deep windows.
    pub depth_probe: Option<usize>,
    /// Repetitions per probe collective; the fastest rep is fitted
    /// (min-of-reps, the same noise rejection a measured sweep uses).
    /// 1 keeps calibration cheap on slow backends; raise it when the
    /// backend is fast enough that scheduling noise pollutes a single
    /// shot.
    pub probe_reps: usize,
    /// Weight of the write-direction prediction in the objective.
    pub write_weight: f64,
    /// Weight of the read-direction prediction in the objective.
    pub read_weight: f64,
    /// Reorganization workers the deployment is currently running with
    /// (parallelizes the probes' measured reorg time). Filled in
    /// automatically by the [`PandaService`] and [`calibrate_fleet`]
    /// paths; a bare [`Session`] caller must set it to the launched
    /// `PandaConfig::io_workers`.
    pub launch_io_workers: usize,
}

impl Default for TunerOptions {
    fn default() -> Self {
        TunerOptions {
            depths: vec![1, 2, 4, 8],
            io_workers: vec![1, 2, 4],
            subchunk_bytes: vec![16 << 10, 32 << 10, 64 << 10, 256 << 10, 1 << 20],
            probe_subchunk_bytes: (32 << 10, 128 << 10),
            depth_probe: Some(4),
            probe_reps: 1,
            write_weight: 1.0,
            read_weight: 1.0,
            launch_io_workers: 1,
        }
    }
}

/// One point of the searched space with its predicted cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Subchunk cap, bytes.
    pub subchunk_bytes: usize,
    /// Pipeline depth.
    pub pipeline_depth: usize,
    /// Reorganization workers.
    pub io_workers: usize,
    /// Predicted write-collective seconds.
    pub write_s: f64,
    /// Predicted read-collective seconds.
    pub read_s: f64,
    /// Weighted objective (what the tuner minimizes).
    pub predicted_s: f64,
}

/// The outcome of a calibration: fitted constants, the scored search
/// space, and the winning operating point.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// The fitted cost model.
    pub costs: FittedCosts,
    /// Every scored candidate, best first.
    pub candidates: Vec<Candidate>,
    /// The winning operating point (`predicted_s` = its objective).
    pub tuned: TunedConfig,
    /// The deployment's flush policy (constrained the depth search).
    pub sync_policy: SyncPolicy,
}

impl Calibration {
    /// Predict one direction's wall seconds for `meta` at an arbitrary
    /// operating point, by walking the real planner's schedule with the
    /// fitted constants.
    pub fn predict(
        &self,
        meta: &ArrayMeta,
        op: OpKind,
        subchunk_bytes: usize,
        pipeline_depth: usize,
        io_workers: usize,
    ) -> f64 {
        let arrays = probe_arrays(meta);
        let costs = match op {
            OpKind::Write => &self.costs.write,
            OpKind::Read => &self.costs.read,
        };
        predict_direction(
            costs,
            &arrays,
            op,
            self.costs.num_servers,
            subchunk_bytes,
            pipeline_depth,
            io_workers,
            self.sync_policy,
        )
    }

    /// Export the fit as a [`Sp2Machine`] so the discrete-event
    /// simulation (`panda_model::simulate`) can replay candidates on
    /// the *fitted* machine — an independent cross-check of the
    /// analytical search.
    pub fn fitted_machine(&self) -> Sp2Machine {
        let w = &self.costs.write;
        let r = &self.costs.read;
        // Invert a per-byte cost into a bandwidth, clamped finite for
        // phases a backend makes effectively free (MemFs disk).
        let rate = |per_byte: f64| {
            if per_byte > 1e-15 {
                (1.0 / per_byte).min(1e13)
            } else {
                1e13
            }
        };
        // Prefer whichever direction actually observed the phase.
        let pick = |a: f64, b: f64| if a > 1e-15 { a } else { b };
        Sp2Machine {
            net: NetworkModel {
                latency: 1e-6,
                bandwidth: rate(pick(w.exchange.per_byte_s, r.exchange.per_byte_s)),
                per_msg_overhead: w.exchange.per_op_s.max(r.exchange.per_op_s),
                small_msg_overhead: 1e-6,
            },
            disk: AixModel {
                raw_bandwidth: rate(pick(
                    w.disk.per_byte_s.max(r.disk.per_byte_s),
                    w.disk.per_byte_s.min(r.disk.per_byte_s),
                )),
                read_op_overhead: r.disk.per_op_s,
                write_op_overhead: w.disk.per_op_s,
                seek_penalty: 0.0,
            },
            memcpy_bandwidth: rate(pick(w.reorg.per_byte_s, r.reorg.per_byte_s)),
            startup: 0.5 * (w.startup_s + r.startup_s),
            per_subchunk_overhead: 0.5 * (w.step_overhead_s + r.step_overhead_s),
            pipeline_depth: 1,
        }
    }
}

/// Calibrate against the live deployment this handle talks to.
///
/// Implemented for [`Session`] (probes run as that tenant) and for
/// [`PandaService`] (a probe session is borrowed from the idle pool and
/// returned afterwards). Both need a timeline-keeping recorder attached
/// at launch ([`ConfigIssue::CalibrationNeedsTimeline`] otherwise) and
/// a single-node array (`meta` is also the shape the search optimizes
/// for — pass the array you are about to move, or a smaller stand-in
/// with the same schema for cheaper probes).
pub trait Calibrate {
    /// Run the probe collectives, fit the model, search the space.
    fn calibrate(
        &mut self,
        meta: &ArrayMeta,
        opts: &TunerOptions,
    ) -> Result<Calibration, PandaError>;
}

impl Calibrate for Session {
    fn calibrate(
        &mut self,
        meta: &ArrayMeta,
        opts: &TunerOptions,
    ) -> Result<Calibration, PandaError> {
        let num_servers = self.num_servers();
        let sync_policy = self.sync_policy();
        require_timeline(self.recorder().as_ref())?;
        let workers = opts.launch_io_workers.max(1);
        let data = vec![0u8; meta.client_bytes(0)];
        let mut buf = vec![0u8; meta.client_bytes(0)];
        let mut write_probes = Vec::new();
        let mut read_probes = Vec::new();
        let reps = opts.probe_reps.max(1);
        for &sub in &[opts.probe_subchunk_bytes.0, opts.probe_subchunk_bytes.1] {
            let probe = TunedConfig::new(sub, 1, workers);
            let arrays = probe_arrays(meta);

            let mut best: Option<(u64, f64)> = None;
            for _ in 0..reps {
                let start = Instant::now();
                let id =
                    self.write_set(&WriteSet::new().array(meta, PROBE_TAG, &data).tuned(&probe))?;
                let wall = start.elapsed().as_secs_f64();
                if best.is_none_or(|(_, w)| wall < w) {
                    best = Some((id, wall));
                }
            }
            let (id, wall) = best.expect("at least one probe rep");
            write_probes.push(observe(
                self.recorder().as_ref(),
                id,
                wall,
                &arrays,
                OpKind::Write,
                num_servers,
                sub,
                sync_policy,
            ));

            let mut best: Option<(u64, f64)> = None;
            for _ in 0..reps {
                let start = Instant::now();
                let id = self.read_set(
                    &mut ReadSet::new()
                        .array(meta, PROBE_TAG, &mut buf)
                        .tuned(&probe),
                )?;
                let wall = start.elapsed().as_secs_f64();
                if best.is_none_or(|(_, w)| wall < w) {
                    best = Some((id, wall));
                }
            }
            let (id, wall) = best.expect("at least one probe rep");
            read_probes.push(observe(
                self.recorder().as_ref(),
                id,
                wall,
                &arrays,
                OpKind::Read,
                num_servers,
                sub,
                sync_policy,
            ));
        }
        let depth_probe = match depth_probe_config(opts, sync_policy, workers) {
            Some(cfg) => {
                let (mut write_wall_s, mut read_wall_s) = (f64::INFINITY, f64::INFINITY);
                for _ in 0..reps {
                    let start = Instant::now();
                    self.write_set(&WriteSet::new().array(meta, PROBE_TAG, &data).tuned(&cfg))?;
                    write_wall_s = write_wall_s.min(start.elapsed().as_secs_f64());
                    let start = Instant::now();
                    self.read_set(
                        &mut ReadSet::new().array(meta, PROBE_TAG, &mut buf).tuned(&cfg),
                    )?;
                    read_wall_s = read_wall_s.min(start.elapsed().as_secs_f64());
                }
                Some(DepthProbe {
                    depth: cfg.pipeline_depth,
                    write_wall_s,
                    read_wall_s,
                })
            }
            None => None,
        };
        finish(
            &write_probes,
            &read_probes,
            depth_probe,
            meta,
            num_servers,
            workers,
            sync_policy,
            opts,
        )
    }
}

impl Calibrate for PandaService {
    fn calibrate(
        &mut self,
        meta: &ArrayMeta,
        opts: &TunerOptions,
    ) -> Result<Calibration, PandaError> {
        let mut opts = opts.clone();
        opts.launch_io_workers = self.system().io_workers();
        let slots = self.system().num_clients();
        let mut probe = self.open().ok_or(PandaError::Admission {
            issue: panda_core::AdmissionIssue::Saturated {
                live: slots,
                max: slots,
            },
        })?;
        let result = probe.calibrate(meta, &opts);
        self.close(probe);
        remove_probe_files(self.system());
        result
    }
}

/// Calibrate an SPMD fleet: every client participates in the probe
/// collectives (scoped threads, exactly like application submits), so
/// the fitted exchange costs include the real many-client fan-in.
pub fn calibrate_fleet(
    system: &PandaSystem,
    clients: &mut [PandaClient],
    meta: &ArrayMeta,
    opts: &TunerOptions,
) -> Result<Calibration, PandaError> {
    require_timeline(system.recorder().as_ref())?;
    let first = clients.first().ok_or(PandaError::Config {
        issue: ConfigIssue::NoClientHandles,
    })?;
    let num_servers = system.num_servers();
    let sync_policy = first.sync_policy();
    let workers = system.io_workers();
    let mut opts = opts.clone();
    opts.launch_io_workers = workers;

    let datas: Vec<Vec<u8>> = (0..clients.len())
        .map(|r| vec![0u8; meta.client_bytes(r)])
        .collect();
    let mut bufs: Vec<Vec<u8>> = datas.clone();

    let reps = opts.probe_reps.max(1);
    let mut write_probes = Vec::new();
    let mut read_probes = Vec::new();
    for &sub in &[opts.probe_subchunk_bytes.0, opts.probe_subchunk_bytes.1] {
        let probe = TunedConfig::new(sub, 1, workers.max(1));
        let arrays = probe_arrays(meta);

        let (id, wall) = fleet_min_of_reps(reps, || fleet_write(clients, meta, &datas, &probe))?;
        write_probes.push(observe(
            system.recorder().as_ref(),
            id,
            wall,
            &arrays,
            OpKind::Write,
            num_servers,
            sub,
            sync_policy,
        ));

        let (id, wall) = fleet_min_of_reps(reps, || fleet_read(clients, meta, &mut bufs, &probe))?;
        read_probes.push(observe(
            system.recorder().as_ref(),
            id,
            wall,
            &arrays,
            OpKind::Read,
            num_servers,
            sub,
            sync_policy,
        ));
    }
    let depth_probe = match depth_probe_config(&opts, sync_policy, workers) {
        Some(cfg) => {
            let (_, write_wall_s) =
                fleet_min_of_reps(reps, || fleet_write(clients, meta, &datas, &cfg))?;
            let (_, read_wall_s) =
                fleet_min_of_reps(reps, || fleet_read(clients, meta, &mut bufs, &cfg))?;
            Some(DepthProbe {
                depth: cfg.pipeline_depth,
                write_wall_s,
                read_wall_s,
            })
        }
        None => None,
    };
    remove_probe_files(system);
    finish(
        &write_probes,
        &read_probes,
        depth_probe,
        meta,
        num_servers,
        workers,
        sync_policy,
        &opts,
    )
}

/// One fleet-wide probe collective, write direction: every client
/// submits under scoped threads (exactly like an application), and the
/// leader's request id plus the fleet wall come back for scoping.
fn fleet_write(
    clients: &mut [PandaClient],
    meta: &ArrayMeta,
    datas: &[Vec<u8>],
    cfg: &TunedConfig,
) -> Result<(u64, f64), PandaError> {
    let start = Instant::now();
    let results: Vec<Result<(), PandaError>> = std::thread::scope(|s| {
        let handles: Vec<_> = clients
            .iter_mut()
            .zip(datas)
            .map(|(client, data)| {
                s.spawn(move || {
                    client.write_set(&WriteSet::new().array(meta, PROBE_TAG, data).tuned(cfg))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    results.into_iter().collect::<Result<(), _>>()?;
    let wall = start.elapsed().as_secs_f64();
    Ok((clients[0].last_request_id().unwrap_or(0), wall))
}

/// One fleet-wide probe collective, read direction.
fn fleet_read(
    clients: &mut [PandaClient],
    meta: &ArrayMeta,
    bufs: &mut [Vec<u8>],
    cfg: &TunedConfig,
) -> Result<(u64, f64), PandaError> {
    let start = Instant::now();
    let results: Vec<Result<(), PandaError>> = std::thread::scope(|s| {
        let handles: Vec<_> = clients
            .iter_mut()
            .zip(bufs.iter_mut())
            .map(|(client, buf)| {
                s.spawn(move || {
                    client.read_set(&mut ReadSet::new().array(meta, PROBE_TAG, buf).tuned(cfg))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    results.into_iter().collect::<Result<(), _>>()?;
    let wall = start.elapsed().as_secs_f64();
    Ok((clients[0].last_request_id().unwrap_or(0), wall))
}

/// Repeat a fleet probe and keep the fastest rep.
fn fleet_min_of_reps(
    reps: usize,
    mut probe: impl FnMut() -> Result<(u64, f64), PandaError>,
) -> Result<(u64, f64), PandaError> {
    let mut best: Option<(u64, f64)> = None;
    for _ in 0..reps.max(1) {
        let (id, wall) = probe()?;
        if best.is_none_or(|(_, w)| wall < w) {
            best = Some((id, wall));
        }
    }
    Ok(best.expect("at least one probe rep"))
}

/// Measured walls of the deep-pipeline probe pair.
struct DepthProbe {
    depth: usize,
    write_wall_s: f64,
    read_wall_s: f64,
}

/// The deep probe's operating point, or `None` when the options or the
/// flush policy rule it out.
fn depth_probe_config(
    opts: &TunerOptions,
    sync_policy: SyncPolicy,
    workers: usize,
) -> Option<TunedConfig> {
    let depth = opts.depth_probe?;
    if depth <= 1 || sync_policy == SyncPolicy::PerWrite {
        return None;
    }
    Some(TunedConfig::new(
        opts.probe_subchunk_bytes.0.max(1),
        depth,
        workers.max(1),
    ))
}

fn require_timeline(recorder: &dyn Recorder) -> Result<(), PandaError> {
    if recorder.timeline().is_none() {
        return Err(PandaError::Config {
            issue: ConfigIssue::CalibrationNeedsTimeline,
        });
    }
    Ok(())
}

fn probe_arrays(meta: &ArrayMeta) -> Vec<ArrayOp> {
    vec![ArrayOp {
        meta: meta.clone(),
        file_tag: PROBE_TAG.to_string(),
        section: None,
    }]
}

/// Scope the recorder to one probe request and package the observation.
#[allow(clippy::too_many_arguments)]
fn observe(
    recorder: &dyn Recorder,
    request: u64,
    wall_s: f64,
    arrays: &[ArrayOp],
    op: OpKind,
    num_servers: usize,
    subchunk_bytes: usize,
    sync_policy: SyncPolicy,
) -> ProbeObservation {
    let report = RunReport::for_request(recorder, request);
    ProbeObservation {
        summary: report.calibration_summary(),
        wall_s,
        steps: max_server_steps(arrays, op, num_servers, subchunk_bytes, sync_policy),
    }
}

/// Steps on the busiest server for this operation at this subchunk cap.
fn max_server_steps(
    arrays: &[ArrayOp],
    op: OpKind,
    num_servers: usize,
    subchunk_bytes: usize,
    sync_policy: SyncPolicy,
) -> usize {
    (0..num_servers)
        .map(|s| {
            CollectiveSchedule::build(arrays, op, s, num_servers, subchunk_bytes, sync_policy)
                .steps
                .len()
        })
        .max()
        .unwrap_or(0)
}

/// Predict one direction's wall seconds at an operating point by
/// walking the real schedule per server: the serial per-step costs sum,
/// and a depth-`d` window converges the sum toward the bottleneck
/// stage, `T = bound + (serial − bound)/min(d, steps)`.
#[allow(clippy::too_many_arguments)]
fn predict_direction(
    costs: &DirectionCosts,
    arrays: &[ArrayOp],
    op: OpKind,
    num_servers: usize,
    subchunk_bytes: usize,
    pipeline_depth: usize,
    io_workers: usize,
    sync_policy: SyncPolicy,
) -> f64 {
    let mut worst: f64 = 0.0;
    for server in 0..num_servers {
        let Some(stages) = stage_sums(
            costs,
            arrays,
            op,
            server,
            num_servers,
            subchunk_bytes,
            io_workers,
            sync_policy,
        ) else {
            continue;
        };
        let depth = pipeline_depth.min(stages.steps).max(1) as f64;
        let serial = stages.serial();
        let bound = stages.bound(costs.overlap).clamp(0.0, serial);
        worst = worst.max(bound + (serial - bound) / depth);
    }
    costs.startup_s + worst
}

/// One server's per-stage cost sums at an operating point.
struct StageSums {
    /// Exchange per-byte occupancy — serial wire/memcpy time.
    exchange_bytes: f64,
    /// Exchange per-op share plus the fitted per-step overhead: the
    /// latency-like costs that a deep window can hide.
    exchange_ops: f64,
    disk: f64,
    /// Reorganization elapsed (CPU seconds over the worker count).
    reorg: f64,
    steps: usize,
}

impl StageSums {
    /// Depth-1 wall: every stage in sequence.
    fn serial(&self) -> f64 {
        self.exchange_bytes + self.exchange_ops + self.disk + self.reorg
    }

    /// The pipelined floor. Per-byte occupancy is a serial resource;
    /// the per-op share of the exchange stage is latency, and `overlap`
    /// — measured by the deep-pipeline probe — says how much of it
    /// actually survives pipelining.
    fn bound(&self, overlap: f64) -> f64 {
        (self.exchange_bytes + overlap * self.exchange_ops)
            .max(self.disk)
            .max(self.reorg)
    }
}

/// One server's stage sums at an operating point. The per-step
/// overhead rides the exchange stage (control round trips happen
/// there); disk and reorg hide behind it.
#[allow(clippy::too_many_arguments)]
fn stage_sums(
    costs: &DirectionCosts,
    arrays: &[ArrayOp],
    op: OpKind,
    server: usize,
    num_servers: usize,
    subchunk_bytes: usize,
    io_workers: usize,
    sync_policy: SyncPolicy,
) -> Option<StageSums> {
    let schedule =
        CollectiveSchedule::build(arrays, op, server, num_servers, subchunk_bytes, sync_policy);
    let n = schedule.steps.len();
    if n == 0 {
        return None;
    }
    let (mut exchange_bytes, mut disk, mut reorg) = (0.0, 0.0, 0.0);
    for step in &schedule.steps {
        let bytes = step.sub.bytes as u64;
        exchange_bytes += costs.exchange.per_byte_s * bytes as f64;
        disk += costs.disk.eval(bytes);
        reorg += costs.reorg.eval(bytes);
    }
    reorg /= io_workers.max(1) as f64;
    let exchange_ops = (costs.exchange.per_op_s + costs.step_overhead_s) * n as f64;
    Some(StageSums {
        exchange_bytes,
        exchange_ops,
        disk,
        reorg,
        steps: n,
    })
}

/// Invert the depth formula at the deep-pipeline probe: with the
/// depth-1 fit in hand and a measured wall at depth `d`, solve
/// `measured = startup + b' + (serial − b')/min(d, n)` for the
/// effective serial floor `b'` on the dominant server, and return it
/// as a multiple of the modeled bound (clamped so predictions stay in
/// `[serial/m, serial]`). Returns 1.0 — the fully-serial assumption —
/// when the probe carries no depth signal (one step, zero bound).
#[allow(clippy::too_many_arguments)]
fn solve_overlap(
    costs: &DirectionCosts,
    arrays: &[ArrayOp],
    op: OpKind,
    num_servers: usize,
    subchunk_bytes: usize,
    pipeline_depth: usize,
    io_workers: usize,
    sync_policy: SyncPolicy,
    measured_wall_s: f64,
) -> f64 {
    let mut dominant: Option<StageSums> = None;
    for server in 0..num_servers {
        let stages = stage_sums(
            costs,
            arrays,
            op,
            server,
            num_servers,
            subchunk_bytes,
            io_workers,
            sync_policy,
        );
        if let Some(stages) = stages {
            if dominant
                .as_ref()
                .is_none_or(|d| stages.serial() > d.serial())
            {
                dominant = Some(stages);
            }
        }
    }
    let Some(stages) = dominant else {
        return 1.0;
    };
    let serial = stages.serial();
    let m = pipeline_depth.min(stages.steps).max(1) as f64;
    if m <= 1.0 || serial <= f64::EPSILON || stages.exchange_ops <= f64::EPSILON {
        return 1.0;
    }
    // If the bottleneck is disk or reorg regardless of the overlap
    // fraction, the probe's wall carries no signal about it.
    if stages.bound(1.0) <= stages.disk.max(stages.reorg) {
        return 1.0;
    }
    let stage_wall = (measured_wall_s - costs.startup_s).max(0.0);
    let effective = ((stage_wall - serial / m) * m / (m - 1.0)).clamp(0.0, serial);
    // Invert bound(ov) = exchange_bytes + ov * exchange_ops on the
    // exchange branch; the floor stays at the occupancy-only bound.
    ((effective - stages.exchange_bytes) / stages.exchange_ops).clamp(0.0, 1.0)
}

/// Fit the model from the probes and score the whole candidate grid.
#[allow(clippy::too_many_arguments)]
fn finish(
    write_probes: &[ProbeObservation],
    read_probes: &[ProbeObservation],
    depth_probe: Option<DepthProbe>,
    meta: &ArrayMeta,
    num_servers: usize,
    launch_io_workers: usize,
    sync_policy: SyncPolicy,
    opts: &TunerOptions,
) -> Result<Calibration, PandaError> {
    if write_probes.iter().all(|p| p.summary.subchunks == 0)
        && read_probes.iter().all(|p| p.summary.subchunks == 0)
    {
        // A timeline existed but recorded nothing for our requests
        // (e.g. a saturated ring): the fit would be vacuous.
        return Err(PandaError::Config {
            issue: ConfigIssue::CalibrationNeedsTimeline,
        });
    }
    let workers = launch_io_workers.max(1);
    let mut costs = FittedCosts {
        write: DirectionCosts::fit(write_probes, num_servers, workers),
        read: DirectionCosts::fit(read_probes, num_servers, workers),
        num_servers,
        probe_io_workers: workers,
    };
    let arrays = probe_arrays(meta);
    if let Some(dp) = depth_probe {
        let sub = opts.probe_subchunk_bytes.0.max(1);
        for (dir, op, wall) in [
            (&mut costs.write, OpKind::Write, dp.write_wall_s),
            (&mut costs.read, OpKind::Read, dp.read_wall_s),
        ] {
            dir.overlap = solve_overlap(
                dir,
                &arrays,
                op,
                num_servers,
                sub,
                dp.depth,
                workers,
                sync_policy,
                wall,
            );
        }
    }
    let mut candidates = Vec::new();
    for &sub in &opts.subchunk_bytes {
        for &depth in &opts.depths {
            if sub == 0 || depth == 0 {
                continue;
            }
            if sync_policy == SyncPolicy::PerWrite && depth > 1 {
                continue;
            }
            for &io_workers in &opts.io_workers {
                if io_workers == 0 {
                    continue;
                }
                let write_s = predict_direction(
                    &costs.write,
                    &arrays,
                    OpKind::Write,
                    num_servers,
                    sub,
                    depth,
                    io_workers,
                    sync_policy,
                );
                let read_s = predict_direction(
                    &costs.read,
                    &arrays,
                    OpKind::Read,
                    num_servers,
                    sub,
                    depth,
                    io_workers,
                    sync_policy,
                );
                candidates.push(Candidate {
                    subchunk_bytes: sub,
                    pipeline_depth: depth,
                    io_workers,
                    write_s,
                    read_s,
                    predicted_s: opts.write_weight * write_s + opts.read_weight * read_s,
                });
            }
        }
    }
    candidates.sort_by(|a, b| a.predicted_s.total_cmp(&b.predicted_s));
    let tuned = match candidates.first() {
        Some(best) => TunedConfig {
            subchunk_bytes: best.subchunk_bytes,
            pipeline_depth: best.pipeline_depth,
            io_workers: best.io_workers,
            predicted_s: best.predicted_s,
        },
        // Empty search space: keep the probes' operating point.
        None => TunedConfig::new(opts.probe_subchunk_bytes.1.max(1), 1, workers),
    };
    Ok(Calibration {
        costs,
        candidates,
        tuned,
        sync_policy,
    })
}

/// Best-effort cleanup of the probe collectives' files.
fn remove_probe_files(system: &PandaSystem) {
    for (server, fs) in system.filesystems.iter().enumerate() {
        let _ = fs.remove(&format!("{PROBE_TAG}.s{server}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::CostLine;
    use panda_schema::{DataSchema, ElementType, Mesh, Shape};

    fn meta() -> ArrayMeta {
        let shape = Shape::new(&[128, 128]).unwrap();
        let mem =
            DataSchema::block_all(shape.clone(), ElementType::F64, Mesh::new(&[1, 1]).unwrap())
                .unwrap();
        let disk = DataSchema::traditional_order(shape, ElementType::F64, 2).unwrap();
        ArrayMeta::new("t", mem, disk).unwrap()
    }

    fn synthetic_costs() -> FittedCosts {
        let dir = DirectionCosts {
            exchange: CostLine {
                per_op_s: 1e-4,
                per_byte_s: 5e-9,
            },
            disk: CostLine {
                per_op_s: 2e-4,
                per_byte_s: 2e-8,
            },
            reorg: CostLine {
                per_op_s: 0.0,
                per_byte_s: 4e-9,
            },
            step_overhead_s: 5e-5,
            startup_s: 1e-3,
            overlap: 1.0,
        };
        FittedCosts {
            write: dir,
            read: dir,
            num_servers: 2,
            probe_io_workers: 1,
        }
    }

    #[test]
    fn deeper_pipelines_predict_monotonically_faster() {
        let costs = synthetic_costs();
        let arrays = probe_arrays(&meta());
        let predict = |depth| {
            predict_direction(
                &costs.write,
                &arrays,
                OpKind::Write,
                2,
                16 << 10,
                depth,
                1,
                SyncPolicy::PerCollective,
            )
        };
        let t1 = predict(1);
        let t2 = predict(2);
        let t4 = predict(4);
        assert!(t1 > t2 && t2 > t4, "{t1} {t2} {t4}");
        // Diminishing returns: the bottleneck stage is a floor.
        assert!(t4 > costs.write.startup_s);
        // Depth beyond the step count changes nothing.
        assert_eq!(predict(1 << 20), predict(64));
    }

    #[test]
    fn overlap_solve_round_trips_through_prediction() {
        // An exchange-dominated fit (fast disk): the per-op share of
        // the exchange stage carries the depth signal the probe reads.
        let mut costs = DirectionCosts {
            exchange: CostLine {
                per_op_s: 1e-3,
                per_byte_s: 5e-9,
            },
            disk: CostLine {
                per_op_s: 1e-6,
                per_byte_s: 1e-10,
            },
            reorg: CostLine {
                per_op_s: 0.0,
                per_byte_s: 4e-9,
            },
            step_overhead_s: 5e-5,
            startup_s: 1e-3,
            overlap: 1.0,
        };
        let arrays = probe_arrays(&meta());
        let (sub, depth, workers) = (16 << 10, 4, 1);
        // Pretend the deep probe measured exactly what a half-serial
        // bottleneck predicts; the solve must recover that fraction,
        // and predictions must interpolate below the serial-bound fit.
        costs.overlap = 0.5;
        let measured = predict_direction(
            &costs,
            &arrays,
            OpKind::Write,
            2,
            sub,
            depth,
            workers,
            SyncPolicy::PerCollective,
        );
        costs.overlap = 1.0;
        let serial_bound = predict_direction(
            &costs,
            &arrays,
            OpKind::Write,
            2,
            sub,
            depth,
            workers,
            SyncPolicy::PerCollective,
        );
        assert!(measured < serial_bound);
        let solved = solve_overlap(
            &costs,
            &arrays,
            OpKind::Write,
            2,
            sub,
            depth,
            workers,
            SyncPolicy::PerCollective,
            measured,
        );
        assert!((solved - 0.5).abs() < 1e-9, "solved {solved}");
        // A probe with no depth signal keeps the serial assumption.
        let flat = solve_overlap(
            &costs,
            &arrays,
            OpKind::Write,
            2,
            sub,
            1,
            workers,
            SyncPolicy::PerCollective,
            measured,
        );
        assert_eq!(flat, 1.0);
    }

    #[test]
    fn search_respects_the_sync_policy() {
        let probes = [
            ProbeObservation {
                summary: Default::default(),
                wall_s: 0.1,
                steps: 16,
            },
            ProbeObservation {
                summary: {
                    let mut s = panda_obs::CalibrationSummary::default();
                    s.disk.push(1024, 1e-3);
                    s.subchunks = 1;
                    s
                },
                wall_s: 0.05,
                steps: 4,
            },
        ];
        let calibration = finish(
            &probes,
            &probes,
            None,
            &meta(),
            2,
            1,
            SyncPolicy::PerWrite,
            &TunerOptions::default(),
        )
        .unwrap();
        assert!(!calibration.candidates.is_empty());
        assert!(calibration.candidates.iter().all(|c| c.pipeline_depth == 1));
        assert_eq!(calibration.tuned.pipeline_depth, 1);
        assert!(calibration.tuned.validate(SyncPolicy::PerWrite).is_ok());
    }

    #[test]
    fn candidates_are_sorted_and_tuned_is_best() {
        let probes = [
            ProbeObservation {
                summary: {
                    let mut s = panda_obs::CalibrationSummary::default();
                    for _ in 0..8 {
                        s.disk.push(32 << 10, 3e-3);
                        s.exchange.push(32 << 10, 1e-3);
                    }
                    s.subchunks = 8;
                    s
                },
                wall_s: 0.05,
                steps: 4,
            },
            ProbeObservation {
                summary: {
                    let mut s = panda_obs::CalibrationSummary::default();
                    for _ in 0..2 {
                        s.disk.push(128 << 10, 9e-3);
                        s.exchange.push(128 << 10, 3e-3);
                    }
                    s.subchunks = 2;
                    s
                },
                wall_s: 0.04,
                steps: 1,
            },
        ];
        let calibration = finish(
            &probes,
            &probes,
            None,
            &meta(),
            2,
            2,
            SyncPolicy::PerCollective,
            &TunerOptions::default(),
        )
        .unwrap();
        let preds: Vec<f64> = calibration
            .candidates
            .iter()
            .map(|c| c.predicted_s)
            .collect();
        assert!(preds.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(calibration.tuned.predicted_s, preds[0]);
        assert!(calibration.tuned.subchunk_bytes > 0);
        // The fitted machine is a well-formed Sp2Machine.
        let machine = calibration.fitted_machine();
        assert!(machine.net.bandwidth > 0.0 && machine.net.bandwidth.is_finite());
        assert!(machine.disk.raw_bandwidth > 0.0 && machine.disk.raw_bandwidth.is_finite());
        assert!(machine.memcpy_bandwidth > 0.0);
        assert!(machine.startup >= 0.0);
    }

    #[test]
    fn vacuous_probes_are_a_typed_error() {
        let empty = ProbeObservation {
            summary: Default::default(),
            wall_s: 0.1,
            steps: 4,
        };
        let err = finish(
            &[empty],
            &[empty],
            None,
            &meta(),
            2,
            1,
            SyncPolicy::PerCollective,
            &TunerOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            PandaError::Config {
                issue: ConfigIssue::CalibrationNeedsTimeline
            }
        ));
    }
}
