//! Schema advisor — the paper's stated near-future work (§5): "we ...
//! are developing a cost model to predict Panda's performance given an
//! in-memory and on-disk schema."
//!
//! Given the application's memory schema and a workload description
//! (how many collective writes and reads per run, and how many times a
//! *sequential* consumer — a visualizer on a workstation — will scan
//! the dataset afterwards), the advisor enumerates candidate disk
//! schemas, predicts the cost of each using the same DES that
//! regenerates the paper's figures, and ranks them.
//!
//! This formalizes the trade-off the paper discusses qualitatively:
//! natural chunking is fastest for Panda itself, but a traditional-
//! order schema pays a modest reorganization cost during the collective
//! in exchange for files a sequential machine can consume by plain
//! concatenation — "this is useful when users know how the data will be
//! accessed in the future and wish to optimize for the future" (§2).

use panda_core::{ArrayMeta, OpKind};
use panda_fs::aix::IoDirection;
use panda_schema::{DataSchema, Dist, Mesh};

use crate::actors::{simulate, CollectiveSpec};
use crate::machine::Sp2Machine;

/// How the dataset will be used, per run of the application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Collective writes (timesteps, checkpoints).
    pub writes: f64,
    /// Collective reads back into the parallel application (restarts).
    pub reads: f64,
    /// Sequential whole-dataset scans by a downstream consumer.
    pub consumer_scans: f64,
}

impl Workload {
    /// A write-dominated production run: many dumps, rare restarts, no
    /// post-processing on a sequential machine.
    pub fn write_heavy() -> Self {
        Workload {
            writes: 100.0,
            reads: 1.0,
            consumer_scans: 0.0,
        }
    }

    /// A visualization pipeline: every dump is later scanned by a
    /// sequential tool.
    pub fn consumer_heavy() -> Self {
        Workload {
            writes: 10.0,
            reads: 0.0,
            consumer_scans: 10.0,
        }
    }
}

/// One candidate disk schema with its predicted costs (seconds per
/// operation).
#[derive(Debug, Clone)]
pub struct Prediction {
    /// Human-readable candidate label (paper-style schema notation).
    pub label: String,
    /// The candidate metadata (memory schema + this disk schema).
    pub meta: ArrayMeta,
    /// Predicted elapsed seconds for one collective write.
    pub write_s: f64,
    /// Predicted elapsed seconds for one collective read.
    pub read_s: f64,
    /// Predicted elapsed seconds for one sequential consumer scan.
    pub consumer_s: f64,
    /// Workload-weighted total seconds.
    pub total_s: f64,
}

/// Enumerate the candidate disk schemas for `memory` over `num_servers`
/// I/O nodes: natural chunking plus every single-axis `BLOCK` slab
/// orientation (`BLOCK,*,*`, `*,BLOCK,*`, ...).
pub fn candidate_disk_schemas(
    memory: &DataSchema,
    num_servers: usize,
) -> Vec<(String, DataSchema)> {
    let mut out = Vec::new();
    out.push(("natural chunking".to_string(), memory.clone()));
    let rank = memory.shape().rank();
    for axis in 0..rank {
        if memory.shape().dim(axis) < num_servers {
            continue; // cannot spread this axis over all servers
        }
        let mut dists = vec![Dist::Star; rank];
        dists[axis] = Dist::Block;
        let mesh = Mesh::line(num_servers).expect("nonzero server count");
        if let Ok(schema) = DataSchema::new(memory.shape().clone(), memory.elem(), &dists, mesh) {
            let label = if axis == 0 {
                "traditional order (BLOCK on axis 0)".to_string()
            } else {
                format!("slabs on axis {axis}")
            };
            out.push((label, schema));
        }
    }
    out
}

/// Cost of one sequential consumer scan of the dataset.
///
/// Scenario (paper §2–3): the per-server files are migrated to a
/// sequential workstation (concatenated in server order onto one
/// disk), and a consumer reads the array in traditional row-major
/// order. For a `BLOCK,*,...,*` disk schema the concatenation *is* the
/// row-major array, so the scan is purely sequential. For any chunked
/// schema, the row-major walk jumps between chunk files: each global
/// row is cut into segments at chunk boundaries along the innermost
/// axis, and each discontinuity costs a seek. Large sequential
/// stretches are coalesced into ≤ 1 MB requests, matching how a real
/// consumer would buffer.
fn consumer_scan_cost(machine: &Sp2Machine, meta: &ArrayMeta, num_servers: usize) -> f64 {
    use panda_core::baseline::chunk_placements;
    use panda_schema::copy::offset_in_region;

    let elem = meta.elem_size();
    let shape = meta.shape();
    let rank = shape.rank();
    let placements = chunk_placements(meta, num_servers);
    // Concatenate server files: global offset = server base + in-file
    // offset.
    let mut server_base = vec![0u64; num_servers + 1];
    for p in &placements {
        let end = p.file_offset + p.region.num_bytes(elem) as u64;
        server_base[p.server + 1] = server_base[p.server + 1].max(end);
    }
    for s in 0..num_servers {
        server_base[s + 1] += server_base[s];
    }
    let grid = meta.disk_grid();
    let by_chunk: std::collections::HashMap<usize, &_> =
        placements.iter().map(|p| (p.chunk_idx, p)).collect();

    // Walk the array row by row, emitting (offset, len) segments, and
    // fold contiguous segments into ≤ 1 MB requests. Seeks are charged
    // at every discontinuity.
    let mut time = 0.0f64;
    let mut expected: Option<u64> = None;
    let mut pending: usize = 0; // contiguous bytes accumulated
    fn flush(machine: &Sp2Machine, time: &mut f64, pending: &mut usize) {
        let mut left = *pending;
        while left > 0 {
            let req = left.min(1 << 20);
            *time += machine.disk.access_time(req, IoDirection::Read);
            left -= req;
        }
        *pending = 0;
    }

    // Iterate rows via the outer dims; rank-0/1 arrays are one "row".
    let outer_shape = if rank <= 1 {
        panda_schema::Shape::new(&[]).expect("rank-0 shape")
    } else {
        panda_schema::Shape::new(&shape.dims()[..rank - 1]).expect("nonzero dims")
    };
    for outer in outer_shape.iter_indices() {
        // Cut this row at chunk boundaries along the last axis.
        let mut z = 0usize;
        let zmax = if rank == 0 { 1 } else { shape.dim(rank - 1) };
        while z < zmax {
            let idx: Vec<usize> = if rank == 0 {
                vec![]
            } else {
                let mut v = outer.clone();
                v.push(z);
                v
            };
            let chunk_idx = grid.chunk_of_index(&idx);
            let p = by_chunk[&chunk_idx];
            let seg_end = if rank == 0 {
                1
            } else {
                p.region.hi()[rank - 1].min(zmax)
            };
            let seg_elems = seg_end - z;
            let off = server_base[p.server]
                + p.file_offset
                + offset_in_region(&p.region, &idx, elem) as u64;
            let seg_bytes = seg_elems * elem;
            match expected {
                Some(e) if e == off => pending += seg_bytes,
                Some(_) => {
                    flush(machine, &mut time, &mut pending);
                    time += machine.disk.seek_penalty;
                    pending = seg_bytes;
                }
                None => pending = seg_bytes,
            }
            expected = Some(off + seg_bytes as u64);
            z = seg_end.max(z + 1);
        }
    }
    flush(machine, &mut time, &mut pending);
    time
}

/// Predict and rank all candidate disk schemas for `memory` under the
/// given workload; best (lowest weighted total) first.
pub fn advise(
    machine: &Sp2Machine,
    name: &str,
    memory: &DataSchema,
    num_servers: usize,
    workload: &Workload,
) -> Vec<Prediction> {
    let mut predictions = Vec::new();
    for (label, disk) in candidate_disk_schemas(memory, num_servers) {
        let Ok(meta) = ArrayMeta::new(name, memory.clone(), disk) else {
            continue;
        };
        let write_s = simulate(
            machine,
            &CollectiveSpec {
                arrays: vec![meta.clone()],
                op: OpKind::Write,
                num_servers,
                subchunk_bytes: 1 << 20,
                fast_disk: false,
                section: None,
            },
        )
        .elapsed;
        let read_s = simulate(
            machine,
            &CollectiveSpec {
                arrays: vec![meta.clone()],
                op: OpKind::Read,
                num_servers,
                subchunk_bytes: 1 << 20,
                fast_disk: false,
                section: None,
            },
        )
        .elapsed;
        let consumer_s = if workload.consumer_scans > 0.0 {
            consumer_scan_cost(machine, &meta, num_servers)
        } else {
            0.0
        };
        let total_s = workload.writes * write_s
            + workload.reads * read_s
            + workload.consumer_scans * consumer_s;
        predictions.push(Prediction {
            label,
            meta,
            write_s,
            read_s,
            consumer_s,
            total_s,
        });
    }
    predictions.sort_by(|a, b| a.total_s.total_cmp(&b.total_s));
    predictions
}

/// Render one workload's ranked table, in the advisor report's format.
pub fn render_workload(
    machine: &Sp2Machine,
    title: &str,
    workload: &Workload,
    memory: &DataSchema,
    num_servers: usize,
) -> String {
    let mut out = String::new();
    out.push_str(&format!("workload: {title}\n"));
    out.push_str(&format!(
        "  ({} collective writes, {} collective reads, {} sequential consumer scans)\n",
        workload.writes, workload.reads, workload.consumer_scans
    ));
    out.push_str(&format!(
        "{:<38} {:>10} {:>10} {:>12} {:>12}\n",
        "disk schema", "write (s)", "read (s)", "consumer (s)", "total (s)"
    ));
    for p in advise(machine, "array", memory, num_servers, workload) {
        out.push_str(&format!(
            "{:<38} {:>10.1} {:>10.1} {:>12.1} {:>12.0}\n",
            p.label, p.write_s, p.read_s, p.consumer_s, p.total_s
        ));
    }
    out.push('\n');
    out
}

/// The complete advisor report for the paper's flagship configuration
/// (512³ f32, `BLOCK,BLOCK,BLOCK` over a 4×4×2 mesh, 8 I/O nodes) on
/// the NAS SP2 machine — exactly the text of `results/advisor.txt`.
/// One function renders it for both the `advisor` bench bin and the
/// golden test, so the committed artifact cannot drift from the DES.
pub fn flagship_report() -> String {
    let machine = Sp2Machine::nas_sp2();
    let shape = panda_schema::Shape::new(&[512, 512, 512]).unwrap();
    let memory = DataSchema::block_all(
        shape,
        panda_schema::ElementType::F32,
        Mesh::new(&[4, 4, 2]).unwrap(),
    )
    .unwrap();
    let mut out = String::new();
    out.push_str(&format!("memory schema: {}\n", memory.describe()));
    out.push_str("i/o nodes:     8\n\n");
    out.push_str(&render_workload(
        &machine,
        "write-heavy production run",
        &Workload::write_heavy(),
        &memory,
        8,
    ));
    out.push_str(&render_workload(
        &machine,
        "visualization pipeline",
        &Workload::consumer_heavy(),
        &memory,
        8,
    ));
    out.push_str(&render_workload(
        &machine,
        "balanced",
        &Workload {
            writes: 20.0,
            reads: 5.0,
            consumer_scans: 2.0,
        },
        &memory,
        8,
    ));
    out.push_str(
        "expected shape: natural chunking wins whenever the data stays on the\n\
         parallel machine; a traditional-order schema wins as soon as sequential\n\
         consumers scan the dataset, because chunked layouts make a row-major\n\
         scan seek at every chunk boundary (paper §2: declare the disk schema\n\
         \"when users know how the data will be accessed in the future\").\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_schema::{ElementType, Shape};

    fn memory() -> DataSchema {
        DataSchema::block_all(
            Shape::new(&[64, 512, 512]).unwrap(),
            ElementType::F32,
            Mesh::new(&[2, 2, 2]).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn candidates_include_natural_and_all_slabs() {
        let c = candidate_disk_schemas(&memory(), 4);
        assert_eq!(c.len(), 4); // natural + 3 axes
        assert!(c[0].0.contains("natural"));
    }

    #[test]
    fn write_heavy_workload_prefers_natural_chunking() {
        let m = Sp2Machine::nas_sp2();
        let ranked = advise(&m, "t", &memory(), 4, &Workload::write_heavy());
        assert!(
            ranked[0].label.contains("natural"),
            "got {}",
            ranked[0].label
        );
        // And natural's write is at least as fast as every slab layout.
        for p in &ranked[1..] {
            assert!(ranked[0].write_s <= p.write_s + 1e-9);
        }
    }

    #[test]
    fn consumer_heavy_workload_prefers_traditional_order() {
        let m = Sp2Machine::nas_sp2();
        let ranked = advise(&m, "t", &memory(), 4, &Workload::consumer_heavy());
        assert!(
            ranked[0].label.contains("traditional"),
            "got {}",
            ranked[0].label
        );
        // The sequential scan of traditional-order files is much
        // cheaper than pulling a chunked layout through Panda.
        let natural = ranked.iter().find(|p| p.label.contains("natural")).unwrap();
        assert!(ranked[0].consumer_s < natural.consumer_s * 0.9);
    }

    #[test]
    fn predictions_are_positive_and_ordered() {
        let m = Sp2Machine::nas_sp2();
        let ranked = advise(&m, "t", &memory(), 2, &Workload::write_heavy());
        for w in ranked.windows(2) {
            assert!(w[0].total_s <= w[1].total_s);
        }
        for p in &ranked {
            assert!(p.write_s > 0.0 && p.read_s > 0.0);
        }
    }
}
