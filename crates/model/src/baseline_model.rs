//! Analytic cost models for the baseline strategies.
//!
//! These cost the *exact* access patterns the baseline implementations
//! in `panda-core::baseline` execute (the run/placement enumeration is
//! shared), under the same machine model as the server-directed DES.
//! They are intentionally simpler than the DES — baselines are disk-
//! bound by seeks, so a per-I/O-node disk timeline with a network lower
//! bound captures the behaviour that matters.

use panda_core::baseline::chunk_placements;
use panda_core::baseline::naive::client_runs;
use panda_core::{ArrayMeta, OpKind};
use panda_fs::aix::{IoDirection, MB};

use crate::machine::Sp2Machine;

/// Modeled outcome of one baseline collective.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineReport {
    /// Elapsed seconds.
    pub elapsed: f64,
    /// Aggregate throughput, MB/s.
    pub aggregate_mbs: f64,
    /// Disk operations issued across all I/O nodes.
    pub disk_ops: u64,
    /// Disk operations that required a seek.
    pub seeks: u64,
}

fn dir_of(op: OpKind) -> IoDirection {
    match op {
        OpKind::Write => IoDirection::Write,
        OpKind::Read => IoDirection::Read,
    }
}

/// Cost one per-server stream of `(offset, len)` accesses arriving in
/// the given order; returns (disk seconds, ops, seeks).
fn disk_stream_time(
    machine: &Sp2Machine,
    accesses: &[(u64, usize)],
    dir: IoDirection,
) -> (f64, u64, u64) {
    let mut t = 0.0;
    let mut seeks = 0u64;
    let mut expected: Option<u64> = None;
    for &(offset, len) in accesses {
        let sequential = match expected {
            Some(e) => offset == e,
            None => offset == 0,
        };
        if !sequential {
            seeks += 1;
        }
        t += machine.disk.access_time(len, dir)
            + if sequential {
                0.0
            } else {
                machine.disk.seek_penalty
            };
        expected = Some(offset + len as u64);
    }
    (t, accesses.len() as u64, seeks)
}

/// Model the naive client-directed collective: every client issues its
/// strided runs; each I/O node serves them in round-robin-interleaved
/// arrival order.
pub fn model_naive(
    machine: &Sp2Machine,
    array: &ArrayMeta,
    num_servers: usize,
    op: OpKind,
) -> BaselineReport {
    let num_clients = array.num_clients();
    // Per-server arrival streams: interleave the clients' run lists
    // round-robin, one request per turn (a fair approximation of
    // concurrent clients with no coordination).
    let per_client: Vec<Vec<_>> = (0..num_clients)
        .map(|c| client_runs(array, c, num_servers))
        .collect();
    let mut streams: Vec<Vec<(u64, usize)>> = vec![Vec::new(); num_servers];
    let max_len = per_client.iter().map(|r| r.len()).max().unwrap_or(0);
    for i in 0..max_len {
        for runs in &per_client {
            if let Some(run) = runs.get(i) {
                streams[run.server].push((run.file_offset, run.len));
            }
        }
    }

    let dir = dir_of(op);
    let mut worst_disk = 0.0f64;
    let mut ops = 0u64;
    let mut seeks = 0u64;
    let mut total_bytes = 0u64;
    for stream in &streams {
        let (t, o, s) = disk_stream_time(machine, stream, dir);
        worst_disk = worst_disk.max(t);
        ops += o;
        seeks += s;
        total_bytes += stream.iter().map(|&(_, l)| l as u64).sum::<u64>();
    }
    // Network lower bound: each byte crosses once; each run is one
    // message. Disk time dominates in practice.
    let msgs: usize = per_client.iter().map(|r| r.len()).sum();
    let net = total_bytes as f64 / machine.net.bandwidth / num_servers as f64
        + msgs as f64 * machine.net.small_msg_overhead / num_clients as f64;
    let elapsed = machine.startup + worst_disk.max(net);
    BaselineReport {
        elapsed,
        aggregate_mbs: total_bytes as f64 / MB / elapsed,
        disk_ops: ops,
        seeks,
    }
}

/// Model the two-phase collective: a client permutation phase, then
/// per-chunk contiguous shipping to the I/O nodes (chunks from
/// different proxies interleave, seeking only at chunk switches).
pub fn model_two_phase(
    machine: &Sp2Machine,
    array: &ArrayMeta,
    num_servers: usize,
    op: OpKind,
    stage_bytes: usize,
) -> BaselineReport {
    let num_clients = array.num_clients();
    let elem = array.elem_size();
    let placements = chunk_placements(array, num_servers);
    let mem_grid = array.memory_grid();

    // Phase 1: every byte that changes owner crosses the network once.
    // Bound by the busiest client's send+receive volume.
    let mut sent = vec![0u64; num_clients];
    let mut recv = vec![0u64; num_clients];
    let mut phase1_msgs = 0u64;
    for p in &placements {
        let proxy = p.chunk_idx % num_clients;
        for owner in mem_grid.chunks_intersecting(&p.region) {
            let bytes = mem_grid
                .chunk_region(owner)
                .intersect(&p.region)
                .map(|r| r.num_bytes(elem) as u64)
                .unwrap_or(0);
            if owner != proxy {
                sent[owner] += bytes;
                recv[proxy] += bytes;
                phase1_msgs += 1;
            }
        }
    }
    let busiest = sent
        .iter()
        .zip(&recv)
        .map(|(&s, &r)| s + r)
        .max()
        .unwrap_or(0);
    let phase1 = busiest as f64 / machine.net.bandwidth
        + phase1_msgs as f64 * machine.net.per_msg_overhead / num_clients as f64;

    // Phase 2: per server, chunks arrive interleaved by proxy; within a
    // chunk the stage-sized pieces are sequential.
    let dir = dir_of(op);
    let mut streams: Vec<Vec<(u64, usize)>> = vec![Vec::new(); num_servers];
    for p in &placements {
        let bytes = p.region.num_bytes(elem);
        let mut off = 0usize;
        while off < bytes {
            let len = stage_bytes.min(bytes - off);
            streams[p.server].push((p.file_offset + off as u64, len));
            off += len;
        }
    }
    let mut worst_disk = 0.0f64;
    let mut ops = 0u64;
    let mut seeks = 0u64;
    let mut total_bytes = 0u64;
    for stream in &streams {
        let (t, o, s) = disk_stream_time(machine, stream, dir);
        worst_disk = worst_disk.max(t);
        ops += o;
        seeks += s;
        total_bytes += stream.iter().map(|&(_, l)| l as u64).sum::<u64>();
    }
    let phase2_net = total_bytes as f64 / machine.net.bandwidth / num_servers as f64;
    let elapsed = machine.startup + phase1 + worst_disk.max(phase2_net);
    BaselineReport {
        elapsed,
        aggregate_mbs: total_bytes as f64 / MB / elapsed,
        disk_ops: ops,
        seeks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actors::{simulate, CollectiveSpec};
    use crate::experiment::{paper_array, DiskKind};

    #[test]
    fn naive_seeks_and_loses_to_server_directed() {
        let m = Sp2Machine::nas_sp2();
        let array = paper_array(16, 8, 4, DiskKind::Traditional);
        let naive = model_naive(&m, &array, 4, OpKind::Write);
        assert!(naive.seeks > 0);
        let sd = simulate(
            &m,
            &CollectiveSpec {
                arrays: vec![array],
                op: OpKind::Write,
                num_servers: 4,
                subchunk_bytes: 1 << 20,
                fast_disk: false,
                section: None,
            },
        );
        assert!(
            sd.elapsed < naive.elapsed,
            "server-directed {} vs naive {}",
            sd.elapsed,
            naive.elapsed
        );
    }

    #[test]
    fn two_phase_sits_between_naive_and_server_directed() {
        let m = Sp2Machine::nas_sp2();
        let array = paper_array(16, 8, 4, DiskKind::Traditional);
        let naive = model_naive(&m, &array, 4, OpKind::Write);
        let tp = model_two_phase(&m, &array, 4, OpKind::Write, 1 << 20);
        let sd = simulate(
            &m,
            &CollectiveSpec {
                arrays: vec![array],
                op: OpKind::Write,
                num_servers: 4,
                subchunk_bytes: 1 << 20,
                fast_disk: false,
                section: None,
            },
        );
        assert!(tp.seeks < naive.seeks);
        assert!(
            tp.elapsed < naive.elapsed,
            "{} vs {}",
            tp.elapsed,
            naive.elapsed
        );
        // Server-directed and two-phase are comparable in modeled time
        // (the paper claims ease-of-use/memory advantages, not a time
        // win over two-phase); both must decisively beat naive.
        assert!(
            sd.elapsed < tp.elapsed * 1.10,
            "{} vs {}",
            sd.elapsed,
            tp.elapsed
        );
        assert!(sd.elapsed < naive.elapsed * 0.8);
    }

    #[test]
    fn natural_chunking_naive_still_seeks_across_clients() {
        // Even under natural chunking the naive strategy interleaves
        // clients at each I/O node when a server owns several chunks.
        let m = Sp2Machine::nas_sp2();
        let array = paper_array(16, 8, 2, DiskKind::Natural);
        let naive = model_naive(&m, &array, 2, OpKind::Write);
        assert!(naive.seeks > 0);
    }
}
