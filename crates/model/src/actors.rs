//! DES actors replaying the Panda protocol through the machine model.
//!
//! One actor per compute node and one per I/O node. The servers execute
//! the *real* planner's subchunk schedule; clients respond to requests
//! exactly as the real runtime does. Time comes from the calibrated
//! [`Sp2Machine`]: control messages cost latency + small overhead, data
//! messages reserve both endpoints' network ports for
//! `per_msg_overhead + bytes/bandwidth`, strided gathers/scatters charge
//! the copying node, and disk accesses follow the AIX cost curve (or
//! cost nothing in "infinitely fast disk" mode, reproducing the paper's
//! commented-out-I/O experiment).

use panda_core::{build_server_plan, ArrayMeta, OpKind};
use panda_fs::aix::IoDirection;
use panda_sim::{secs_to_ns, Actor, ActorId, Context, Engine, Resource, SimTime};

use crate::machine::Sp2Machine;
use crate::report::SimReport;

/// One collective operation to simulate.
#[derive(Debug, Clone)]
pub struct CollectiveSpec {
    /// Arrays written/read in one collective, in order.
    pub arrays: Vec<ArrayMeta>,
    /// Direction.
    pub op: OpKind,
    /// Number of I/O nodes.
    pub num_servers: usize,
    /// Subchunk subdivision cap (1 MB in the paper).
    pub subchunk_bytes: usize,
    /// Simulate an infinitely fast disk (Figures 5, 6, 9).
    pub fast_disk: bool,
    /// Section-read restriction, applied to every array (reads only;
    /// mirrors `PandaClient::read_section`). `None` moves whole arrays.
    pub section: Option<panda_schema::Region>,
}

/// One client piece of a subchunk, precomputed from the plan.
#[derive(Debug, Clone)]
struct SimPiece {
    client: usize,
    bytes: usize,
    strided_client: bool,
    strided_server: bool,
}

/// One subchunk of a server's schedule.
#[derive(Debug, Clone)]
struct SimSub {
    bytes: usize,
    pieces: Vec<SimPiece>,
}

/// Shared world state: the machine's serial resources plus counters.
struct World {
    machine: Sp2Machine,
    /// Per compute node: its CPU + network port as one serial device.
    clients: Vec<Resource>,
    /// Per I/O node: network port (also charged for pack/scatter CPU).
    server_nic: Vec<Resource>,
    /// Per I/O node: the disk.
    server_disk: Vec<Resource>,
    data_msgs: u64,
    ctrl_msgs: u64,
    /// Completion time of each application's last server (one entry per
    /// concurrent collective; single-collective runs have one).
    app_done: Vec<SimTime>,
}

/// Simulation events.
#[derive(Debug, Clone)]
enum Ev {
    /// Server: begin the next subchunk of the schedule.
    Begin,
    /// Client: a server requests a piece (write path).
    Fetch {
        server: usize,
        sub: u32,
        piece: u32,
        bytes: usize,
        strided_client: bool,
    },
    /// Server: a piece arrived (write path).
    WriteData { sub: u32, piece: u32 },
    /// Server: the disk finished reading a subchunk (read path).
    DiskReadDone { sub: u32 },
    /// Client: a piece arrived (read path).
    ReadData { bytes: usize, strided_client: bool },
    /// Terminal no-op pinning the engine clock to a completion time.
    Done,
}

struct ClientActor {
    /// Index of this client's resource in `World::clients`.
    index: usize,
    /// ActorId base of this application's server actors.
    server_actor_base: usize,
    /// Map app-relative server index → resource index in
    /// `World::server_nic`/`server_disk` (identity for single runs;
    /// shared or disjoint ranges for concurrent runs).
    server_resource: Vec<usize>,
}

impl Actor<Ev, World> for ClientActor {
    fn handle(&mut self, event: Ev, ctx: &mut Context<'_, Ev, World>) {
        match event {
            Ev::Fetch {
                server,
                sub,
                piece,
                bytes,
                strided_client,
            } => {
                let now = ctx.now();
                let (gather_ns, dur_ns, latency_ns) = {
                    let m = &ctx.state.machine;
                    (
                        if strided_client {
                            secs_to_ns(m.memcpy_time(bytes))
                        } else {
                            0
                        },
                        secs_to_ns(m.net.transfer_time(bytes)),
                        secs_to_ns(m.net.latency),
                    )
                };
                // Gather on this node, then hold both network ports for
                // the transfer.
                let res = self.server_resource[server];
                let (_, gather_end) = ctx.state.clients[self.index].acquire(now, gather_ns);
                let start = gather_end.max(ctx.state.server_nic[res].free_at());
                let (_, end) = ctx.state.clients[self.index].acquire(start, dur_ns);
                ctx.state.server_nic[res].acquire(start, dur_ns);
                ctx.state.data_msgs += 1;
                ctx.send_at(
                    end + latency_ns,
                    ActorId(self.server_actor_base + server),
                    Ev::WriteData { sub, piece },
                );
            }
            Ev::ReadData {
                bytes,
                strided_client,
            } => {
                let scatter_ns = if strided_client {
                    secs_to_ns(ctx.state.machine.memcpy_time(bytes))
                } else {
                    0
                };
                let now = ctx.now();
                ctx.state.clients[self.index].acquire(now, scatter_ns);
            }
            _ => unreachable!("client actor received a server event"),
        }
    }
}

struct ServerActor {
    /// Index of this server's resources in `World::server_nic`/`_disk`.
    index: usize,
    /// Which concurrent collective this server belongs to.
    app: usize,
    /// ActorId base of this application's client actors.
    client_actor_base: usize,
    /// App-relative server index, echoed to clients in `Fetch`.
    server_pos: usize,
    op: OpKind,
    fast_disk: bool,
    subs: Vec<SimSub>,
    /// Next subchunk to begin.
    cur: usize,
    /// Pieces still in flight for the current subchunk (write path).
    outstanding: usize,
    /// When the current subchunk's assembly becomes complete.
    assembly_ready: SimTime,
    /// Disk (write) / network (read) completion time per subchunk.
    stage_end: Vec<SimTime>,
}

impl ServerActor {
    fn schedule_next(&self, assembled: SimTime, k: usize, ctx: &mut Context<'_, Ev, World>) {
        let depth = ctx.state.machine.pipeline_depth;
        let next_begin = if depth <= 1 {
            self.stage_end[k]
        } else if k + 1 >= depth {
            assembled.max(self.stage_end[k + 1 - depth])
        } else {
            assembled
        };
        let me = ctx.self_id();
        if self.cur < self.subs.len() {
            ctx.send_at(next_begin.max(ctx.now()), me, Ev::Begin);
        } else {
            // Pin the engine clock to this server's completion.
            ctx.send_at(self.stage_end[k].max(ctx.now()), me, Ev::Done);
        }
    }
}

impl Actor<Ev, World> for ServerActor {
    fn handle(&mut self, event: Ev, ctx: &mut Context<'_, Ev, World>) {
        match event {
            Ev::Begin => {
                let k = self.cur;
                if k >= self.subs.len() {
                    return;
                }
                match self.op {
                    OpKind::Write => {
                        // Request every piece of subchunk k.
                        self.outstanding = self.subs[k].pieces.len();
                        self.assembly_ready = ctx.now();
                        let control = secs_to_ns(ctx.state.machine.net.control_time());
                        for (pi, piece) in self.subs[k].pieces.iter().enumerate() {
                            ctx.state.ctrl_msgs += 1;
                            ctx.send_at(
                                ctx.now() + control,
                                ActorId(self.client_actor_base + piece.client),
                                Ev::Fetch {
                                    server: self.server_pos,
                                    sub: k as u32,
                                    piece: pi as u32,
                                    bytes: piece.bytes,
                                    strided_client: piece.strided_client,
                                },
                            );
                        }
                    }
                    OpKind::Read => {
                        // Issue the sequential disk read for subchunk k.
                        let end = if self.fast_disk {
                            ctx.now()
                        } else {
                            let dur = secs_to_ns(
                                ctx.state
                                    .machine
                                    .disk
                                    .access_time(self.subs[k].bytes, IoDirection::Read),
                            );
                            let now = ctx.now();
                            ctx.state.server_disk[self.index].acquire(now, dur).1
                        };
                        let me = ctx.self_id();
                        ctx.send_at(end, me, Ev::DiskReadDone { sub: k as u32 });
                    }
                }
            }
            Ev::WriteData { sub, piece } => {
                let k = sub as usize;
                debug_assert_eq!(k, self.cur, "blocking protocol: one subchunk at a time");
                let p = &self.subs[k].pieces[piece as usize];
                // Scatter into the subchunk buffer (traditional order).
                let scatter_ns = if p.strided_server {
                    secs_to_ns(ctx.state.machine.memcpy_time(p.bytes))
                } else {
                    0
                };
                let now = ctx.now();
                let (_, end) = ctx.state.server_nic[self.index].acquire(now, scatter_ns);
                self.assembly_ready = self.assembly_ready.max(end);
                self.outstanding -= 1;
                if self.outstanding == 0 {
                    let assembled =
                        self.assembly_ready + secs_to_ns(ctx.state.machine.per_subchunk_overhead);
                    let disk_end = if self.fast_disk {
                        assembled
                    } else {
                        let dur = secs_to_ns(
                            ctx.state
                                .machine
                                .disk
                                .access_time(self.subs[k].bytes, IoDirection::Write),
                        );
                        ctx.state.server_disk[self.index].acquire(assembled, dur).1
                    };
                    self.stage_end.push(disk_end);
                    debug_assert_eq!(self.stage_end.len(), k + 1);
                    self.cur += 1;
                    self.schedule_next(assembled, k, ctx);
                }
            }
            Ev::DiskReadDone { sub } => {
                let k = sub as usize;
                let m_overhead = secs_to_ns(ctx.state.machine.per_subchunk_overhead);
                let latency_ns = secs_to_ns(ctx.state.machine.net.latency);
                let now = ctx.now();
                ctx.state.server_nic[self.index].acquire(now, m_overhead);
                for piece in self.subs[k].pieces.clone() {
                    let (pack_ns, dur_ns) = {
                        let m = &ctx.state.machine;
                        (
                            if piece.strided_server {
                                secs_to_ns(m.memcpy_time(piece.bytes))
                            } else {
                                0
                            },
                            secs_to_ns(m.net.transfer_time(piece.bytes)),
                        )
                    };
                    // Pack out of the subchunk buffer, then transfer.
                    let (_, pack_end) = ctx.state.server_nic[self.index].acquire(now, pack_ns);
                    let start = pack_end.max(ctx.state.clients[piece.client].free_at());
                    let (_, end) = ctx.state.server_nic[self.index].acquire(start, dur_ns);
                    ctx.state.clients[piece.client].acquire(start, dur_ns);
                    ctx.state.data_msgs += 1;
                    ctx.send_at(
                        end + latency_ns,
                        ActorId(self.client_actor_base + piece.client),
                        Ev::ReadData {
                            bytes: piece.bytes,
                            strided_client: piece.strided_client,
                        },
                    );
                }
                let sends_end = ctx.state.server_nic[self.index].free_at();
                self.stage_end.push(sends_end);
                debug_assert_eq!(self.stage_end.len(), k + 1);
                self.cur += 1;
                self.schedule_next(ctx.now(), k, ctx);
            }
            Ev::Done => {
                let now = ctx.now();
                let done = &mut ctx.state.app_done[self.app];
                *done = (*done).max(now);
            }
            _ => unreachable!("server actor received a client event"),
        }
    }
}

/// Flatten a server's plans (all arrays, in order) into the simulation
/// schedule.
fn server_schedule(spec: &CollectiveSpec, server: usize) -> Vec<SimSub> {
    let mut subs = Vec::new();
    for array in &spec.arrays {
        let plan = build_server_plan(array, server, spec.num_servers, spec.subchunk_bytes);
        for chunk in &plan.chunks {
            for sub in &chunk.subchunks {
                // Section reads skip non-overlapping subchunks and trim
                // pieces, exactly as the real server does.
                if let Some(section) = &spec.section {
                    if !sub.region.overlaps(section) {
                        continue;
                    }
                }
                let pieces: Vec<SimPiece> = sub
                    .pieces
                    .iter()
                    .filter_map(|p| {
                        let target = match &spec.section {
                            None => Some(p.region.clone()),
                            Some(section) => p.region.intersect(section),
                        }?;
                        Some(SimPiece {
                            client: p.client,
                            bytes: target.num_bytes(array.elem_size()),
                            strided_client: !p.contiguous_in_client,
                            strided_server: !p.contiguous_in_subchunk,
                        })
                    })
                    .collect();
                if pieces.is_empty() && spec.section.is_some() {
                    continue;
                }
                subs.push(SimSub {
                    bytes: sub.bytes,
                    pieces,
                });
            }
        }
    }
    subs
}

/// Simulate one collective operation and report its performance.
///
/// ```
/// use panda_model::{simulate, CollectiveSpec, Sp2Machine};
/// use panda_model::experiment::{paper_array, DiskKind};
/// use panda_core::OpKind;
/// let machine = Sp2Machine::nas_sp2();
/// let report = simulate(&machine, &CollectiveSpec {
///     arrays: vec![paper_array(64, 8, 4, DiskKind::Natural)],
///     op: OpKind::Write,
///     num_servers: 4,
///     subchunk_bytes: 1 << 20,
///     fast_disk: false,
///     section: None,
/// });
/// // Disk-bound: ~93 % of the measured AIX write peak per i/o node.
/// assert!(report.normalized > 0.85 && report.normalized < 1.0);
/// ```
pub fn simulate(machine: &Sp2Machine, spec: &CollectiveSpec) -> SimReport {
    assert!(
        !spec.arrays.is_empty(),
        "collective needs at least one array"
    );
    let num_clients = spec.arrays[0].num_clients();
    assert!(
        spec.arrays.iter().all(|a| a.num_clients() == num_clients),
        "all arrays in a collective share the compute mesh"
    );

    let world = World {
        machine: machine.clone(),
        clients: (0..num_clients)
            .map(|c| Resource::new(format!("client{c}")))
            .collect(),
        server_nic: (0..spec.num_servers)
            .map(|s| Resource::new(format!("nic{s}")))
            .collect(),
        server_disk: (0..spec.num_servers)
            .map(|s| Resource::new(format!("disk{s}")))
            .collect(),
        data_msgs: 0,
        ctrl_msgs: 0,
        app_done: vec![0],
    };
    let mut engine: Engine<Ev, World> = Engine::new(world);
    for c in 0..num_clients {
        engine.add_actor(Box::new(ClientActor {
            index: c,
            server_actor_base: num_clients,
            server_resource: (0..spec.num_servers).collect(),
        }));
    }
    let mut total_bytes = 0u64;
    for s in 0..spec.num_servers {
        let subs = server_schedule(spec, s);
        total_bytes += subs.iter().map(|x| x.bytes as u64).sum::<u64>();
        let id = engine.add_actor(Box::new(ServerActor {
            index: s,
            app: 0,
            client_actor_base: 0,
            server_pos: s,
            op: spec.op,
            fast_disk: spec.fast_disk,
            subs,
            cur: 0,
            outstanding: 0,
            assembly_ready: 0,
            stage_end: Vec::new(),
        }));
        // Every server starts after the collective's startup overhead
        // (request propagation + plan formation, §3: ≈ 13 ms).
        engine.schedule(secs_to_ns(machine.startup), id, Ev::Begin);
    }
    let end_events = engine.run();
    // Account for work that extends past the last event (e.g. a final
    // client-side scatter).
    let mut final_ns = end_events;
    for r in engine
        .state
        .clients
        .iter()
        .chain(engine.state.server_nic.iter())
        .chain(engine.state.server_disk.iter())
    {
        final_ns = final_ns.max(r.free_at());
    }

    SimReport::new(
        machine,
        spec.op,
        spec.fast_disk,
        spec.num_servers,
        total_bytes,
        panda_sim::ns_to_secs(final_ns),
        engine.state.data_msgs,
        engine.state.ctrl_msgs,
    )
}

/// Outcome of one collective inside a concurrent run.
#[derive(Debug, Clone, PartialEq)]
pub struct ConcurrentOutcome {
    /// Elapsed seconds for this collective (startup to its last
    /// server's completion, including trailing client-side work).
    pub elapsed: f64,
    /// Bytes this collective moved.
    pub total_bytes: u64,
    /// Aggregate throughput of this collective, MB/s.
    pub aggregate_mbs: f64,
}

/// Simulate several collectives running *concurrently* — the paper's §5
/// question: "as Panda makes it possible for each application on the
/// SP2 to have its own dedicated set of i/o nodes, we are curious about
/// the impact of i/o node sharing on i/o-intensive applications."
///
/// With `share_servers == true` all collectives contend for the same
/// `num_servers` I/O nodes (which must therefore be equal across
/// specs); with `false`, each collective gets its own dedicated set.
/// Compute nodes are always dedicated per application.
pub fn simulate_concurrent(
    machine: &Sp2Machine,
    specs: &[CollectiveSpec],
    share_servers: bool,
) -> Vec<ConcurrentOutcome> {
    assert!(!specs.is_empty());
    if share_servers {
        assert!(
            specs.iter().all(|s| s.num_servers == specs[0].num_servers),
            "shared i/o nodes require equal num_servers across collectives"
        );
    }
    let client_counts: Vec<usize> = specs.iter().map(|s| s.arrays[0].num_clients()).collect();
    let total_clients: usize = client_counts.iter().sum();
    let total_server_resources = if share_servers {
        specs[0].num_servers
    } else {
        specs.iter().map(|s| s.num_servers).sum()
    };

    let world = World {
        machine: machine.clone(),
        clients: (0..total_clients)
            .map(|c| Resource::new(format!("client{c}")))
            .collect(),
        server_nic: (0..total_server_resources)
            .map(|s| Resource::new(format!("nic{s}")))
            .collect(),
        server_disk: (0..total_server_resources)
            .map(|s| Resource::new(format!("disk{s}")))
            .collect(),
        data_msgs: 0,
        ctrl_msgs: 0,
        app_done: vec![0; specs.len()],
    };
    let mut engine: Engine<Ev, World> = Engine::new(world);

    // Client actors first (all apps), then server actors (all apps),
    // with per-app bases recorded.
    let mut client_base = Vec::with_capacity(specs.len());
    let mut resource_base = Vec::with_capacity(specs.len());
    {
        let mut cb = 0usize;
        let mut rb = 0usize;
        for (app, spec) in specs.iter().enumerate() {
            client_base.push(cb);
            resource_base.push(if share_servers { 0 } else { rb });
            cb += client_counts[app];
            if !share_servers {
                rb += spec.num_servers;
            }
        }
    }
    let server_actor_start = total_clients;
    // Server actors are laid out app-major.
    let mut server_actor_base = Vec::with_capacity(specs.len());
    {
        let mut sb = server_actor_start;
        for spec in specs {
            server_actor_base.push(sb);
            sb += spec.num_servers;
        }
    }
    for (app, spec) in specs.iter().enumerate() {
        for c in 0..client_counts[app] {
            engine.add_actor(Box::new(ClientActor {
                index: client_base[app] + c,
                server_actor_base: server_actor_base[app],
                server_resource: (0..spec.num_servers)
                    .map(|s| resource_base[app] + s)
                    .collect(),
            }));
        }
    }
    let mut total_bytes = vec![0u64; specs.len()];
    for (app, spec) in specs.iter().enumerate() {
        for s in 0..spec.num_servers {
            let subs = server_schedule(spec, s);
            total_bytes[app] += subs.iter().map(|x| x.bytes as u64).sum::<u64>();
            let id = engine.add_actor(Box::new(ServerActor {
                index: resource_base[app] + s,
                app,
                client_actor_base: client_base[app],
                server_pos: s,
                op: spec.op,
                fast_disk: spec.fast_disk,
                subs,
                cur: 0,
                outstanding: 0,
                assembly_ready: 0,
                stage_end: Vec::new(),
            }));
            engine.schedule(secs_to_ns(machine.startup), id, Ev::Begin);
        }
    }
    engine.run();
    // Per-app completion: server Done times plus trailing client work.
    (0..specs.len())
        .map(|app| {
            let mut end = engine.state.app_done[app];
            for c in 0..client_counts[app] {
                end = end.max(engine.state.clients[client_base[app] + c].free_at());
            }
            let elapsed = panda_sim::ns_to_secs(end);
            ConcurrentOutcome {
                elapsed,
                total_bytes: total_bytes[app],
                aggregate_mbs: total_bytes[app] as f64 / (1024.0 * 1024.0) / elapsed,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_schema::{DataSchema, ElementType, Mesh, Shape};

    fn natural_3d(mb: usize, mesh: &[usize]) -> ArrayMeta {
        // mb x 512 x 512 f32 = mb megabytes.
        let shape = Shape::new(&[mb, 512, 512]).unwrap();
        let mem = DataSchema::block_all(shape, ElementType::F32, Mesh::new(mesh).unwrap()).unwrap();
        ArrayMeta::natural("t", mem).unwrap()
    }

    fn spec(mb: usize, mesh: &[usize], servers: usize, op: OpKind, fast: bool) -> CollectiveSpec {
        CollectiveSpec {
            arrays: vec![natural_3d(mb, mesh)],
            op,
            num_servers: servers,
            subchunk_bytes: 1 << 20,
            fast_disk: fast,
            section: None,
        }
    }

    #[test]
    fn single_server_write_matches_closed_form() {
        // Natural chunking, 1 client, 1 server, real disk, depth 1:
        // elapsed = startup + n_sub * (control + transfer + latency +
        // subchunk overhead + disk write).
        let m = Sp2Machine::nas_sp2();
        let s = spec(16, &[1, 1, 1], 1, OpKind::Write, false);
        let r = simulate(&m, &s);
        let n_sub = 16.0;
        let sub = 1u32 << 20;
        let per = m.net.control_time()
            + m.net.transfer_time(sub as usize)
            + m.net.latency
            + m.per_subchunk_overhead
            + m.disk.access_time(sub as usize, IoDirection::Write);
        let expected = m.startup + n_sub * per;
        assert!(
            (r.elapsed - expected).abs() < 1e-6,
            "elapsed {} vs closed form {expected}",
            r.elapsed
        );
    }

    #[test]
    fn fast_disk_write_is_network_bound_near_ninety_percent() {
        let m = Sp2Machine::nas_sp2();
        let r = simulate(&m, &spec(512, &[4, 4, 2], 8, OpKind::Write, true));
        assert!(
            r.normalized > 0.80 && r.normalized < 0.97,
            "normalized {}",
            r.normalized
        );
    }

    #[test]
    fn real_disk_write_is_disk_bound_near_peak() {
        let m = Sp2Machine::nas_sp2();
        let r = simulate(&m, &spec(128, &[2, 2, 2], 4, OpKind::Write, false));
        assert!(
            r.normalized > 0.85 && r.normalized <= 1.0,
            "normalized {}",
            r.normalized
        );
    }

    #[test]
    fn reads_and_writes_have_similar_fast_disk_throughput() {
        // Paper §3: "the throughputs will be similar for both reads and
        // writes" with simulated disks.
        let m = Sp2Machine::nas_sp2();
        let w = simulate(&m, &spec(256, &[4, 4, 2], 4, OpKind::Write, true));
        let r = simulate(&m, &spec(256, &[4, 4, 2], 4, OpKind::Read, true));
        let ratio = w.aggregate_mbs / r.aggregate_mbs;
        assert!(ratio > 0.9 && ratio < 1.1, "ratio {ratio}");
    }

    #[test]
    fn aggregate_scales_with_io_nodes_when_disk_bound() {
        let m = Sp2Machine::nas_sp2();
        let t2 = simulate(&m, &spec(256, &[2, 2, 2], 2, OpKind::Write, false));
        let t8 = simulate(&m, &spec(256, &[2, 2, 2], 8, OpKind::Write, false));
        let speedup = t8.aggregate_mbs / t2.aggregate_mbs;
        assert!(speedup > 3.0 && speedup < 4.5, "speedup {speedup}");
    }

    #[test]
    fn startup_dominates_tiny_fast_disk_runs() {
        // Paper: normalized throughput declines for small arrays under
        // fast disks because the 13 ms startup is charged.
        let m = Sp2Machine::nas_sp2();
        let small = simulate(&m, &spec(16, &[4, 4, 2], 8, OpKind::Write, true));
        let large = simulate(&m, &spec(512, &[4, 4, 2], 8, OpKind::Write, true));
        assert!(small.normalized < large.normalized);
    }

    #[test]
    fn deterministic_across_runs() {
        let m = Sp2Machine::nas_sp2();
        let a = simulate(&m, &spec(64, &[2, 2, 2], 4, OpKind::Read, false));
        let b = simulate(&m, &spec(64, &[2, 2, 2], 4, OpKind::Read, false));
        assert_eq!(a.elapsed.to_bits(), b.elapsed.to_bits());
        assert_eq!(a.data_msgs, b.data_msgs);
    }

    #[test]
    fn pipeline_depth_two_overlaps_disk_and_network() {
        let m1 = Sp2Machine::nas_sp2();
        let m2 = Sp2Machine::nas_sp2().with_pipeline_depth(2);
        let s = spec(128, &[2, 2, 2], 2, OpKind::Write, false);
        let r1 = simulate(&m1, &s);
        let r2 = simulate(&m2, &s);
        assert!(
            r2.elapsed < r1.elapsed,
            "double buffering must help: {} vs {}",
            r2.elapsed,
            r1.elapsed
        );
    }

    #[test]
    fn dedicated_io_nodes_are_isolated() {
        // Two identical apps on dedicated servers must match the solo run.
        let m = Sp2Machine::nas_sp2();
        let s1 = spec(64, &[2, 2, 2], 2, OpKind::Write, false);
        let solo = simulate(&m, &s1);
        let both = simulate_concurrent(&m, &[s1.clone(), s1.clone()], false);
        assert!((both[0].elapsed - solo.elapsed).abs() < 1e-6);
        assert!((both[1].elapsed - solo.elapsed).abs() < 1e-6);
    }

    #[test]
    fn shared_io_nodes_halve_throughput() {
        // Two identical disk-bound apps sharing the same 2 servers each
        // see roughly half the dedicated throughput.
        let m = Sp2Machine::nas_sp2();
        let s1 = spec(64, &[2, 2, 2], 2, OpKind::Write, false);
        let solo = simulate(&m, &s1);
        let shared = simulate_concurrent(&m, &[s1.clone(), s1.clone()], true);
        for o in &shared {
            let slowdown = o.elapsed / solo.elapsed;
            assert!(slowdown > 1.6 && slowdown < 2.4, "slowdown {slowdown}");
        }
    }

    #[test]
    fn concurrent_totals_match_solo() {
        let m = Sp2Machine::nas_sp2();
        let s1 = spec(32, &[2, 2, 2], 2, OpKind::Write, false);
        let s2 = spec(16, &[2, 2, 2], 2, OpKind::Read, false);
        // Read needs files; the model does not touch files, so mixing
        // ops is fine here.
        let outs = simulate_concurrent(&m, &[s1, s2], true);
        assert_eq!(outs[0].total_bytes, 32 << 20);
        assert_eq!(outs[1].total_bytes, 16 << 20);
        assert!(outs.iter().all(|o| o.elapsed > 0.0));
    }
}
