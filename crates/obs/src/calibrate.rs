//! Machine-readable calibration summaries: the measurement half of a
//! closed-loop tuner.
//!
//! A [`RunReport`] carries per-subchunk exchange/disk/reorganization
//! durations. [`RunReport::calibration_summary`] condenses them into
//! per-phase *least-squares moments* — enough to fit the line
//! `t(subchunk) = per_op + per_byte · bytes` for each phase, and to
//! merge samples from several probe runs (e.g. two short collectives at
//! different subchunk sizes) before solving. A single run usually has
//! one subchunk size, which leaves the slope unidentifiable; merging
//! runs at two sizes conditions the fit. The summary is plain data with
//! a JSON rendering, so a tuner (or an offline notebook) can consume it
//! without re-walking the timeline.

use crate::json;
use crate::report::RunReport;

/// Schema tag for the JSON rendering of a [`CalibrationSummary`].
pub const CALIBRATION_SCHEMA: &str = "panda-obs-calibration-v1";

/// Accumulated (subchunk bytes → phase seconds) samples for one phase,
/// kept as least-squares moments so summaries can be merged exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseStats {
    /// Number of subchunk samples.
    pub samples: u64,
    /// Total subchunk bytes across samples.
    pub bytes: u64,
    /// Total phase seconds across samples.
    pub secs: f64,
    /// Σx (x = subchunk bytes).
    sum_x: f64,
    /// Σy (y = phase seconds).
    sum_y: f64,
    /// Σx².
    sum_xx: f64,
    /// Σxy.
    sum_xy: f64,
}

impl PhaseStats {
    /// Rebuild stats from externally accumulated moments — the bridge
    /// from the live `MetricsHub` (which keeps per-phase moments as
    /// atomics) back into the calibration fit. `Σx` is taken as the
    /// total bytes and `Σy` as the total seconds, matching what
    /// [`PhaseStats::push`] would have accumulated sample by sample.
    pub fn from_moments(samples: u64, bytes: u64, secs: f64, sum_xx: f64, sum_xy: f64) -> Self {
        PhaseStats {
            samples,
            bytes,
            secs,
            sum_x: bytes as f64,
            sum_y: secs,
            sum_xx,
            sum_xy,
        }
    }

    /// Add one subchunk sample.
    pub fn push(&mut self, bytes: u64, secs: f64) {
        self.samples += 1;
        self.bytes += bytes;
        self.secs += secs;
        let x = bytes as f64;
        self.sum_x += x;
        self.sum_y += secs;
        self.sum_xx += x * x;
        self.sum_xy += x * secs;
    }

    /// Merge another summary's samples into this one (exact: moments
    /// add).
    pub fn merge(&mut self, other: &PhaseStats) {
        self.samples += other.samples;
        self.bytes += other.bytes;
        self.secs += other.secs;
        self.sum_x += other.sum_x;
        self.sum_y += other.sum_y;
        self.sum_xx += other.sum_xx;
        self.sum_xy += other.sum_xy;
    }

    /// Least-squares fit of `t = per_op + per_byte · bytes`, returned
    /// as `(per_op_s, per_byte_s)`. `None` when the samples cannot
    /// identify a slope (fewer than two samples, or no spread in the
    /// sizes) — callers fall back to [`PhaseStats::mean_secs_per_byte`].
    pub fn fit_line(&self) -> Option<(f64, f64)> {
        if self.samples < 2 {
            return None;
        }
        let n = self.samples as f64;
        let det = n * self.sum_xx - self.sum_x * self.sum_x;
        // Relative degeneracy test: det is O(n²·x²) for well-spread x.
        if det <= 1e-9 * n * self.sum_xx {
            return None;
        }
        let per_byte = (n * self.sum_xy - self.sum_x * self.sum_y) / det;
        let per_op = (self.sum_y - per_byte * self.sum_x) / n;
        Some((per_op, per_byte))
    }

    /// Fallback rate when the line is unidentifiable: total seconds
    /// over total bytes (0 when no bytes moved).
    pub fn mean_secs_per_byte(&self) -> f64 {
        if self.bytes == 0 {
            0.0
        } else {
            self.secs / self.bytes as f64
        }
    }

    fn push_json(&self, out: &mut String) {
        out.push_str("{\"samples\":");
        out.push_str(&self.samples.to_string());
        out.push_str(",\"bytes\":");
        out.push_str(&self.bytes.to_string());
        out.push_str(",\"secs\":");
        json::push_f64(out, self.secs);
        let (per_op, per_byte) = self.fit_line().unwrap_or((0.0, self.mean_secs_per_byte()));
        out.push_str(",\"per_op_s\":");
        json::push_f64(out, per_op);
        out.push_str(",\"per_byte_s\":");
        json::push_f64(out, per_byte);
        out.push('}');
    }
}

/// The calibration view of one run: per-phase sample moments plus the
/// run's wall span. Produced by [`RunReport::calibration_summary`];
/// merge several (one per probe) with [`CalibrationSummary::merge`]
/// before fitting.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CalibrationSummary {
    /// Exchange-phase samples (server blocked on client data).
    pub exchange: PhaseStats,
    /// Disk-phase samples (positioned reads/writes).
    pub disk: PhaseStats,
    /// Reorganization samples (pack/scatter CPU seconds).
    pub reorg: PhaseStats,
    /// Wall span of the run, seconds.
    pub wall_s: f64,
    /// Subchunks observed (the report's per-subchunk row count).
    pub subchunks: u64,
}

impl CalibrationSummary {
    /// Merge another summary's samples (wall spans add — probes run
    /// back to back).
    pub fn merge(&mut self, other: &CalibrationSummary) {
        self.exchange.merge(&other.exchange);
        self.disk.merge(&other.disk);
        self.reorg.merge(&other.reorg);
        self.wall_s += other.wall_s;
        self.subchunks += other.subchunks;
    }

    /// Serialize as one JSON object (schema [`CALIBRATION_SCHEMA`]).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\"schema\":");
        json::push_str(&mut out, CALIBRATION_SCHEMA);
        out.push_str(",\"wall_s\":");
        json::push_f64(&mut out, self.wall_s);
        out.push_str(",\"subchunks\":");
        out.push_str(&self.subchunks.to_string());
        for (name, stats) in [
            (",\"exchange\":", &self.exchange),
            (",\"disk\":", &self.disk),
            (",\"reorg\":", &self.reorg),
        ] {
            out.push_str(name);
            stats.push_json(&mut out);
        }
        out.push('}');
        out
    }
}

impl RunReport {
    /// Condense this report's per-subchunk decomposition into
    /// calibration moments. Requires a timeline-keeping recorder (an
    /// aggregate-only report has no per-subchunk rows and yields empty
    /// stats).
    pub fn calibration_summary(&self) -> CalibrationSummary {
        let mut summary = CalibrationSummary {
            wall_s: self.wall_s,
            subchunks: self.per_subchunk.len() as u64,
            ..CalibrationSummary::default()
        };
        for s in &self.per_subchunk {
            summary.exchange.push(s.bytes, s.exchange_s);
            summary.disk.push(s.bytes, s.disk_s);
            summary.reorg.push(s.bytes, s.reorg_s);
        }
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_fit_recovers_known_constants() {
        // y = 2e-3 + 1e-6 * x, two sizes: exactly identifiable.
        let mut stats = PhaseStats::default();
        for &x in &[1024u64, 1024, 4096, 4096] {
            stats.push(x, 2e-3 + 1e-6 * x as f64);
        }
        let (per_op, per_byte) = stats.fit_line().unwrap();
        assert!((per_op - 2e-3).abs() < 1e-9, "per_op {per_op}");
        assert!((per_byte - 1e-6).abs() < 1e-12, "per_byte {per_byte}");
    }

    #[test]
    fn single_size_is_degenerate_with_rate_fallback() {
        let mut stats = PhaseStats::default();
        stats.push(4096, 4e-3);
        stats.push(4096, 4e-3);
        assert!(stats.fit_line().is_none());
        assert!((stats.mean_secs_per_byte() - 4e-3 / 4096.0).abs() < 1e-12);
        assert_eq!(PhaseStats::default().mean_secs_per_byte(), 0.0);
        assert!(PhaseStats::default().fit_line().is_none());
    }

    #[test]
    fn merge_equals_pooled_samples() {
        let mut a = PhaseStats::default();
        let mut b = PhaseStats::default();
        let mut pooled = PhaseStats::default();
        for (i, &(x, y)) in [
            (1024u64, 3e-3),
            (8192, 9e-3),
            (1024, 3.5e-3),
            (8192, 8.5e-3),
        ]
        .iter()
        .enumerate()
        {
            if i % 2 == 0 {
                a.push(x, y);
            } else {
                b.push(x, y);
            }
            pooled.push(x, y);
        }
        a.merge(&b);
        assert_eq!(a, pooled);
        let (po, pb) = a.fit_line().unwrap();
        assert!(po.is_finite() && pb.is_finite());
    }

    #[test]
    fn summary_json_is_valid() {
        use crate::event::{Event, SubchunkKey};
        use crate::recorder::Recorder;
        use crate::timeline::TimelineRecorder;
        use std::time::Duration;

        let rec = TimelineRecorder::new();
        for (i, bytes) in [1024u64, 4096].iter().enumerate() {
            rec.record(
                2,
                &Event::DiskWriteDone {
                    key: SubchunkKey::new(0, 0, i),
                    offset: 0,
                    bytes: *bytes,
                    dur: Duration::from_micros(100 + *bytes),
                },
            );
        }
        let summary = RunReport::from_recorder(&rec).calibration_summary();
        assert_eq!(summary.subchunks, 2);
        assert_eq!(summary.disk.samples, 2);
        assert_eq!(summary.disk.bytes, 5120);
        assert_eq!(summary.exchange.secs, 0.0);
        let doc = summary.to_json();
        json::validate(&doc).unwrap();
        assert!(doc.contains("\"schema\":\"panda-obs-calibration-v1\""));
        assert!(doc.contains("\"per_byte_s\""));
    }
}
