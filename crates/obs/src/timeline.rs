//! Per-event timeline recording with Chrome `trace_event` export.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::counting::{CountersSnapshot, CountingRecorder};
use crate::event::{Event, EventKind, SubchunkKey};
use crate::json;
use crate::recorder::Recorder;

/// Default ring-buffer capacity (events) of a [`TimelineRecorder`].
pub const DEFAULT_TIMELINE_CAPACITY: usize = 1 << 16;

/// One recorded event, flattened for storage and export. `ts_nanos` is
/// the event's *end* time relative to the recorder's epoch; subtract
/// `dur_nanos` for the start time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineEvent {
    /// End timestamp, nanoseconds since the recorder was created.
    pub ts_nanos: u64,
    /// Reporting node's fabric rank.
    pub node: u32,
    /// Event kind.
    pub kind: EventKind,
    /// Collective request id, for request-scoped events.
    pub request: Option<u64>,
    /// Subchunk key, for keyed events.
    pub key: Option<SubchunkKey>,
    /// Bytes the event accounts for.
    pub bytes: u64,
    /// Duration the event carries, in nanoseconds (zero if none).
    pub dur_nanos: u64,
    /// Peer rank (fetch/push client, message source/destination).
    pub peer: Option<u32>,
    /// Message tag, for transport events.
    pub tag: Option<u32>,
    /// Sequential-or-seek classification, for file-system accesses.
    pub sequential: Option<bool>,
    /// File name, for file-system events.
    pub label: Option<String>,
}

impl TimelineEvent {
    /// Start timestamp (end minus duration), nanoseconds since epoch.
    pub fn start_nanos(&self) -> u64 {
        self.ts_nanos.saturating_sub(self.dur_nanos)
    }

    /// Flatten a borrowed [`Event`] into an owned record, stamping its
    /// end time as `elapsed` nanoseconds since the caller's epoch. This
    /// is the one place event fields are projected into storage form —
    /// shared by [`TimelineRecorder`] and the flight recorder.
    pub fn from_event(ts_nanos: u64, node: u32, event: &Event<'_>) -> Self {
        TimelineEvent {
            ts_nanos,
            node,
            kind: event.kind(),
            request: event.request(),
            key: event.key(),
            bytes: event.bytes(),
            dur_nanos: event.dur().unwrap_or(Duration::ZERO).as_nanos() as u64,
            peer: event.peer(),
            tag: event.tag(),
            sequential: event.sequential(),
            label: event.label().map(str::to_owned),
        }
    }
}

/// Serialize `events` as a Chrome `trace_event` JSON document
/// (`{"traceEvents": [...]}`), loadable in `about:tracing` or Perfetto.
/// Duration-carrying events become complete (`"X"`) events; the rest
/// become instants (`"i"`). `tid` is the node rank.
pub fn chrome_trace(events: &[TimelineEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        json::push_str(&mut out, e.kind.name());
        out.push_str(",\"pid\":1,\"tid\":");
        out.push_str(&e.node.to_string());
        if e.dur_nanos > 0 {
            out.push_str(",\"ph\":\"X\",\"ts\":");
            json::push_f64(&mut out, e.start_nanos() as f64 / 1e3);
            out.push_str(",\"dur\":");
            json::push_f64(&mut out, e.dur_nanos as f64 / 1e3);
        } else {
            out.push_str(",\"ph\":\"i\",\"s\":\"t\",\"ts\":");
            json::push_f64(&mut out, e.ts_nanos as f64 / 1e3);
        }
        out.push_str(",\"args\":{");
        let mut first = true;
        let mut arg = |out: &mut String, k: &str, v: String| {
            if !first {
                out.push(',');
            }
            first = false;
            json::push_str(out, k);
            out.push(':');
            out.push_str(&v);
        };
        if let Some(key) = e.key {
            // Unscoped keys keep the pre-tenancy `s…a…c…` shape so
            // existing trace consumers are unaffected.
            let prefix = match key.request {
                0 => String::new(),
                r => format!("r{r}"),
            };
            arg(
                &mut out,
                "key",
                format!(
                    "\"{}s{}a{}c{}\"",
                    prefix, key.server, key.array, key.subchunk
                ),
            );
        }
        if let Some(request) = e.request {
            arg(&mut out, "request", request.to_string());
        }
        if e.bytes > 0 {
            arg(&mut out, "bytes", e.bytes.to_string());
        }
        if let Some(peer) = e.peer {
            arg(&mut out, "peer", peer.to_string());
        }
        if let Some(tag) = e.tag {
            arg(&mut out, "tag", tag.to_string());
        }
        if let Some(seq) = e.sequential {
            arg(&mut out, "sequential", seq.to_string());
        }
        if let Some(label) = &e.label {
            let mut s = String::new();
            json::push_str(&mut s, label);
            arg(&mut out, "file", s);
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// A [`Recorder`] that keeps every event in a bounded ring buffer (oldest
/// events are dropped on overflow and tallied in [`Recorder::dropped`])
/// and aggregates counters through an embedded [`CountingRecorder`].
#[derive(Debug)]
pub struct TimelineRecorder {
    epoch: Instant,
    capacity: usize,
    ring: Mutex<VecDeque<TimelineEvent>>,
    dropped: AtomicU64,
    counters: CountingRecorder,
}

impl Default for TimelineRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TimelineRecorder {
    /// A recorder with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_TIMELINE_CAPACITY)
    }

    /// A recorder whose ring holds at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        TimelineRecorder {
            epoch: Instant::now(),
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 4096))),
            dropped: AtomicU64::new(0),
            counters: CountingRecorder::new(),
        }
    }

    /// The instant timestamps are measured from.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    /// Whether no events have been retained.
    pub fn is_empty(&self) -> bool {
        self.ring.lock().is_empty()
    }

    /// The embedded aggregate counters.
    pub fn counting(&self) -> &CountingRecorder {
        &self.counters
    }

    /// Serialize the retained events as a Chrome `trace_event` JSON
    /// document via [`chrome_trace`].
    pub fn to_chrome_trace(&self) -> String {
        let events: Vec<TimelineEvent> = self.ring.lock().iter().cloned().collect();
        chrome_trace(&events)
    }
}

impl Recorder for TimelineRecorder {
    fn record(&self, node: u32, event: &Event<'_>) {
        self.counters.record(node, event);
        let ts_nanos = self.epoch.elapsed().as_nanos() as u64;
        let flat = TimelineEvent::from_event(ts_nanos, node, event);
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(flat);
    }

    fn counters(&self) -> Option<CountersSnapshot> {
        self.counters.counters()
    }

    fn timeline(&self) -> Option<Vec<TimelineEvent>> {
        Some(self.ring.lock().iter().cloned().collect())
    }

    fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::OpDir;

    fn sample_events(rec: &TimelineRecorder) {
        let key = SubchunkKey::new(0, 0, 3);
        rec.record(
            4,
            &Event::RequestIssued {
                request: 0,
                op: OpDir::Write,
                arrays: 1,
                pipeline_depth: 2,
            },
        );
        rec.record(
            4,
            &Event::FetchReplied {
                key,
                bytes: 128,
                wait: Duration::from_micros(250),
            },
        );
        rec.record(
            4,
            &Event::FsWrite {
                file: "a.s0",
                offset: 0,
                bytes: 128,
                sequential: true,
                dur: Duration::from_micros(40),
            },
        );
    }

    #[test]
    fn records_flattened_events_in_order() {
        let rec = TimelineRecorder::new();
        sample_events(&rec);
        let tl = rec.timeline().unwrap();
        assert_eq!(tl.len(), 3);
        assert!(tl.windows(2).all(|w| w[0].ts_nanos <= w[1].ts_nanos));
        assert_eq!(tl[1].kind, EventKind::FetchReplied);
        assert_eq!(tl[1].key, Some(SubchunkKey::new(0, 0, 3)));
        assert_eq!(tl[1].dur_nanos, 250_000);
        assert!(tl[1].start_nanos() <= tl[1].ts_nanos);
        assert_eq!(tl[2].label.as_deref(), Some("a.s0"));
        assert_eq!(tl[2].sequential, Some(true));
        assert_eq!(rec.dropped(), 0);
        // Counters aggregate alongside the ring.
        assert_eq!(rec.counting().count(EventKind::FetchReplied), 1);
    }

    #[test]
    fn ring_drops_oldest_on_overflow() {
        let rec = TimelineRecorder::with_capacity(2);
        sample_events(&rec);
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.dropped(), 1);
        let tl = rec.timeline().unwrap();
        // The RequestIssued instant was the oldest and got evicted.
        assert_eq!(tl[0].kind, EventKind::FetchReplied);
        // Counters still saw all three events.
        assert_eq!(rec.counting().count(EventKind::RequestIssued), 1);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_both_phases() {
        let rec = TimelineRecorder::new();
        sample_events(&rec);
        let trace = rec.to_chrome_trace();
        json::validate(&trace).expect("trace parses");
        assert!(trace.contains("\"ph\":\"X\""), "has complete events");
        assert!(trace.contains("\"ph\":\"i\""), "has instant events");
        assert!(trace.contains("\"name\":\"fetch_replied\""));
        assert!(trace.contains("\"key\":\"s0a0c3\""));
    }

    #[test]
    fn wraparound_keeps_per_request_filtering_consistent() {
        // Two tenants' request ids interleave through a ring much
        // smaller than the event stream. After heavy overwriting the
        // retained window must still be per-request consistent: every
        // request's retained events stay in timestamp order, carry that
        // request's id only, and the retained suffix is contiguous (the
        // ring drops oldest-first, never from the middle).
        let req_a = (1u64 << 32) | 1; // tenant 0
        let req_b = (2u64 << 32) | 1; // tenant 1
        let rec = TimelineRecorder::with_capacity(8);
        let total = 50u64;
        for i in 0..total {
            let (request, tenant_server) = if i % 2 == 0 { (req_a, 0) } else { (req_b, 1) };
            rec.record(
                4,
                &Event::DiskWriteQueued {
                    // Subchunk index is the tenant's own sequence number.
                    key: SubchunkKey::scoped(request, tenant_server, 0, (i / 2) as usize),
                    bytes: 64,
                },
            );
        }
        assert_eq!(rec.len(), 8);
        assert_eq!(rec.dropped(), total - 8);
        let tl = rec.timeline().unwrap();
        assert!(tl.windows(2).all(|w| w[0].ts_nanos <= w[1].ts_nanos));
        for (request, server) in [(req_a, 0u32), (req_b, 1u32)] {
            let mine: Vec<_> = tl.iter().filter(|e| e.request == Some(request)).collect();
            assert_eq!(mine.len(), 4, "each tenant keeps half the window");
            assert!(mine.iter().all(|e| e.key.unwrap().server == server));
            // Contiguous suffix of that tenant's stream: consecutive
            // subchunk indices, ending at the tenant's last event.
            let idx: Vec<u32> = mine.iter().map(|e| e.key.unwrap().subchunk).collect();
            assert!(idx.windows(2).all(|w| w[1] == w[0] + 1));
            let last_for_tenant = (total - 1 - u64::from(request == req_a)) / 2;
            assert_eq!(u64::from(*idx.last().unwrap()), last_for_tenant);
        }
    }

    #[test]
    fn wraparound_trace_exports_only_retained_events() {
        let req_a = (1u64 << 32) | 9;
        let req_b = (2u64 << 32) | 9;
        let rec = TimelineRecorder::with_capacity(4);
        for i in 0..20usize {
            let request = if i % 2 == 0 { req_a } else { req_b };
            rec.record(
                5,
                &Event::DiskWriteQueued {
                    key: SubchunkKey::scoped(request, 0, 0, i),
                    bytes: 1,
                },
            );
        }
        let trace = rec.to_chrome_trace();
        json::validate(&trace).expect("trace parses after wraparound");
        // Retained: subchunks 16..20, alternating tenants.
        for kept in 16..20 {
            assert!(
                trace.contains(&format!("c{kept}\"")),
                "subchunk {kept} kept"
            );
        }
        assert!(!trace.contains("c15\""), "evicted events do not export");
        assert!(trace.contains(&format!("\"request\":{req_a}")));
        assert!(trace.contains(&format!("\"request\":{req_b}")));
        // Counters still saw the full stream even though the ring wrapped.
        assert_eq!(rec.counting().count(EventKind::DiskWriteQueued), 20);
    }

    #[test]
    fn concurrent_writers_never_corrupt_the_ring() {
        use std::sync::Arc;
        let rec = Arc::new(TimelineRecorder::with_capacity(64));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let rec = Arc::clone(&rec);
                scope.spawn(move || {
                    let request = (t + 1) << 32;
                    for i in 0..200usize {
                        rec.record(
                            t as u32,
                            &Event::DiskWriteQueued {
                                key: SubchunkKey::scoped(request, 0, 0, i),
                                bytes: 8,
                            },
                        );
                    }
                });
            }
        });
        assert_eq!(rec.len(), 64);
        assert_eq!(rec.dropped(), 4 * 200 - 64);
        let tl = rec.timeline().unwrap();
        // Global timestamp order is not guaranteed across writers (the
        // stamp is taken before the ring lock), but each writer's own
        // stream must stay in submission order in the window.
        for t in 0..4u64 {
            let request = (t + 1) << 32;
            let idx: Vec<u32> = tl
                .iter()
                .filter(|e| e.request == Some(request))
                .map(|e| e.key.unwrap().subchunk)
                .collect();
            assert!(idx.windows(2).all(|w| w[0] < w[1]));
        }
        json::validate(&rec.to_chrome_trace()).expect("trace parses");
    }

    #[test]
    fn request_scoped_keys_are_prefixed_in_traces() {
        let rec = TimelineRecorder::new();
        rec.record(
            4,
            &Event::DiskWriteQueued {
                key: SubchunkKey::scoped(7, 0, 1, 2),
                bytes: 64,
            },
        );
        let tl = rec.timeline().unwrap();
        assert_eq!(tl[0].request, Some(7));
        let trace = rec.to_chrome_trace();
        json::validate(&trace).expect("trace parses");
        assert!(trace.contains("\"key\":\"r7s0a1c2\""));
        assert!(trace.contains("\"request\":7"));
    }
}
