//! The flight recorder: an always-on bounded ring of recent events that
//! dumps a Chrome trace when something goes wrong.
//!
//! A [`TimelineRecorder`](crate::TimelineRecorder) is a development
//! tool — you attach it when you intend to look at a trace. The
//! [`FlightRecorder`] is the production counterpart: it retains only
//! the last `capacity` events (cheap enough to leave on), and when an
//! *incident* occurs it automatically writes the retained window to
//! disk as a Chrome `trace_event` JSON file, so the minutes before a
//! failure are preserved without anyone having asked in advance.
//! Incidents are:
//!
//! * an admission rejection ([`Event::AdmissionReject`] — the service
//!   surfaced `PandaError::Admission` to a submitter);
//! * a request failure ([`Event::RequestError`]);
//! * a collective completing over the configured latency SLO
//!   ([`FlightRecorder::with_slo`]).
//!
//! Dumps are capped ([`FlightRecorder::with_max_dumps`]) so a reject
//! storm cannot fill the disk; [`FlightRecorder::dump_now`] bypasses
//! the cap for operator-initiated captures.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::event::{Event, EventKind};
use crate::recorder::Recorder;
use crate::timeline::{chrome_trace, TimelineEvent};

/// Default ring capacity (events) of a [`FlightRecorder`].
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

/// Default cap on automatic incident dumps.
pub const DEFAULT_MAX_DUMPS: usize = 8;

/// See the module docs.
#[derive(Debug)]
pub struct FlightRecorder {
    epoch: Instant,
    capacity: usize,
    ring: Mutex<VecDeque<TimelineEvent>>,
    dropped: AtomicU64,
    dir: PathBuf,
    slo: Option<Duration>,
    max_dumps: usize,
    dump_seq: AtomicU64,
    dumps: Mutex<Vec<PathBuf>>,
}

impl FlightRecorder {
    /// A recorder writing incident dumps into `dir` (created on first
    /// dump if missing), with default capacity, no latency SLO, and the
    /// default dump cap.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        FlightRecorder {
            epoch: Instant::now(),
            capacity: DEFAULT_FLIGHT_CAPACITY,
            ring: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
            dir: dir.into(),
            slo: None,
            max_dumps: DEFAULT_MAX_DUMPS,
            dump_seq: AtomicU64::new(0),
            dumps: Mutex::new(Vec::new()),
        }
    }

    /// Retain at most `capacity` events (min 1).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }

    /// Treat any collective completing slower than `slo` as an incident.
    pub fn with_slo(mut self, slo: Duration) -> Self {
        self.slo = Some(slo);
        self
    }

    /// Cap automatic dumps at `max` (manual [`FlightRecorder::dump_now`]
    /// calls are not counted against the cap).
    pub fn with_max_dumps(mut self, max: usize) -> Self {
        self.max_dumps = max;
        self
    }

    /// The directory dumps are written into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Paths of every dump written so far, oldest first.
    pub fn dumps(&self) -> Vec<PathBuf> {
        self.dumps.lock().clone()
    }

    /// The most recent dump, if any.
    pub fn last_dump(&self) -> Option<PathBuf> {
        self.dumps.lock().last().cloned()
    }

    /// Write the retained window to
    /// `<dir>/flight-<seq>-<reason>.trace.json` now and return the
    /// path. `None` if the directory or file could not be written (the
    /// recorder never panics on the record path).
    pub fn dump_now(&self, reason: &str) -> Option<PathBuf> {
        let events: Vec<TimelineEvent> = self.ring.lock().iter().cloned().collect();
        let seq = self.dump_seq.fetch_add(1, Ordering::Relaxed);
        let safe: String = reason
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        let path = self.dir.join(format!("flight-{seq:04}-{safe}.trace.json"));
        if std::fs::create_dir_all(&self.dir).is_err() {
            return None;
        }
        if std::fs::write(&path, chrome_trace(&events)).is_err() {
            return None;
        }
        self.dumps.lock().push(path.clone());
        Some(path)
    }

    /// Whether this event ends an incident window, and why.
    fn incident(&self, event: &Event<'_>) -> Option<&'static str> {
        match event.kind() {
            EventKind::AdmissionReject => Some("admission_reject"),
            EventKind::RequestError => Some("request_error"),
            EventKind::CollectiveDone => match (self.slo, event.dur()) {
                (Some(slo), Some(dur)) if dur > slo => Some("slo_exceeded"),
                _ => None,
            },
            _ => None,
        }
    }
}

impl Recorder for FlightRecorder {
    fn record(&self, node: u32, event: &Event<'_>) {
        let ts_nanos = self.epoch.elapsed().as_nanos() as u64;
        let flat = TimelineEvent::from_event(ts_nanos, node, event);
        {
            let mut ring = self.ring.lock();
            if ring.len() == self.capacity {
                ring.pop_front();
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
            ring.push_back(flat);
        }
        if let Some(reason) = self.incident(event) {
            if self.dumps.lock().len() < self.max_dumps {
                self.dump_now(reason);
            }
        }
    }

    fn timeline(&self) -> Option<Vec<TimelineEvent>> {
        Some(self.ring.lock().iter().cloned().collect())
    }

    fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{OpDir, SubchunkKey};
    use crate::json;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("panda-flight-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn admission_reject_triggers_a_dump() {
        let dir = temp_dir("reject");
        let rec = FlightRecorder::new(&dir).with_capacity(16);
        for i in 0..4usize {
            rec.record(
                4,
                &Event::DiskWriteQueued {
                    key: SubchunkKey::scoped(1 << 32, 0, 0, i),
                    bytes: 64,
                },
            );
        }
        assert!(rec.last_dump().is_none());
        rec.record(
            4,
            &Event::AdmissionReject {
                request: (2 << 32) | 1,
                queued: 3,
                live: 4,
            },
        );
        let path = rec.last_dump().expect("reject produced a dump");
        let doc = std::fs::read_to_string(&path).unwrap();
        json::validate(&doc).expect("dump is valid JSON");
        assert!(doc.contains("\"traceEvents\""));
        assert!(doc.contains("admission_reject"), "trigger event retained");
        assert!(doc.contains("disk_write_queued"), "history retained");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn slo_breach_triggers_and_cap_limits_dumps() {
        let dir = temp_dir("slo");
        let rec = FlightRecorder::new(&dir)
            .with_slo(Duration::from_millis(1))
            .with_max_dumps(2);
        // Under SLO: no dump.
        rec.record(
            0,
            &Event::CollectiveDone {
                request: 1 << 32,
                op: OpDir::Write,
                dur: Duration::from_micros(100),
            },
        );
        assert!(rec.dumps().is_empty());
        // Three breaches, but the cap keeps only two automatic dumps.
        for _ in 0..3 {
            rec.record(
                0,
                &Event::CollectiveDone {
                    request: 1 << 32,
                    op: OpDir::Write,
                    dur: Duration::from_millis(5),
                },
            );
        }
        assert_eq!(rec.dumps().len(), 2);
        // Manual capture bypasses the cap.
        assert!(rec.dump_now("operator").is_some());
        assert_eq!(rec.dumps().len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ring_stays_bounded() {
        let dir = temp_dir("bounded");
        let rec = FlightRecorder::new(&dir).with_capacity(8);
        for i in 0..100usize {
            rec.record(
                1,
                &Event::DiskWriteQueued {
                    key: SubchunkKey::scoped(1 << 32, 0, 0, i),
                    bytes: 1,
                },
            );
        }
        assert_eq!(rec.timeline().unwrap().len(), 8);
        assert_eq!(rec.dropped(), 92);
        assert!(rec.dumps().is_empty(), "no incident, no dump");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
