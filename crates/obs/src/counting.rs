//! Lock-free aggregate counters with latency histograms.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

use crate::event::{Event, EventKind, Phase, KIND_COUNT};
use crate::recorder::Recorder;
use crate::timeline::TimelineEvent;

/// Number of log₂ latency buckets: bucket `i` holds durations in
/// `[2^(i-1), 2^i)` nanoseconds (bucket 0 holds 0 ns).
pub(crate) const HIST_BUCKETS: usize = 40;

/// A log₂-bucketed latency histogram.
#[derive(Debug)]
pub(crate) struct LatencyHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl LatencyHistogram {
    pub(crate) fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    pub(crate) fn bucket_of(nanos: u64) -> usize {
        ((64 - nanos.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }

    pub(crate) fn record(&self, dur: Duration) {
        self.record_nanos(dur.as_nanos() as u64);
    }

    pub(crate) fn record_nanos(&self, nanos: u64) {
        let idx = Self::bucket_of(nanos);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Upper-bound estimate of quantile `q` in seconds (0 with no data).
    pub(crate) fn quantile(&self, q: f64) -> f64 {
        quantile_of(&self.bucket_counts(), q)
    }

    /// The raw bucket occupancy, for merging histograms across shards.
    pub(crate) fn bucket_counts(&self) -> [u64; HIST_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }
}

/// Quantile `q` (in seconds) of a log₂ bucket-count array laid out like
/// [`LatencyHistogram`] (0 with no data).
pub(crate) fn quantile_of(counts: &[u64], q: f64) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let target = ((total as f64) * q).ceil().max(1.0) as u64;
    let mut cum = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        cum += c;
        if cum >= target {
            // Upper bound of bucket i: 2^i ns (bucket 0 = 0 ns).
            let nanos = if i == 0 { 0u64 } else { 1u64 << i.min(62) };
            return nanos as f64 / 1e9;
        }
    }
    unreachable!("cumulative count reaches total");
}

/// A [`Recorder`] that keeps per-kind atomic counters (count, bytes,
/// summed duration), per-kind latency histograms, per-tag message
/// counts, and the file-system sequentiality tally. This is the backing
/// store behind the `panda_fs::IoStats` and `panda_msg::FabricStats`
/// aggregate views.
#[derive(Debug)]
pub struct CountingRecorder {
    count: [AtomicU64; KIND_COUNT],
    bytes: [AtomicU64; KIND_COUNT],
    nanos: [AtomicU64; KIND_COUNT],
    hist: [LatencyHistogram; KIND_COUNT],
    fs_sequential: AtomicU64,
    fs_seeks: AtomicU64,
    /// Per-tag (messages, bytes) sent counts.
    by_tag: Mutex<BTreeMap<u32, (u64, u64)>>,
    /// Seqlock-style write epoch: `record` bumps `writes_begun` on
    /// entry and `writes_done` on exit, so `snapshot` can retry until it
    /// reads a window with no writer in flight. Without this a snapshot
    /// taken mid-collective could see a `CollectiveDone` increment from
    /// a record call whose `RequestIssued` it missed.
    writes_begun: AtomicU64,
    writes_done: AtomicU64,
}

impl Default for CountingRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl CountingRecorder {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        CountingRecorder {
            count: std::array::from_fn(|_| AtomicU64::new(0)),
            bytes: std::array::from_fn(|_| AtomicU64::new(0)),
            nanos: std::array::from_fn(|_| AtomicU64::new(0)),
            hist: std::array::from_fn(|_| LatencyHistogram::new()),
            fs_sequential: AtomicU64::new(0),
            fs_seeks: AtomicU64::new(0),
            by_tag: Mutex::new(BTreeMap::new()),
            writes_begun: AtomicU64::new(0),
            writes_done: AtomicU64::new(0),
        }
    }

    /// Number of events of `kind` recorded so far.
    pub fn count(&self, kind: EventKind) -> u64 {
        self.count[kind.index()].load(Ordering::Relaxed)
    }

    /// Total bytes carried by events of `kind`.
    pub fn bytes(&self, kind: EventKind) -> u64 {
        self.bytes[kind.index()].load(Ordering::Relaxed)
    }

    /// Total duration carried by events of `kind`, in seconds.
    pub fn secs(&self, kind: EventKind) -> f64 {
        self.nanos[kind.index()].load(Ordering::Relaxed) as f64 / 1e9
    }

    /// File-system accesses classified as sequential.
    pub fn fs_sequential(&self) -> u64 {
        self.fs_sequential.load(Ordering::Relaxed)
    }

    /// File-system accesses that required a seek.
    pub fn fs_seeks(&self) -> u64 {
        self.fs_seeks.load(Ordering::Relaxed)
    }

    /// `(messages, bytes)` sent with `tag` (zero when never used).
    pub fn tag_counts(&self, tag: u32) -> (u64, u64) {
        self.by_tag.lock().get(&tag).copied().unwrap_or((0, 0))
    }

    /// All tags seen so far, with their send counts, sorted by tag.
    pub fn all_tag_counts(&self) -> Vec<TagStats> {
        self.by_tag
            .lock()
            .iter()
            .map(|(&tag, &(msgs, bytes))| TagStats { tag, msgs, bytes })
            .collect()
    }

    /// Summed duration of all kinds contributing to `phase`, in seconds.
    pub fn phase_secs(&self, phase: Phase) -> f64 {
        EventKind::ALL
            .iter()
            .filter(|k| k.phase() == Some(phase))
            .map(|&k| self.secs(k))
            .sum()
    }

    /// Snapshot every counter for reporting.
    ///
    /// The read is epoch-consistent: it retries until it observes a
    /// window during which no [`Recorder::record`] call was in flight,
    /// so cross-kind invariants hold (a snapshot can never report more
    /// `CollectiveDone` than `RequestIssued` events). Under sustained
    /// write pressure it falls back to a best-effort read after a
    /// bounded number of attempts.
    pub fn snapshot(&self) -> CountersSnapshot {
        const ATTEMPTS: usize = 4096;
        for attempt in 0..ATTEMPTS {
            let begun = self.writes_begun.load(Ordering::Acquire);
            let done = self.writes_done.load(Ordering::Acquire);
            if begun != done {
                // A writer is mid-record; give it room to finish.
                if attempt % 64 == 63 {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
                continue;
            }
            let snap = self.read_counters();
            if self.writes_begun.load(Ordering::Acquire) == begun {
                return snap;
            }
        }
        self.read_counters()
    }

    /// One unsynchronised pass over every counter.
    fn read_counters(&self) -> CountersSnapshot {
        let kinds = EventKind::ALL
            .iter()
            .map(|&kind| KindStats {
                kind,
                count: self.count(kind),
                bytes: self.bytes(kind),
                secs: self.secs(kind),
                p50_secs: self.hist[kind.index()].quantile(0.50),
                p99_secs: self.hist[kind.index()].quantile(0.99),
            })
            .collect();
        CountersSnapshot {
            kinds,
            fs_sequential: self.fs_sequential(),
            fs_seeks: self.fs_seeks(),
            tags: self.all_tag_counts(),
        }
    }
}

impl Recorder for CountingRecorder {
    fn record(&self, _node: u32, event: &Event<'_>) {
        self.writes_begun.fetch_add(1, Ordering::AcqRel);
        let idx = event.kind().index();
        self.count[idx].fetch_add(1, Ordering::Relaxed);
        let bytes = event.bytes();
        if bytes > 0 {
            self.bytes[idx].fetch_add(bytes, Ordering::Relaxed);
        }
        if let Some(dur) = event.dur() {
            if !dur.is_zero() {
                self.nanos[idx].fetch_add(dur.as_nanos() as u64, Ordering::Relaxed);
            }
            self.hist[idx].record(dur);
        }
        if let Some(sequential) = event.sequential() {
            if sequential {
                self.fs_sequential.fetch_add(1, Ordering::Relaxed);
            } else {
                self.fs_seeks.fetch_add(1, Ordering::Relaxed);
            }
        }
        if let Event::MsgSent { tag, bytes, .. } = event {
            let mut by_tag = self.by_tag.lock();
            let entry = by_tag.entry(*tag).or_insert((0, 0));
            entry.0 += 1;
            entry.1 += bytes;
        }
        self.writes_done.fetch_add(1, Ordering::Release);
    }

    fn counters(&self) -> Option<CountersSnapshot> {
        Some(self.snapshot())
    }

    fn timeline(&self) -> Option<Vec<TimelineEvent>> {
        None
    }
}

/// Per-kind aggregate statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KindStats {
    /// The event kind.
    pub kind: EventKind,
    /// Number of events.
    pub count: u64,
    /// Total bytes carried.
    pub bytes: u64,
    /// Total duration carried, in seconds.
    pub secs: f64,
    /// Median latency (log₂-bucket upper bound), in seconds.
    pub p50_secs: f64,
    /// 99th-percentile latency (log₂-bucket upper bound), in seconds.
    pub p99_secs: f64,
}

/// Send counts for one message tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagStats {
    /// The message tag.
    pub tag: u32,
    /// Messages sent with this tag.
    pub msgs: u64,
    /// Payload bytes sent with this tag.
    pub bytes: u64,
}

/// A full snapshot of a [`CountingRecorder`].
#[derive(Debug, Clone, PartialEq)]
pub struct CountersSnapshot {
    /// One entry per [`EventKind`], in [`EventKind::ALL`] order.
    pub kinds: Vec<KindStats>,
    /// File-system accesses classified as sequential.
    pub fs_sequential: u64,
    /// File-system accesses that required a seek.
    pub fs_seeks: u64,
    /// Per-tag message send counts, sorted by tag.
    pub tags: Vec<TagStats>,
}

impl CountersSnapshot {
    /// Stats for one kind.
    pub fn kind(&self, kind: EventKind) -> &KindStats {
        &self.kinds[kind.index()]
    }

    /// Summed duration of all kinds contributing to `phase`, in seconds.
    pub fn phase_secs(&self, phase: Phase) -> f64 {
        self.kinds
            .iter()
            .filter(|k| k.kind.phase() == Some(phase))
            .map(|k| k.secs)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SubchunkKey;

    #[test]
    fn counts_bytes_and_durations() {
        let rec = CountingRecorder::new();
        let key = SubchunkKey::new(0, 0, 0);
        rec.record(
            4,
            &Event::FetchReplied {
                key,
                bytes: 100,
                wait: Duration::from_millis(2),
            },
        );
        rec.record(
            4,
            &Event::FetchReplied {
                key,
                bytes: 50,
                wait: Duration::from_millis(1),
            },
        );
        assert_eq!(rec.count(EventKind::FetchReplied), 2);
        assert_eq!(rec.bytes(EventKind::FetchReplied), 150);
        let secs = rec.secs(EventKind::FetchReplied);
        assert!((secs - 0.003).abs() < 1e-9, "got {secs}");
        assert_eq!(rec.count(EventKind::DiskWriteDone), 0);
    }

    #[test]
    fn sequentiality_tally() {
        let rec = CountingRecorder::new();
        for (seq, offset) in [(true, 0), (true, 8), (false, 0)] {
            rec.record(
                0,
                &Event::FsWrite {
                    file: "f",
                    offset,
                    bytes: 8,
                    sequential: seq,
                    dur: Duration::ZERO,
                },
            );
        }
        assert_eq!(rec.fs_sequential(), 2);
        assert_eq!(rec.fs_seeks(), 1);
    }

    #[test]
    fn per_tag_send_counts() {
        let rec = CountingRecorder::new();
        for (tag, bytes) in [(3u32, 100u64), (3, 50), (7, 1)] {
            rec.record(
                0,
                &Event::MsgSent {
                    to: 1,
                    tag,
                    bytes,
                    dur: Duration::ZERO,
                },
            );
        }
        assert_eq!(rec.tag_counts(3), (2, 150));
        assert_eq!(rec.tag_counts(7), (1, 1));
        assert_eq!(rec.tag_counts(99), (0, 0));
        let all = rec.all_tag_counts();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].tag, 3);
    }

    #[test]
    fn histogram_quantiles_bound_latencies() {
        let rec = CountingRecorder::new();
        for _ in 0..90 {
            rec.record(
                0,
                &Event::DiskWriteDone {
                    key: SubchunkKey::new(0, 0, 0),
                    offset: 0,
                    bytes: 1,
                    dur: Duration::from_micros(10),
                },
            );
        }
        for _ in 0..10 {
            rec.record(
                0,
                &Event::DiskWriteDone {
                    key: SubchunkKey::new(0, 0, 0),
                    offset: 0,
                    bytes: 1,
                    dur: Duration::from_millis(50),
                },
            );
        }
        let snap = rec.snapshot();
        let disk = snap.kind(EventKind::DiskWriteDone);
        // p50 upper bound is ≥ the true 10 µs but well under the 50 ms
        // tail; p99 must cover the tail's bucket.
        assert!(
            disk.p50_secs >= 10e-6 && disk.p50_secs < 1e-3,
            "{}",
            disk.p50_secs
        );
        assert!(disk.p99_secs >= 0.05 / 2.0, "{}", disk.p99_secs);
        assert_eq!(disk.count, 100);
    }

    #[test]
    fn phase_sums_are_additive() {
        let rec = CountingRecorder::new();
        let key = SubchunkKey::new(0, 0, 0);
        rec.record(
            0,
            &Event::FetchReplied {
                key,
                bytes: 1,
                wait: Duration::from_millis(5),
            },
        );
        rec.record(
            0,
            &Event::DiskWriteDone {
                key,
                offset: 0,
                bytes: 1,
                dur: Duration::from_millis(7),
            },
        );
        rec.record(
            0,
            &Event::ReorgWorker {
                key,
                piece: 0,
                bytes: 1,
                dur: Duration::from_millis(1),
            },
        );
        assert!((rec.phase_secs(Phase::Exchange) - 0.005).abs() < 1e-9);
        assert!((rec.phase_secs(Phase::Disk) - 0.007).abs() < 1e-9);
        assert!((rec.phase_secs(Phase::Reorg) - 0.001).abs() < 1e-9);
        let snap = rec.snapshot();
        assert_eq!(
            snap.phase_secs(Phase::Exchange),
            rec.phase_secs(Phase::Exchange)
        );
    }

    #[test]
    fn snapshots_never_tear_across_kinds() {
        // Writers issue RequestIssued strictly before the matching
        // CollectiveDone; an epoch-consistent snapshot must never see
        // the done count ahead of the issued count.
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        let rec = Arc::new(CountingRecorder::new());
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            for w in 0..3u64 {
                let rec = Arc::clone(&rec);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut request = (w + 1) << 32;
                    while !stop.load(Ordering::Relaxed) {
                        request += 1;
                        rec.record(
                            0,
                            &Event::RequestIssued {
                                request,
                                op: crate::event::OpDir::Write,
                                arrays: 1,
                                pipeline_depth: 1,
                            },
                        );
                        rec.record(
                            0,
                            &Event::CollectiveDone {
                                request,
                                op: crate::event::OpDir::Write,
                                dur: Duration::from_nanos(1),
                            },
                        );
                    }
                });
            }
            for _ in 0..500 {
                let snap = rec.snapshot();
                let issued = snap.kind(EventKind::RequestIssued).count;
                let done = snap.kind(EventKind::CollectiveDone).count;
                assert!(
                    done <= issued,
                    "torn snapshot: {done} CollectiveDone vs {issued} RequestIssued"
                );
            }
            stop.store(true, Ordering::Relaxed);
        });
    }

    #[test]
    fn bucket_of_is_monotone() {
        let mut last = 0;
        for nanos in [0u64, 1, 2, 3, 10, 1000, 1 << 20, u64::MAX] {
            let b = LatencyHistogram::bucket_of(nanos);
            assert!(b >= last);
            last = b;
        }
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 1);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }
}
