//! The live metrics plane: a lock-free sharded registry fed by the
//! [`Recorder`] event stream.
//!
//! A [`MetricsHub`] is the "always-on" counterpart of the post-hoc
//! [`crate::RunReport`]: instead of walking a retained timeline after a
//! run, it folds every event into per-kind counters, per-phase
//! least-squares moments + log₂ latency histograms, and per-tenant
//! request ledgers *as the events happen*, all with relaxed atomics so
//! the collective hot path pays a handful of uncontended adds. A
//! [`MetricsHub::snapshot`] merges the shards into a typed
//! [`MetricsSnapshot`] with p50/p95/p99 derivation, which renders to
//! Prometheus text exposition ([`MetricsSnapshot::to_prometheus`]) for
//! the `/metrics` scrape surface and bridges back into calibration form
//! ([`MetricsSnapshot::phase_stats`]) for the drift detector in
//! `panda-model`.
//!
//! Tenancy: request ids are minted as `((rank + 1) << 32) | counter`,
//! so the submitting client rank — the session owner — is recoverable
//! as `(request >> 32) - 1`. The hub keys its per-tenant slots on that
//! rank. Slots are claimed lock-free by linear probing; when a shard's
//! table is full further tenants are tallied in an overflow counter
//! rather than blocking the hot path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::calibrate::PhaseStats;
use crate::counting::{quantile_of, LatencyHistogram, HIST_BUCKETS};
use crate::event::{Event, EventKind, Phase, KIND_COUNT};
use crate::recorder::Recorder;

/// Shards in a [`MetricsHub`] (power of two; events land on
/// `node % SHARDS`, so clients and servers spread across them).
const SHARDS: usize = 16;

/// Tenant slots per shard. A shard that sees more distinct tenants than
/// this tallies the excess in [`MetricsSnapshot::tenant_overflow`].
const TENANT_SLOTS: usize = 32;

/// Empty-slot sentinel for tenant claim words.
const NO_TENANT: u64 = u64::MAX;

const PHASES: usize = Phase::ALL.len();

/// Add `v` to an `f64` stored as bits in an [`AtomicU64`] (CAS loop —
/// lock-free, no ordering guarantees beyond atomicity, which is all the
/// statistics need).
fn f64_fetch_add(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + v).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// Per-phase accumulation: counters plus the least-squares moments
/// (`Σx²`, `Σxy` with x = event bytes, y = event seconds) needed to
/// refit a `per_op + per_byte · bytes` cost line from live traffic.
#[derive(Debug)]
struct PhaseCell {
    ops: AtomicU64,
    bytes: AtomicU64,
    nanos: AtomicU64,
    sum_xx_bits: AtomicU64,
    sum_xy_bits: AtomicU64,
    hist: LatencyHistogram,
}

impl PhaseCell {
    fn new() -> Self {
        PhaseCell {
            ops: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            nanos: AtomicU64::new(0),
            sum_xx_bits: AtomicU64::new(0f64.to_bits()),
            sum_xy_bits: AtomicU64::new(0f64.to_bits()),
            hist: LatencyHistogram::new(),
        }
    }
}

/// One tenant's ledger within a shard. The slot is claimed by CAS on
/// `tenant` (from [`NO_TENANT`]); counters are plain relaxed adds.
#[derive(Debug)]
struct TenantCell {
    tenant: AtomicU64,
    requests: AtomicU64,
    done: AtomicU64,
    rejected: AtomicU64,
    errors: AtomicU64,
    phase_ops: [AtomicU64; PHASES],
    phase_bytes: [AtomicU64; PHASES],
    phase_nanos: [AtomicU64; PHASES],
    done_hist: LatencyHistogram,
}

impl TenantCell {
    fn new() -> Self {
        TenantCell {
            tenant: AtomicU64::new(NO_TENANT),
            requests: AtomicU64::new(0),
            done: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            phase_ops: std::array::from_fn(|_| AtomicU64::new(0)),
            phase_bytes: std::array::from_fn(|_| AtomicU64::new(0)),
            phase_nanos: std::array::from_fn(|_| AtomicU64::new(0)),
            done_hist: LatencyHistogram::new(),
        }
    }
}

#[derive(Debug)]
struct Shard {
    count: [AtomicU64; KIND_COUNT],
    bytes: [AtomicU64; KIND_COUNT],
    nanos: [AtomicU64; KIND_COUNT],
    phases: [PhaseCell; PHASES],
    tenants: [TenantCell; TENANT_SLOTS],
    tenant_overflow: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            count: std::array::from_fn(|_| AtomicU64::new(0)),
            bytes: std::array::from_fn(|_| AtomicU64::new(0)),
            nanos: std::array::from_fn(|_| AtomicU64::new(0)),
            phases: std::array::from_fn(|_| PhaseCell::new()),
            tenants: std::array::from_fn(|_| TenantCell::new()),
            tenant_overflow: AtomicU64::new(0),
        }
    }

    /// Find or claim the slot for `tenant` (lock-free linear probe).
    fn tenant_cell(&self, tenant: u64) -> Option<&TenantCell> {
        let start = tenant as usize % TENANT_SLOTS;
        for i in 0..TENANT_SLOTS {
            let cell = &self.tenants[(start + i) % TENANT_SLOTS];
            let cur = cell.tenant.load(Ordering::Acquire);
            if cur == tenant {
                return Some(cell);
            }
            if cur == NO_TENANT {
                match cell.tenant.compare_exchange(
                    NO_TENANT,
                    tenant,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => return Some(cell),
                    Err(actual) if actual == tenant => return Some(cell),
                    Err(_) => continue,
                }
            }
        }
        None
    }
}

/// The session rank a request id belongs to, per the service's minting
/// scheme (`((rank + 1) << 32) | counter`). `None` for unscoped ids.
pub fn tenant_of(request: u64) -> Option<u64> {
    let owner = request >> 32;
    (owner != 0).then(|| owner - 1)
}

/// A lock-free sharded live-metrics registry; see the module docs.
#[derive(Debug)]
pub struct MetricsHub {
    epoch: Instant,
    shards: Box<[Shard]>,
}

impl Default for MetricsHub {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsHub {
    /// A fresh hub with zeroed counters.
    pub fn new() -> Self {
        MetricsHub {
            epoch: Instant::now(),
            shards: (0..SHARDS).map(|_| Shard::new()).collect(),
        }
    }

    /// Merge every shard into one consistent-enough view. Counters are
    /// read with relaxed loads — unlike `CountingRecorder::snapshot`
    /// this does not retry for epoch consistency, because the scrape
    /// surface tolerates (and Prometheus expects) monotone counters
    /// read racily.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut kinds = Vec::with_capacity(KIND_COUNT);
        for kind in EventKind::ALL {
            let i = kind.index();
            let mut count = 0u64;
            let mut bytes = 0u64;
            let mut nanos = 0u64;
            for s in self.shards.iter() {
                count += s.count[i].load(Ordering::Relaxed);
                bytes += s.bytes[i].load(Ordering::Relaxed);
                nanos += s.nanos[i].load(Ordering::Relaxed);
            }
            kinds.push(KindCounter {
                kind,
                count,
                bytes,
                secs: nanos as f64 / 1e9,
            });
        }

        let mut phases = Vec::with_capacity(PHASES);
        for phase in Phase::ALL {
            let p = phase.index();
            let mut ops = 0u64;
            let mut bytes = 0u64;
            let mut nanos = 0u64;
            let mut sum_xx = 0f64;
            let mut sum_xy = 0f64;
            let mut buckets = vec![0u64; HIST_BUCKETS];
            for s in self.shards.iter() {
                let cell = &s.phases[p];
                ops += cell.ops.load(Ordering::Relaxed);
                bytes += cell.bytes.load(Ordering::Relaxed);
                nanos += cell.nanos.load(Ordering::Relaxed);
                sum_xx += f64::from_bits(cell.sum_xx_bits.load(Ordering::Relaxed));
                sum_xy += f64::from_bits(cell.sum_xy_bits.load(Ordering::Relaxed));
                for (acc, c) in buckets.iter_mut().zip(cell.hist.bucket_counts()) {
                    *acc += c;
                }
            }
            phases.push(PhaseMetrics {
                phase,
                ops,
                bytes,
                secs: nanos as f64 / 1e9,
                sum_xx,
                sum_xy,
                p50_s: quantile_of(&buckets, 0.50),
                p95_s: quantile_of(&buckets, 0.95),
                p99_s: quantile_of(&buckets, 0.99),
                buckets,
            });
        }

        let mut by_tenant: BTreeMap<u64, TenantMetrics> = BTreeMap::new();
        let mut tenant_overflow = 0u64;
        for s in self.shards.iter() {
            tenant_overflow += s.tenant_overflow.load(Ordering::Relaxed);
            for cell in &s.tenants {
                let tenant = cell.tenant.load(Ordering::Acquire);
                if tenant == NO_TENANT {
                    continue;
                }
                let t = by_tenant.entry(tenant).or_insert_with(|| TenantMetrics {
                    tenant,
                    requests: 0,
                    done: 0,
                    rejected: 0,
                    errors: 0,
                    phase_ops: [0; PHASES],
                    phase_bytes: [0; PHASES],
                    phase_secs: [0.0; PHASES],
                    p50_s: 0.0,
                    p95_s: 0.0,
                    p99_s: 0.0,
                    done_buckets: vec![0; HIST_BUCKETS],
                });
                t.requests += cell.requests.load(Ordering::Relaxed);
                t.done += cell.done.load(Ordering::Relaxed);
                t.rejected += cell.rejected.load(Ordering::Relaxed);
                t.errors += cell.errors.load(Ordering::Relaxed);
                for p in 0..PHASES {
                    t.phase_ops[p] += cell.phase_ops[p].load(Ordering::Relaxed);
                    t.phase_bytes[p] += cell.phase_bytes[p].load(Ordering::Relaxed);
                    t.phase_secs[p] += cell.phase_nanos[p].load(Ordering::Relaxed) as f64 / 1e9;
                }
                for (acc, c) in t
                    .done_buckets
                    .iter_mut()
                    .zip(cell.done_hist.bucket_counts())
                {
                    *acc += c;
                }
            }
        }
        let tenants: Vec<TenantMetrics> = by_tenant
            .into_values()
            .map(|mut t| {
                t.p50_s = quantile_of(&t.done_buckets, 0.50);
                t.p95_s = quantile_of(&t.done_buckets, 0.95);
                t.p99_s = quantile_of(&t.done_buckets, 0.99);
                t
            })
            .collect();

        MetricsSnapshot {
            uptime_s: self.epoch.elapsed().as_secs_f64(),
            kinds,
            phases,
            tenants,
            tenant_overflow,
        }
    }
}

impl Recorder for MetricsHub {
    fn record(&self, node: u32, event: &Event<'_>) {
        let shard = &self.shards[node as usize % SHARDS];
        let idx = event.kind().index();
        shard.count[idx].fetch_add(1, Ordering::Relaxed);
        let bytes = event.bytes();
        if bytes > 0 {
            shard.bytes[idx].fetch_add(bytes, Ordering::Relaxed);
        }
        let dur = event.dur();
        let nanos = dur.map_or(0, |d| d.as_nanos() as u64);
        if nanos > 0 {
            shard.nanos[idx].fetch_add(nanos, Ordering::Relaxed);
        }

        let phase = event.kind().phase();
        if let Some(phase) = phase {
            let cell = &shard.phases[phase.index()];
            cell.ops.fetch_add(1, Ordering::Relaxed);
            if bytes > 0 {
                cell.bytes.fetch_add(bytes, Ordering::Relaxed);
            }
            cell.nanos.fetch_add(nanos, Ordering::Relaxed);
            cell.hist.record_nanos(nanos);
            let x = bytes as f64;
            let y = nanos as f64 / 1e9;
            f64_fetch_add(&cell.sum_xx_bits, x * x);
            f64_fetch_add(&cell.sum_xy_bits, x * y);
        }

        if let Some(tenant) = event.request().and_then(tenant_of) {
            match shard.tenant_cell(tenant) {
                Some(cell) => {
                    match event.kind() {
                        EventKind::RequestIssued => {
                            cell.requests.fetch_add(1, Ordering::Relaxed);
                        }
                        EventKind::CollectiveDone => {
                            cell.done.fetch_add(1, Ordering::Relaxed);
                            cell.done_hist.record_nanos(nanos);
                        }
                        EventKind::AdmissionReject => {
                            cell.rejected.fetch_add(1, Ordering::Relaxed);
                        }
                        EventKind::RequestError => {
                            cell.errors.fetch_add(1, Ordering::Relaxed);
                        }
                        _ => {}
                    }
                    if let Some(phase) = phase {
                        let p = phase.index();
                        cell.phase_ops[p].fetch_add(1, Ordering::Relaxed);
                        if bytes > 0 {
                            cell.phase_bytes[p].fetch_add(bytes, Ordering::Relaxed);
                        }
                        cell.phase_nanos[p].fetch_add(nanos, Ordering::Relaxed);
                    }
                }
                None => {
                    shard.tenant_overflow.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    fn metrics(&self) -> Option<MetricsSnapshot> {
        Some(self.snapshot())
    }
}

/// One kind's merged counters in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct KindCounter {
    /// The event kind.
    pub kind: EventKind,
    /// Events recorded.
    pub count: u64,
    /// Bytes carried.
    pub bytes: u64,
    /// Duration carried, seconds.
    pub secs: f64,
}

/// One phase's merged counters, moments, and latency quantiles.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseMetrics {
    /// The phase.
    pub phase: Phase,
    /// Duration-carrying events folded into this phase.
    pub ops: u64,
    /// Bytes those events carried.
    pub bytes: u64,
    /// Seconds those events carried.
    pub secs: f64,
    /// `Σx²` over events (x = bytes).
    pub sum_xx: f64,
    /// `Σxy` over events (x = bytes, y = seconds).
    pub sum_xy: f64,
    /// Median per-event latency (log₂-bucket upper bound), seconds.
    pub p50_s: f64,
    /// 95th-percentile per-event latency, seconds.
    pub p95_s: f64,
    /// 99th-percentile per-event latency, seconds.
    pub p99_s: f64,
    /// Raw log₂ histogram occupancy (for window deltas).
    pub buckets: Vec<u64>,
}

/// One tenant's merged ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantMetrics {
    /// Session owner rank (the submitting client).
    pub tenant: u64,
    /// Collectives issued on servers for this tenant.
    pub requests: u64,
    /// Collective completions (all participating nodes).
    pub done: u64,
    /// Admission rejections.
    pub rejected: u64,
    /// Non-admission failures.
    pub errors: u64,
    /// Per-phase event counts, [`Phase::ALL`] order.
    pub phase_ops: [u64; PHASES],
    /// Per-phase bytes, [`Phase::ALL`] order.
    pub phase_bytes: [u64; PHASES],
    /// Per-phase seconds, [`Phase::ALL`] order.
    pub phase_secs: [f64; PHASES],
    /// Median collective-completion latency, seconds.
    pub p50_s: f64,
    /// 95th-percentile collective-completion latency, seconds.
    pub p95_s: f64,
    /// 99th-percentile collective-completion latency, seconds.
    pub p99_s: f64,
    /// Raw completion-latency histogram (for window deltas).
    pub done_buckets: Vec<u64>,
}

/// A merged, typed view of a [`MetricsHub`] at one instant.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Seconds since the hub was created.
    pub uptime_s: f64,
    /// Per-kind counters, [`EventKind::ALL`] order.
    pub kinds: Vec<KindCounter>,
    /// Per-phase metrics, [`Phase::ALL`] order.
    pub phases: Vec<PhaseMetrics>,
    /// Per-tenant ledgers, sorted by tenant rank.
    pub tenants: Vec<TenantMetrics>,
    /// Events whose tenant could not get a slot (table full).
    pub tenant_overflow: u64,
}

impl MetricsSnapshot {
    /// Counters for one kind.
    pub fn kind(&self, kind: EventKind) -> &KindCounter {
        &self.kinds[kind.index()]
    }

    /// Metrics for one phase.
    pub fn phase(&self, phase: Phase) -> &PhaseMetrics {
        &self.phases[phase.index()]
    }

    /// This phase's moments as calibration-form [`PhaseStats`], ready
    /// for `CostLine::from_stats` in the drift loop.
    pub fn phase_stats(&self, phase: Phase) -> PhaseStats {
        let p = self.phase(phase);
        PhaseStats::from_moments(p.ops, p.bytes, p.secs, p.sum_xx, p.sum_xy)
    }

    /// The ledger for one tenant, if it has been seen.
    pub fn tenant(&self, tenant: u64) -> Option<&TenantMetrics> {
        self.tenants.iter().find(|t| t.tenant == tenant)
    }

    /// Counters accumulated since `baseline` (an earlier snapshot of
    /// the same hub): the window view the drift detector scores, so a
    /// backend change mid-run is not averaged away by pre-change
    /// history. Saturating per field; quantiles are recomputed from the
    /// bucket deltas.
    pub fn since(&self, baseline: &MetricsSnapshot) -> MetricsSnapshot {
        let kinds = self
            .kinds
            .iter()
            .map(|k| {
                let b = baseline.kind(k.kind);
                KindCounter {
                    kind: k.kind,
                    count: k.count.saturating_sub(b.count),
                    bytes: k.bytes.saturating_sub(b.bytes),
                    secs: (k.secs - b.secs).max(0.0),
                }
            })
            .collect();
        let phases = self
            .phases
            .iter()
            .map(|p| {
                let b = baseline.phase(p.phase);
                let buckets: Vec<u64> = p
                    .buckets
                    .iter()
                    .zip(&b.buckets)
                    .map(|(c, bc)| c.saturating_sub(*bc))
                    .collect();
                PhaseMetrics {
                    phase: p.phase,
                    ops: p.ops.saturating_sub(b.ops),
                    bytes: p.bytes.saturating_sub(b.bytes),
                    secs: (p.secs - b.secs).max(0.0),
                    sum_xx: (p.sum_xx - b.sum_xx).max(0.0),
                    sum_xy: (p.sum_xy - b.sum_xy).max(0.0),
                    p50_s: quantile_of(&buckets, 0.50),
                    p95_s: quantile_of(&buckets, 0.95),
                    p99_s: quantile_of(&buckets, 0.99),
                    buckets,
                }
            })
            .collect();
        let tenants = self
            .tenants
            .iter()
            .map(|t| {
                let empty_buckets = vec![0u64; t.done_buckets.len()];
                let (br, bd, brej, berr, bops, bbytes, bsecs, bbuckets) =
                    match baseline.tenant(t.tenant) {
                        Some(b) => (
                            b.requests,
                            b.done,
                            b.rejected,
                            b.errors,
                            b.phase_ops,
                            b.phase_bytes,
                            b.phase_secs,
                            b.done_buckets.clone(),
                        ),
                        None => (
                            0,
                            0,
                            0,
                            0,
                            [0; PHASES],
                            [0; PHASES],
                            [0.0; PHASES],
                            empty_buckets,
                        ),
                    };
                let done_buckets: Vec<u64> = t
                    .done_buckets
                    .iter()
                    .zip(&bbuckets)
                    .map(|(c, bc)| c.saturating_sub(*bc))
                    .collect();
                TenantMetrics {
                    tenant: t.tenant,
                    requests: t.requests.saturating_sub(br),
                    done: t.done.saturating_sub(bd),
                    rejected: t.rejected.saturating_sub(brej),
                    errors: t.errors.saturating_sub(berr),
                    phase_ops: std::array::from_fn(|p| t.phase_ops[p].saturating_sub(bops[p])),
                    phase_bytes: std::array::from_fn(|p| {
                        t.phase_bytes[p].saturating_sub(bbytes[p])
                    }),
                    phase_secs: std::array::from_fn(|p| (t.phase_secs[p] - bsecs[p]).max(0.0)),
                    p50_s: quantile_of(&done_buckets, 0.50),
                    p95_s: quantile_of(&done_buckets, 0.95),
                    p99_s: quantile_of(&done_buckets, 0.99),
                    done_buckets,
                }
            })
            .collect();
        MetricsSnapshot {
            uptime_s: (self.uptime_s - baseline.uptime_s).max(0.0),
            kinds,
            phases,
            tenants,
            tenant_overflow: self
                .tenant_overflow
                .saturating_sub(baseline.tenant_overflow),
        }
    }

    /// Render as Prometheus text exposition (version 0.0.4): `# HELP` /
    /// `# TYPE` headers, `panda_*` families, `kind`/`phase`/`tenant`
    /// label dimensions.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(4096);
        out.push_str("# HELP panda_uptime_seconds Seconds since the metrics hub was created.\n");
        out.push_str("# TYPE panda_uptime_seconds gauge\n");
        let _ = writeln!(out, "panda_uptime_seconds {}", fmt_f64(self.uptime_s));

        out.push_str("# HELP panda_events_total Instrumentation events recorded, by kind.\n");
        out.push_str("# TYPE panda_events_total counter\n");
        for k in &self.kinds {
            if k.count > 0 {
                let _ = writeln!(
                    out,
                    "panda_events_total{{kind=\"{}\"}} {}",
                    k.kind.name(),
                    k.count
                );
            }
        }
        out.push_str("# HELP panda_event_bytes_total Bytes carried by events, by kind.\n");
        out.push_str("# TYPE panda_event_bytes_total counter\n");
        for k in &self.kinds {
            if k.bytes > 0 {
                let _ = writeln!(
                    out,
                    "panda_event_bytes_total{{kind=\"{}\"}} {}",
                    k.kind.name(),
                    k.bytes
                );
            }
        }

        out.push_str("# HELP panda_phase_seconds_total Time folded into each paper-style phase.\n");
        out.push_str("# TYPE panda_phase_seconds_total counter\n");
        for p in &self.phases {
            let _ = writeln!(
                out,
                "panda_phase_seconds_total{{phase=\"{}\"}} {}",
                p.phase.label(),
                fmt_f64(p.secs)
            );
        }
        out.push_str("# HELP panda_phase_ops_total Duration-carrying events per phase.\n");
        out.push_str("# TYPE panda_phase_ops_total counter\n");
        for p in &self.phases {
            let _ = writeln!(
                out,
                "panda_phase_ops_total{{phase=\"{}\"}} {}",
                p.phase.label(),
                p.ops
            );
        }
        out.push_str("# HELP panda_phase_bytes_total Bytes moved per phase.\n");
        out.push_str("# TYPE panda_phase_bytes_total counter\n");
        for p in &self.phases {
            let _ = writeln!(
                out,
                "panda_phase_bytes_total{{phase=\"{}\"}} {}",
                p.phase.label(),
                p.bytes
            );
        }
        out.push_str(
            "# HELP panda_phase_latency_seconds Per-event phase latency (log2-bucket upper bounds).\n",
        );
        out.push_str("# TYPE panda_phase_latency_seconds summary\n");
        for p in &self.phases {
            for (q, v) in [("0.5", p.p50_s), ("0.95", p.p95_s), ("0.99", p.p99_s)] {
                let _ = writeln!(
                    out,
                    "panda_phase_latency_seconds{{phase=\"{}\",quantile=\"{}\"}} {}",
                    p.phase.label(),
                    q,
                    fmt_f64(v)
                );
            }
        }

        out.push_str("# HELP panda_tenant_requests_total Collectives admitted, by tenant.\n");
        out.push_str("# TYPE panda_tenant_requests_total counter\n");
        for t in &self.tenants {
            let _ = writeln!(
                out,
                "panda_tenant_requests_total{{tenant=\"{}\"}} {}",
                t.tenant, t.requests
            );
        }
        out.push_str(
            "# HELP panda_tenant_done_total Collective completions (all nodes), by tenant.\n",
        );
        out.push_str("# TYPE panda_tenant_done_total counter\n");
        for t in &self.tenants {
            let _ = writeln!(
                out,
                "panda_tenant_done_total{{tenant=\"{}\"}} {}",
                t.tenant, t.done
            );
        }
        out.push_str("# HELP panda_tenant_rejected_total Admission rejections, by tenant.\n");
        out.push_str("# TYPE panda_tenant_rejected_total counter\n");
        for t in &self.tenants {
            let _ = writeln!(
                out,
                "panda_tenant_rejected_total{{tenant=\"{}\"}} {}",
                t.tenant, t.rejected
            );
        }
        out.push_str("# HELP panda_tenant_errors_total Non-admission failures, by tenant.\n");
        out.push_str("# TYPE panda_tenant_errors_total counter\n");
        for t in &self.tenants {
            let _ = writeln!(
                out,
                "panda_tenant_errors_total{{tenant=\"{}\"}} {}",
                t.tenant, t.errors
            );
        }
        out.push_str(
            "# HELP panda_tenant_request_seconds Collective completion latency, by tenant.\n",
        );
        out.push_str("# TYPE panda_tenant_request_seconds summary\n");
        for t in &self.tenants {
            for (q, v) in [("0.5", t.p50_s), ("0.95", t.p95_s), ("0.99", t.p99_s)] {
                let _ = writeln!(
                    out,
                    "panda_tenant_request_seconds{{tenant=\"{}\",quantile=\"{}\"}} {}",
                    t.tenant,
                    q,
                    fmt_f64(v)
                );
            }
        }

        out.push_str(
            "# HELP panda_tenant_overflow_total Tenant-scoped events dropped from per-tenant tables.\n",
        );
        out.push_str("# TYPE panda_tenant_overflow_total counter\n");
        let _ = writeln!(out, "panda_tenant_overflow_total {}", self.tenant_overflow);
        out
    }
}

/// Finite decimal rendering (Prometheus forbids `NaN`-ish surprises in
/// practice; non-finite values render as 0).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{OpDir, SubchunkKey};
    use std::time::Duration;

    fn feed_request(hub: &MetricsHub, node: u32, request: u64, subchunks: u32) {
        hub.record(
            node,
            &Event::RequestIssued {
                request,
                op: OpDir::Write,
                arrays: 1,
                pipeline_depth: 2,
            },
        );
        for c in 0..subchunks {
            hub.record(
                node,
                &Event::DiskWriteDone {
                    key: SubchunkKey::scoped(request, 0, 0, c as usize),
                    offset: u64::from(c) * 4096,
                    bytes: 4096,
                    dur: Duration::from_micros(500),
                },
            );
        }
        hub.record(
            node,
            &Event::CollectiveDone {
                request,
                op: OpDir::Write,
                dur: Duration::from_millis(3),
            },
        );
    }

    #[test]
    fn tenant_of_inverts_the_minting_scheme() {
        assert_eq!(tenant_of((1 << 32) | 7), Some(0));
        assert_eq!(tenant_of((5 << 32) | 1), Some(4));
        assert_eq!(tenant_of(0), None);
        assert_eq!(tenant_of(41), None, "unscoped low ids have no tenant");
    }

    #[test]
    fn aggregates_kinds_phases_and_tenants() {
        let hub = MetricsHub::new();
        feed_request(&hub, 4, (1 << 32) | 1, 3); // tenant 0 on node 4
        feed_request(&hub, 5, (2 << 32) | 1, 2); // tenant 1 on node 5
        let snap = hub.snapshot();
        assert_eq!(snap.kind(EventKind::RequestIssued).count, 2);
        assert_eq!(snap.kind(EventKind::DiskWriteDone).count, 5);
        assert_eq!(snap.kind(EventKind::DiskWriteDone).bytes, 5 * 4096);
        let disk = snap.phase(Phase::Disk);
        assert_eq!(disk.ops, 5);
        assert_eq!(disk.bytes, 5 * 4096);
        assert!((disk.secs - 5.0 * 500e-6).abs() < 1e-9);
        assert!(disk.p50_s >= 500e-6 && disk.p99_s >= disk.p50_s);
        assert_eq!(snap.tenants.len(), 2);
        let t0 = snap.tenant(0).unwrap();
        assert_eq!(t0.requests, 1);
        assert_eq!(t0.done, 1);
        assert_eq!(t0.phase_ops[Phase::Disk.index()], 3);
        assert_eq!(t0.phase_bytes[Phase::Disk.index()], 3 * 4096);
        assert!(t0.p99_s >= 3e-3, "completion tail covers the 3 ms done");
        assert_eq!(snap.tenant(1).unwrap().phase_ops[Phase::Disk.index()], 2);
        assert_eq!(snap.tenant_overflow, 0);
    }

    #[test]
    fn moments_round_trip_into_a_cost_line_fit() {
        let hub = MetricsHub::new();
        // Disk events at two sizes with a known line: t = 1e-4 + 1e-8·x.
        for (i, &bytes) in [1024u64, 1024, 8192, 8192].iter().enumerate() {
            let secs = 1e-4 + 1e-8 * bytes as f64;
            hub.record(
                6,
                &Event::DiskWriteDone {
                    key: SubchunkKey::scoped(1 << 32, 0, 0, i),
                    offset: 0,
                    bytes,
                    dur: Duration::from_secs_f64(secs),
                },
            );
        }
        let stats = hub.snapshot().phase_stats(Phase::Disk);
        let (per_op, per_byte) = stats.fit_line().expect("two sizes identify the line");
        assert!((per_op - 1e-4).abs() < 2e-6, "per_op {per_op}");
        assert!((per_byte - 1e-8).abs() < 2e-10, "per_byte {per_byte}");
    }

    #[test]
    fn since_isolates_the_window() {
        let hub = MetricsHub::new();
        feed_request(&hub, 4, (1 << 32) | 1, 4);
        let base = hub.snapshot();
        feed_request(&hub, 4, (1 << 32) | 2, 2);
        let window = hub.snapshot().since(&base);
        assert_eq!(window.kind(EventKind::RequestIssued).count, 1);
        assert_eq!(window.phase(Phase::Disk).ops, 2);
        assert_eq!(window.phase(Phase::Disk).bytes, 2 * 4096);
        let t0 = window.tenant(0).unwrap();
        assert_eq!(t0.requests, 1);
        assert_eq!(t0.done, 1);
    }

    #[test]
    fn shards_merge_across_nodes() {
        let hub = MetricsHub::new();
        // Same tenant reporting from many ranks (client + servers).
        for node in 0..40u32 {
            feed_request(&hub, node, (3 << 32) | (u64::from(node) + 1), 1);
        }
        let snap = hub.snapshot();
        assert_eq!(snap.kind(EventKind::RequestIssued).count, 40);
        let t = snap.tenant(2).unwrap();
        assert_eq!(t.requests, 40);
        assert_eq!(t.done, 40);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let hub = Arc::new(MetricsHub::new());
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let hub = Arc::clone(&hub);
                scope.spawn(move || {
                    for i in 0..500u64 {
                        feed_request(&hub, t as u32, ((t + 1) << 32) | (i + 1), 1);
                    }
                });
            }
        });
        let snap = hub.snapshot();
        assert_eq!(snap.kind(EventKind::RequestIssued).count, 8 * 500);
        assert_eq!(snap.kind(EventKind::CollectiveDone).count, 8 * 500);
        assert_eq!(snap.phase(Phase::Disk).ops, 8 * 500);
        assert_eq!(snap.tenants.len(), 8);
        for t in 0..8u64 {
            assert_eq!(snap.tenant(t).unwrap().requests, 500);
        }
        assert_eq!(snap.tenant_overflow, 0);
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let hub = MetricsHub::new();
        feed_request(&hub, 4, (1 << 32) | 1, 2);
        let text = hub.snapshot().to_prometheus();
        for line in text.lines() {
            assert!(!line.is_empty());
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# HELP panda_") || line.starts_with("# TYPE panda_"),
                    "bad comment line: {line}"
                );
                continue;
            }
            // name{labels} value | name value
            let (head, value) = line.rsplit_once(' ').expect("metric line has a value");
            assert!(value.parse::<f64>().is_ok(), "unparsable value in: {line}");
            let name = head.split('{').next().unwrap();
            assert!(name.starts_with("panda_"), "bad family name in: {line}");
            if let Some(rest) = head.strip_prefix(name) {
                if !rest.is_empty() {
                    assert!(rest.starts_with('{') && rest.ends_with('}'), "{line}");
                }
            }
        }
        assert!(text.contains("panda_events_total{kind=\"request_issued\"} 1"));
        assert!(text.contains("panda_phase_seconds_total{phase=\"disk\"}"));
        assert!(text.contains("panda_tenant_requests_total{tenant=\"0\"} 1"));
        assert!(text.contains("panda_tenant_request_seconds{tenant=\"0\",quantile=\"0.99\"}"));
    }
}
