//! Machine-readable run reports: the paper-style phase decomposition
//! aggregated from any [`Recorder`].

use std::collections::BTreeMap;

use crate::counting::CountersSnapshot;
use crate::event::{EventKind, Phase, SubchunkKey};
use crate::json;
use crate::recorder::Recorder;
use crate::timeline::TimelineEvent;

/// Schema tag written into every report so consumers can sanity-check
/// what they are reading.
pub const REPORT_SCHEMA: &str = "panda-obs-run-report-v1";

/// Summed seconds per [`Phase`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTotals {
    secs: [f64; Phase::ALL.len()],
}

impl PhaseTotals {
    /// Seconds accumulated in `phase`.
    pub fn get(&self, phase: Phase) -> f64 {
        self.secs[phase as usize]
    }

    /// Add `secs` to `phase`.
    pub fn add(&mut self, phase: Phase, secs: f64) {
        self.secs[phase as usize] += secs;
    }

    fn push_json(&self, out: &mut String) {
        out.push('{');
        for (i, phase) in Phase::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str(out, phase.name());
            out.push(':');
            json::push_f64(out, self.get(*phase));
        }
        out.push('}');
    }
}

/// Phase totals for one node (fabric rank).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodePhases {
    /// The node's fabric rank (clients `0..C`, servers `C..C+S`).
    pub node: u32,
    /// Its phase totals.
    pub phases: PhaseTotals,
}

/// Phase durations attributed to one subchunk (timeline runs only).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubchunkPhases {
    /// Which subchunk.
    pub key: SubchunkKey,
    /// Subchunk size in bytes (best known value).
    pub bytes: u64,
    /// Server time blocked waiting for this subchunk's client data.
    pub exchange_s: f64,
    /// Disk time spent writing/reading this subchunk.
    pub disk_s: f64,
    /// Reorganization (pack/scatter) time for this subchunk.
    pub reorg_s: f64,
}

/// One machine-readable run report, aggregated from a [`Recorder`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Wall-clock span covered by the timeline, seconds (zero when the
    /// recorder keeps no timeline).
    pub wall_s: f64,
    /// Phase totals summed over all nodes.
    pub phases: PhaseTotals,
    /// Phase totals per node, sorted by rank (timeline runs only).
    pub per_node: Vec<NodePhases>,
    /// Phase durations per subchunk, sorted by key (timeline runs only).
    pub per_subchunk: Vec<SubchunkPhases>,
    /// Seconds during which a node was doing measured subchunk work
    /// (exchange / disk / reorg) for two *different* arrays at once,
    /// summed over nodes (timeline runs only). Nonzero only when group
    /// scheduling actually interleaves arrays; a strict
    /// array-at-a-time run reports 0.
    pub cross_array_overlap_s: f64,
    /// Aggregate counters, if the recorder keeps them.
    pub counters: Option<CountersSnapshot>,
    /// Events dropped by the recorder (ring overflow).
    pub dropped_events: u64,
}

impl RunReport {
    /// Aggregate `recorder` into a report. Works with any recorder: a
    /// [`crate::CountingRecorder`] yields phase totals and counters, a
    /// [`crate::TimelineRecorder`] additionally yields wall span and
    /// per-node / per-subchunk decompositions, a
    /// [`crate::NullRecorder`] yields an empty report.
    pub fn from_recorder(recorder: &dyn Recorder) -> RunReport {
        let counters = recorder.counters();
        let timeline = recorder.timeline();
        let mut phases = PhaseTotals::default();
        if let Some(snap) = &counters {
            for phase in Phase::ALL {
                phases.add(phase, snap.phase_secs(phase));
            }
        }
        let (wall_s, per_node, per_subchunk, cross_array_overlap_s) = match &timeline {
            Some(events) if !events.is_empty() => {
                if counters.is_none() {
                    // No aggregate counters: derive totals from the
                    // (possibly truncated) timeline instead.
                    for e in events {
                        if let Some(phase) = e.kind.phase() {
                            phases.add(phase, e.dur_nanos as f64 / 1e9);
                        }
                    }
                }
                (
                    wall_span(events),
                    per_node_phases(events),
                    per_subchunk_phases(events),
                    cross_array_overlap(events),
                )
            }
            _ => (0.0, Vec::new(), Vec::new(), 0.0),
        };
        RunReport {
            wall_s,
            phases,
            per_node,
            per_subchunk,
            cross_array_overlap_s,
            counters,
            dropped_events: recorder.dropped(),
        }
    }

    /// Aggregate only the events of one collective request. Concurrent
    /// collectives interleave on shared nodes; this filters the
    /// timeline by request id before decomposing, so one request's
    /// report never absorbs another's exchange/disk/reorg time.
    /// Requires a timeline-keeping recorder — aggregate counters are
    /// not request-scoped, so `counters` is always `None` here and
    /// phase totals come from the filtered timeline.
    pub fn for_request(recorder: &dyn Recorder, request: u64) -> RunReport {
        let events: Vec<TimelineEvent> = recorder
            .timeline()
            .unwrap_or_default()
            .into_iter()
            .filter(|e| e.request == Some(request))
            .collect();
        let mut phases = PhaseTotals::default();
        for e in &events {
            if let Some(phase) = e.kind.phase() {
                phases.add(phase, e.dur_nanos as f64 / 1e9);
            }
        }
        let (wall_s, per_node, per_subchunk, cross_array_overlap_s) = if events.is_empty() {
            (0.0, Vec::new(), Vec::new(), 0.0)
        } else {
            (
                wall_span(&events),
                per_node_phases(&events),
                per_subchunk_phases(&events),
                cross_array_overlap(&events),
            )
        };
        RunReport {
            wall_s,
            phases,
            per_node,
            per_subchunk,
            cross_array_overlap_s,
            counters: None,
            dropped_events: recorder.dropped(),
        }
    }

    /// Total exchange-phase seconds (servers blocked on client data).
    pub fn exchange_s(&self) -> f64 {
        self.phases.get(Phase::Exchange)
    }

    /// Total disk-phase seconds (positioned reads and writes).
    pub fn disk_s(&self) -> f64 {
        self.phases.get(Phase::Disk)
    }

    /// Total reorganization seconds (pack/scatter CPU time).
    pub fn reorg_s(&self) -> f64 {
        self.phases.get(Phase::Reorg)
    }

    /// Total throttle seconds (admission/flow-control stalls).
    pub fn throttle_s(&self) -> f64 {
        self.phases.get(Phase::Throttle)
    }

    /// Serialize as one JSON object (schema [`REPORT_SCHEMA`]).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"schema\":");
        json::push_str(&mut out, REPORT_SCHEMA);
        out.push_str(",\"wall_s\":");
        json::push_f64(&mut out, self.wall_s);
        out.push_str(",\"cross_array_overlap_s\":");
        json::push_f64(&mut out, self.cross_array_overlap_s);
        out.push_str(",\"dropped_events\":");
        out.push_str(&self.dropped_events.to_string());
        out.push_str(",\"phases\":");
        self.phases.push_json(&mut out);
        out.push_str(",\"per_node\":[");
        for (i, n) in self.per_node.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"node\":");
            out.push_str(&n.node.to_string());
            out.push_str(",\"phases\":");
            n.phases.push_json(&mut out);
            out.push('}');
        }
        out.push_str("],\"per_subchunk\":[");
        for (i, s) in self.per_subchunk.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"request\":");
            out.push_str(&s.key.request.to_string());
            out.push_str(",\"server\":");
            out.push_str(&s.key.server.to_string());
            out.push_str(",\"array\":");
            out.push_str(&s.key.array.to_string());
            out.push_str(",\"subchunk\":");
            out.push_str(&s.key.subchunk.to_string());
            out.push_str(",\"bytes\":");
            out.push_str(&s.bytes.to_string());
            out.push_str(",\"exchange_s\":");
            json::push_f64(&mut out, s.exchange_s);
            out.push_str(",\"disk_s\":");
            json::push_f64(&mut out, s.disk_s);
            out.push_str(",\"reorg_s\":");
            json::push_f64(&mut out, s.reorg_s);
            out.push('}');
        }
        out.push(']');
        if let Some(snap) = &self.counters {
            out.push_str(",\"counters\":{\"fs_sequential\":");
            out.push_str(&snap.fs_sequential.to_string());
            out.push_str(",\"fs_seeks\":");
            out.push_str(&snap.fs_seeks.to_string());
            out.push_str(",\"kinds\":[");
            let mut first = true;
            for k in snap.kinds.iter().filter(|k| k.count > 0) {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str("{\"kind\":");
                json::push_str(&mut out, k.kind.name());
                out.push_str(",\"count\":");
                out.push_str(&k.count.to_string());
                out.push_str(",\"bytes\":");
                out.push_str(&k.bytes.to_string());
                out.push_str(",\"secs\":");
                json::push_f64(&mut out, k.secs);
                out.push_str(",\"p50_s\":");
                json::push_f64(&mut out, k.p50_secs);
                out.push_str(",\"p99_s\":");
                json::push_f64(&mut out, k.p99_secs);
                out.push('}');
            }
            out.push_str("],\"tags\":[");
            for (i, t) in snap.tags.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("{\"tag\":");
                out.push_str(&t.tag.to_string());
                out.push_str(",\"msgs\":");
                out.push_str(&t.msgs.to_string());
                out.push_str(",\"bytes\":");
                out.push_str(&t.bytes.to_string());
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push('}');
        out
    }
}

/// Wall span covered by `events`: latest end minus earliest start.
fn wall_span(events: &[TimelineEvent]) -> f64 {
    let start = events
        .iter()
        .map(TimelineEvent::start_nanos)
        .min()
        .unwrap_or(0);
    let end = events.iter().map(|e| e.ts_nanos).max().unwrap_or(0);
    end.saturating_sub(start) as f64 / 1e9
}

fn per_node_phases(events: &[TimelineEvent]) -> Vec<NodePhases> {
    let mut map: BTreeMap<u32, PhaseTotals> = BTreeMap::new();
    for e in events {
        if let Some(phase) = e.kind.phase() {
            map.entry(e.node)
                .or_default()
                .add(phase, e.dur_nanos as f64 / 1e9);
        }
    }
    map.into_iter()
        .map(|(node, phases)| NodePhases { node, phases })
        .collect()
}

/// Seconds a node spent inside keyed, duration-carrying events of two
/// different arrays simultaneously, summed over nodes. Each (node,
/// array)'s busy intervals are merged into a disjoint union first, so a
/// node overlapping itself within one array contributes nothing.
fn cross_array_overlap(events: &[TimelineEvent]) -> f64 {
    let mut busy: BTreeMap<(u32, u32), Vec<(u64, u64)>> = BTreeMap::new();
    for e in events {
        let Some(key) = e.key else { continue };
        if e.dur_nanos == 0 {
            continue;
        }
        busy.entry((e.node, key.array))
            .or_default()
            .push((e.start_nanos(), e.ts_nanos));
    }
    // Merge each (node, array) interval set into a disjoint union.
    let mut merged: BTreeMap<u32, Vec<Vec<(u64, u64)>>> = BTreeMap::new();
    for ((node, _array), mut spans) in busy {
        spans.sort_unstable();
        let mut union: Vec<(u64, u64)> = Vec::with_capacity(spans.len());
        for (s, e) in spans {
            match union.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => union.push((s, e)),
            }
        }
        merged.entry(node).or_default().push(union);
    }
    let mut overlap_nanos = 0u64;
    for arrays in merged.values() {
        for (i, a) in arrays.iter().enumerate() {
            for b in &arrays[i + 1..] {
                // Two-pointer sweep over two sorted disjoint unions.
                let (mut x, mut y) = (0usize, 0usize);
                while x < a.len() && y < b.len() {
                    let lo = a[x].0.max(b[y].0);
                    let hi = a[x].1.min(b[y].1);
                    overlap_nanos += hi.saturating_sub(lo);
                    if a[x].1 <= b[y].1 {
                        x += 1;
                    } else {
                        y += 1;
                    }
                }
            }
        }
    }
    overlap_nanos as f64 / 1e9
}

fn per_subchunk_phases(events: &[TimelineEvent]) -> Vec<SubchunkPhases> {
    let mut map: BTreeMap<SubchunkKey, SubchunkPhases> = BTreeMap::new();
    for e in events {
        let Some(key) = e.key else { continue };
        let entry = map.entry(key).or_insert(SubchunkPhases {
            key,
            bytes: 0,
            exchange_s: 0.0,
            disk_s: 0.0,
            reorg_s: 0.0,
        });
        // Best size estimate: the planner's figure, or the disk call's.
        if matches!(
            e.kind,
            EventKind::SubchunkPlanned | EventKind::DiskWriteDone | EventKind::DiskReadDone
        ) {
            entry.bytes = entry.bytes.max(e.bytes);
        }
        let secs = e.dur_nanos as f64 / 1e9;
        match e.kind.phase() {
            Some(Phase::Exchange) => entry.exchange_s += secs,
            Some(Phase::Disk) => entry.disk_s += secs,
            Some(Phase::Reorg) => entry.reorg_s += secs,
            _ => {}
        }
    }
    map.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::recorder::null_recorder;
    use crate::timeline::TimelineRecorder;
    use std::time::Duration;

    fn drive(rec: &TimelineRecorder) {
        let k0 = SubchunkKey::new(0, 0, 0);
        let k1 = SubchunkKey::new(0, 0, 1);
        rec.record(
            2,
            &Event::SubchunkPlanned {
                key: k0,
                bytes: 256,
            },
        );
        rec.record(
            2,
            &Event::FetchReplied {
                key: k0,
                bytes: 256,
                wait: Duration::from_millis(4),
            },
        );
        rec.record(
            2,
            &Event::DiskWriteDone {
                key: k0,
                offset: 0,
                bytes: 256,
                dur: Duration::from_millis(6),
            },
        );
        rec.record(
            3,
            &Event::DiskWriteDone {
                key: k1,
                offset: 256,
                bytes: 512,
                dur: Duration::from_millis(2),
            },
        );
    }

    #[test]
    fn aggregates_phases_nodes_and_subchunks() {
        let rec = TimelineRecorder::new();
        drive(&rec);
        let report = RunReport::from_recorder(&rec);
        assert!((report.phases.get(Phase::Exchange) - 0.004).abs() < 1e-9);
        assert!((report.phases.get(Phase::Disk) - 0.008).abs() < 1e-9);
        assert!(report.wall_s > 0.0);
        assert_eq!(report.per_node.len(), 2);
        assert_eq!(report.per_node[0].node, 2);
        assert!((report.per_node[1].phases.get(Phase::Disk) - 0.002).abs() < 1e-9);
        assert_eq!(report.per_subchunk.len(), 2);
        let s0 = &report.per_subchunk[0];
        assert_eq!(s0.key, SubchunkKey::new(0, 0, 0));
        assert_eq!(s0.bytes, 256);
        assert!((s0.exchange_s - 0.004).abs() < 1e-9);
        assert!((s0.disk_s - 0.006).abs() < 1e-9);
        assert_eq!(report.dropped_events, 0);
        assert!(report.counters.is_some());
    }

    #[test]
    fn json_report_is_valid() {
        let rec = TimelineRecorder::new();
        drive(&rec);
        let report = RunReport::from_recorder(&rec);
        let doc = report.to_json();
        json::validate(&doc).unwrap();
        assert!(doc.contains("\"schema\":\"panda-obs-run-report-v1\""));
        assert!(doc.contains("\"exchange_s\""));
        assert!(doc.contains("\"per_subchunk\""));
        assert!(doc.contains("\"kind\":\"disk_write_done\""));
    }

    #[test]
    fn cross_array_overlap_requires_two_arrays() {
        // One array only → busy intervals belong to a single (node,
        // array) union → no overlap, however much they self-overlap.
        let rec = TimelineRecorder::new();
        drive(&rec);
        let report = RunReport::from_recorder(&rec);
        assert_eq!(report.cross_array_overlap_s, 0.0);

        // Two back-to-back recordings for different arrays on one node:
        // their measured spans (stamped [now-dur, now]) overlap.
        let rec = TimelineRecorder::new();
        rec.record(
            2,
            &Event::DiskWriteDone {
                key: SubchunkKey::new(0, 0, 0),
                offset: 0,
                bytes: 64,
                dur: Duration::from_millis(50),
            },
        );
        rec.record(
            2,
            &Event::FetchReplied {
                key: SubchunkKey::new(0, 1, 0),
                bytes: 64,
                wait: Duration::from_millis(50),
            },
        );
        let report = RunReport::from_recorder(&rec);
        assert!(
            report.cross_array_overlap_s > 0.0,
            "overlapping spans of different arrays must register"
        );
        assert!(report.to_json().contains("\"cross_array_overlap_s\""));
    }

    #[test]
    fn per_request_reports_do_not_blend() {
        // Two concurrent requests on one node: each scoped report sees
        // only its own disk time; the global report sees both.
        let rec = TimelineRecorder::new();
        rec.record(
            2,
            &Event::DiskWriteDone {
                key: SubchunkKey::scoped(11, 0, 0, 0),
                offset: 0,
                bytes: 256,
                dur: Duration::from_millis(6),
            },
        );
        rec.record(
            2,
            &Event::DiskWriteDone {
                key: SubchunkKey::scoped(12, 0, 0, 0),
                offset: 0,
                bytes: 512,
                dur: Duration::from_millis(2),
            },
        );
        let global = RunReport::from_recorder(&rec);
        assert!((global.phases.get(Phase::Disk) - 0.008).abs() < 1e-9);

        let r11 = RunReport::for_request(&rec, 11);
        assert!((r11.phases.get(Phase::Disk) - 0.006).abs() < 1e-9);
        assert_eq!(r11.per_subchunk.len(), 1);
        assert_eq!(r11.per_subchunk[0].key.request, 11);
        assert_eq!(r11.per_subchunk[0].bytes, 256);
        assert!(r11.to_json().contains("\"request\":11"));

        let r12 = RunReport::for_request(&rec, 12);
        assert!((r12.phases.get(Phase::Disk) - 0.002).abs() < 1e-9);

        let empty = RunReport::for_request(&rec, 99);
        assert_eq!(empty.per_subchunk.len(), 0);
        assert_eq!(empty.wall_s, 0.0);
    }

    #[test]
    fn unknown_request_yields_empty_report_on_any_recorder() {
        // Timeline recorder with traffic: scoping to an id that never
        // ran is an empty report, not a panic, and still serializes.
        let rec = TimelineRecorder::new();
        drive(&rec);
        let report = RunReport::for_request(&rec, 424242);
        assert_eq!(report.wall_s, 0.0);
        assert!(report.per_subchunk.is_empty());
        assert!(report.per_node.is_empty());
        assert!(report.counters.is_none());
        for phase in Phase::ALL {
            assert_eq!(report.phases.get(phase), 0.0);
        }
        json::validate(&report.to_json()).unwrap();

        // Recorders with no timeline at all (NullRecorder) degrade the
        // same way — `timeline()` is None, not an error.
        let null = null_recorder();
        let report = RunReport::for_request(null.as_ref(), 1);
        assert_eq!(report.wall_s, 0.0);
        assert!(report.per_subchunk.is_empty());
    }

    #[test]
    fn mid_run_scope_only_counts_completed_subchunks() {
        // Phase durations are stamped when a subchunk's stage
        // completes, so a report taken mid-run contains exactly the
        // completed subchunks — an in-flight one contributes nothing
        // until its events land.
        let rec = TimelineRecorder::new();
        rec.record(
            2,
            &Event::DiskWriteDone {
                key: SubchunkKey::scoped(7, 0, 0, 0),
                offset: 0,
                bytes: 256,
                dur: Duration::from_millis(3),
            },
        );
        let mid = RunReport::for_request(&rec, 7);
        assert_eq!(mid.per_subchunk.len(), 1);
        assert_eq!(mid.per_subchunk[0].key.subchunk, 0);
        assert!((mid.disk_s() - 0.003).abs() < 1e-9);

        // Subchunk 1 finishes after the snapshot: the old report is
        // unchanged, a fresh scope sees both.
        rec.record(
            2,
            &Event::DiskWriteDone {
                key: SubchunkKey::scoped(7, 0, 0, 1),
                offset: 256,
                bytes: 256,
                dur: Duration::from_millis(5),
            },
        );
        assert_eq!(mid.per_subchunk.len(), 1);
        let done = RunReport::for_request(&rec, 7);
        assert_eq!(done.per_subchunk.len(), 2);
        assert!((done.disk_s() - 0.008).abs() < 1e-9);
    }

    #[test]
    fn phase_accessors_mirror_totals() {
        let rec = TimelineRecorder::new();
        drive(&rec);
        let report = RunReport::from_recorder(&rec);
        assert_eq!(report.exchange_s(), report.phases.get(Phase::Exchange));
        assert_eq!(report.disk_s(), report.phases.get(Phase::Disk));
        assert_eq!(report.reorg_s(), report.phases.get(Phase::Reorg));
        assert_eq!(report.throttle_s(), report.phases.get(Phase::Throttle));
        assert!((report.exchange_s() - 0.004).abs() < 1e-9);
        assert!((report.disk_s() - 0.008).abs() < 1e-9);
    }

    #[test]
    fn null_recorder_yields_empty_report() {
        let rec = null_recorder();
        let report = RunReport::from_recorder(rec.as_ref());
        assert_eq!(report.wall_s, 0.0);
        assert!(report.per_node.is_empty());
        assert!(report.per_subchunk.is_empty());
        assert!(report.counters.is_none());
        json::validate(&report.to_json()).unwrap();
    }
}
