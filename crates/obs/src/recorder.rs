//! The `Recorder` trait and the zero-cost null implementation.

use std::fmt;
use std::sync::{Arc, OnceLock};

use crate::counting::CountersSnapshot;
use crate::event::Event;
use crate::hub::MetricsSnapshot;
use crate::timeline::TimelineEvent;

/// A sink for instrumentation events.
///
/// Every layer of the stack (`panda-msg` transports, `panda-fs`
/// backends, the `panda-core` client/server) reports through this one
/// trait. `node` is the reporter's global fabric rank (clients
/// `0..C`, servers `C..C+S`); layers that have no rank report `0`.
///
/// # Zero cost when disabled
///
/// Emitting an event usually requires reading the clock (to measure a
/// duration) and building an [`Event`]. Call sites MUST gate that work
/// on [`Recorder::enabled`]; [`NullRecorder`] returns `false` so a
/// non-instrumented run performs no clock reads and no event
/// construction on the hot path.
pub trait Recorder: fmt::Debug + Send + Sync {
    /// Whether events should be constructed and durations measured at
    /// all. Hot paths check this before doing any instrumentation work.
    fn enabled(&self) -> bool {
        true
    }

    /// Record one event from node `node`. Must be cheap and must never
    /// block for long: it is called on the collective hot path.
    fn record(&self, node: u32, event: &Event<'_>);

    /// Aggregate counters, if this recorder keeps them.
    fn counters(&self) -> Option<CountersSnapshot> {
        None
    }

    /// The recorded event timeline, if this recorder keeps one.
    fn timeline(&self) -> Option<Vec<TimelineEvent>> {
        None
    }

    /// Number of events dropped (ring-buffer overflow); zero for
    /// recorders that never drop.
    fn dropped(&self) -> u64 {
        0
    }

    /// A live metrics snapshot, if this recorder is (or forwards to) a
    /// [`crate::MetricsHub`]. Lets scrape surfaces reach the hub through
    /// an `Arc<dyn Recorder>` without downcasting.
    fn metrics(&self) -> Option<MetricsSnapshot> {
        None
    }
}

/// A recorder that forwards every event to several children — e.g. a
/// [`crate::TimelineRecorder`] (for calibration, which needs per-subchunk
/// rows) alongside a [`crate::MetricsHub`] (for the live scrape surface)
/// and a [`crate::FlightRecorder`] (for incident dumps).
#[derive(Debug)]
pub struct FanoutRecorder {
    children: Vec<Arc<dyn Recorder>>,
}

impl FanoutRecorder {
    /// Forward to `children`, in order.
    pub fn new(children: Vec<Arc<dyn Recorder>>) -> Self {
        FanoutRecorder { children }
    }
}

impl Recorder for FanoutRecorder {
    fn enabled(&self) -> bool {
        self.children.iter().any(|c| c.enabled())
    }

    fn record(&self, node: u32, event: &Event<'_>) {
        for c in &self.children {
            c.record(node, event);
        }
    }

    fn counters(&self) -> Option<CountersSnapshot> {
        self.children.iter().find_map(|c| c.counters())
    }

    fn timeline(&self) -> Option<Vec<TimelineEvent>> {
        self.children.iter().find_map(|c| c.timeline())
    }

    fn dropped(&self) -> u64 {
        self.children.iter().map(|c| c.dropped()).sum()
    }

    fn metrics(&self) -> Option<MetricsSnapshot> {
        self.children.iter().find_map(|c| c.metrics())
    }
}

/// A recorder that does nothing. `enabled()` is `false`, so call sites
/// skip event construction entirely.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _node: u32, _event: &Event<'_>) {}
}

/// The shared null recorder: a cached `Arc` so defaulting a recorder
/// field costs one clone, not an allocation.
pub fn null_recorder() -> Arc<dyn Recorder> {
    static NULL: OnceLock<Arc<NullRecorder>> = OnceLock::new();
    NULL.get_or_init(|| Arc::new(NullRecorder)).clone() as Arc<dyn Recorder>
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_disabled_and_inert() {
        let rec = null_recorder();
        assert!(!rec.enabled());
        rec.record(
            0,
            &Event::RequestIssued {
                request: 0,
                op: crate::OpDir::Write,
                arrays: 1,
                pipeline_depth: 1,
            },
        );
        assert!(rec.counters().is_none());
        assert!(rec.timeline().is_none());
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn null_recorder_is_shared() {
        let a = null_recorder();
        let b = null_recorder();
        // Both handles come from the same cached allocation.
        assert!(std::ptr::eq(
            Arc::as_ptr(&a) as *const u8,
            Arc::as_ptr(&b) as *const u8
        ));
    }
}
