//! The typed event vocabulary shared by all Panda layers.

use std::time::Duration;

/// Identifies one subchunk of one array on one server: the unit the
/// paper's transfer schedule (and our pipeline window) operates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubchunkKey {
    /// Request id of the collective the subchunk belongs to (0 when the
    /// run predates request scoping or scoping is not needed). Ordered
    /// first so sorted reports group concurrent requests apart.
    pub request: u64,
    /// Server index (0-based among the I/O nodes).
    pub server: u32,
    /// Array index within the collective request.
    pub array: u32,
    /// Subchunk index in file order on this server.
    pub subchunk: u32,
}

impl SubchunkKey {
    /// Construct an unscoped key (request id 0).
    pub fn new(server: usize, array: u32, subchunk: usize) -> Self {
        Self::scoped(0, server, array, subchunk)
    }

    /// Construct a key scoped to one collective request.
    pub fn scoped(request: u64, server: usize, array: u32, subchunk: usize) -> Self {
        SubchunkKey {
            request,
            server: server as u32,
            array,
            subchunk: subchunk as u32,
        }
    }
}

/// Direction of a collective operation (mirror of `panda_core::OpKind`,
/// redeclared here so this crate stays dependency-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpDir {
    /// Compute-node memory → disk.
    Write,
    /// Disk → compute-node memory.
    Read,
}

impl OpDir {
    /// Stable lower-case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            OpDir::Write => "write",
            OpDir::Read => "read",
        }
    }
}

/// One instrumentation event. Events are *completions*: where a duration
/// is meaningful the emitting layer measures it and reports it here; the
/// recorder stamps the end time. Durations are measured only when the
/// recorder is enabled, so a [`crate::NullRecorder`] run never reads the
/// clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event<'a> {
    /// A server accepted a collective request (master relays included).
    RequestIssued {
        /// Request id of the collective (0 when unscoped).
        request: u64,
        /// Write or read.
        op: OpDir,
        /// Number of arrays in the request.
        arrays: u32,
        /// Requested pipeline depth.
        pipeline_depth: u32,
    },
    /// The server planner produced one subchunk of the schedule.
    SubchunkPlanned {
        /// Which subchunk.
        key: SubchunkKey,
        /// Its size in bytes.
        bytes: u64,
    },
    /// Write path: a `Fetch` for one piece of a subchunk left a server.
    FetchSent {
        /// Which subchunk.
        key: SubchunkKey,
        /// Piece index within the subchunk.
        piece: u32,
        /// Client rank the piece was requested from.
        client: u32,
    },
    /// Write path: a piece arrived back at the server. `wait` is the
    /// time the server spent blocked waiting for it — the per-subchunk
    /// *exchange* phase of the paper's decomposition.
    FetchReplied {
        /// Which subchunk.
        key: SubchunkKey,
        /// Payload bytes.
        bytes: u64,
        /// Time blocked in the receive.
        wait: Duration,
    },
    /// Write direction: a completed subchunk was queued for the
    /// engine's pinned disk stage.
    DiskWriteQueued {
        /// Which subchunk.
        key: SubchunkKey,
        /// Subchunk size.
        bytes: u64,
    },
    /// Read direction: the engine's pinned disk stage prefetched a
    /// subchunk and queued it for reorganization — the mirror of
    /// [`Event::DiskWriteQueued`].
    DiskReadQueued {
        /// Which subchunk.
        key: SubchunkKey,
        /// Subchunk size.
        bytes: u64,
    },
    /// A subchunk hit the disk — the *disk* phase (write side).
    DiskWriteDone {
        /// Which subchunk.
        key: SubchunkKey,
        /// File offset written.
        offset: u64,
        /// Bytes written.
        bytes: u64,
        /// Wall time of the `write_at` call.
        dur: Duration,
    },
    /// A subchunk was read from disk — the *disk* phase (read side).
    DiskReadDone {
        /// Which subchunk.
        key: SubchunkKey,
        /// File offset read.
        offset: u64,
        /// Bytes read.
        bytes: u64,
        /// Wall time of the `read_at` call.
        dur: Duration,
    },
    /// Read path: a packed piece was pushed to its owning client.
    PushSent {
        /// Which subchunk.
        key: SubchunkKey,
        /// Piece index within the subchunk.
        piece: u32,
        /// Client rank the piece was pushed to.
        client: u32,
        /// Payload bytes.
        bytes: u64,
    },
    /// A node finished its share of a collective operation.
    CollectiveDone {
        /// Request id of the collective (0 when unscoped).
        request: u64,
        /// Write or read.
        op: OpDir,
        /// Wall time of the node's participation.
        dur: Duration,
    },
    /// A client packed a requested region for a `Fetch` reply.
    ClientPacked {
        /// Request id of the collective (0 when unscoped).
        request: u64,
        /// Array index within the collective request.
        array: u32,
        /// The fetch sequence number being answered.
        seq: u64,
        /// Bytes packed.
        bytes: u64,
        /// Copy time.
        dur: Duration,
    },
    /// A client unpacked a delivered region into its buffer.
    ClientUnpacked {
        /// Request id of the collective (0 when unscoped).
        request: u64,
        /// Array index within the collective request.
        array: u32,
        /// The piece's sequence number.
        seq: u64,
        /// Bytes unpacked.
        bytes: u64,
        /// Copy time.
        dur: Duration,
    },
    /// The transport sent a message.
    MsgSent {
        /// Destination rank.
        to: u32,
        /// Message tag.
        tag: u32,
        /// Payload bytes.
        bytes: u64,
        /// Time spent in the send call (zero for buffered sends or when
        /// timing is disabled).
        dur: Duration,
    },
    /// The transport delivered a message to a receiver.
    MsgReceived {
        /// Source rank.
        from: u32,
        /// Message tag.
        tag: u32,
        /// Payload bytes.
        bytes: u64,
        /// Time the receiver spent blocked (zero when timing is
        /// disabled or the message was already buffered).
        wait: Duration,
    },
    /// A file-system backend served a positioned read.
    FsRead {
        /// File name within the backend.
        file: &'a str,
        /// Byte offset.
        offset: u64,
        /// Bytes read.
        bytes: u64,
        /// Whether the access continued the previous one on its handle.
        sequential: bool,
        /// Device time of the call (zero when timing is disabled).
        dur: Duration,
    },
    /// A file-system backend served a positioned write.
    FsWrite {
        /// File name within the backend.
        file: &'a str,
        /// Byte offset.
        offset: u64,
        /// Bytes written.
        bytes: u64,
        /// Whether the access continued the previous one on its handle.
        sequential: bool,
        /// Device time of the call (zero when timing is disabled).
        dur: Duration,
    },
    /// A file-system backend flushed a file to stable storage.
    FsSync {
        /// File name within the backend.
        file: &'a str,
        /// Device time of the call (zero when timing is disabled).
        dur: Duration,
    },
    /// A `ThrottledFs` slept to simulate device time — lets throttled
    /// benchmarks separate simulated device time from real work.
    ThrottleSleep {
        /// Bytes the simulated transfer covered.
        bytes: u64,
        /// True for the write direction.
        write: bool,
        /// Time actually slept.
        dur: Duration,
    },
    /// A master client submitted a collective request: one schedule
    /// covering the whole array group (a single array is a group of
    /// one — the request, not the array, is the unit of scheduling).
    GroupSubmit {
        /// Write or read.
        op: OpDir,
        /// Number of arrays batched into the request.
        arrays: u32,
        /// Requested pipeline depth.
        pipeline_depth: u32,
    },
    /// The schedule engine's reorganization stage moved one piece of a
    /// subchunk (assembly on the write direction, packing on the read
    /// direction) — jobs are issued to the server's worker pool.
    ReorgWorker {
        /// Which subchunk.
        key: SubchunkKey,
        /// Piece index within the subchunk.
        piece: u32,
        /// Bytes moved.
        bytes: u64,
        /// Copy time.
        dur: Duration,
    },
    /// A write was queued on a submission-queue backend (`SubmitFs`):
    /// ownership of the buffer moved to the backend; the matching
    /// [`Event::FsWrite`] (and [`Event::FsComplete`]) fire when a
    /// completion thread lands it.
    FsSubmit {
        /// File name within the backend.
        file: &'a str,
        /// Byte offset.
        offset: u64,
        /// Bytes queued.
        bytes: u64,
    },
    /// A submitted write completed on a completion thread. `queued` is
    /// the submit→completion latency — the depth of the device queue in
    /// time, the submission-side mirror of [`Event::FsWrite`]'s device
    /// time.
    FsComplete {
        /// File name within the backend.
        file: &'a str,
        /// Byte offset.
        offset: u64,
        /// Bytes written.
        bytes: u64,
        /// Time from submission to completion.
        queued: Duration,
    },
    /// The collective disk stage retired a sync barrier: `files` files
    /// were flushed under the request's `SyncPolicy` (1 for per-write
    /// and per-file barriers, the whole schedule for per-collective).
    DiskSyncDone {
        /// Files covered by this barrier.
        files: u32,
        /// Wall time of the barrier (completion drain + fsync).
        dur: Duration,
    },
    /// The master server refused to admit a collective request
    /// (surfaced to the submitter as `PandaError::Admission`). The
    /// flight recorder treats this as an incident trigger.
    AdmissionReject {
        /// The rejected request's id.
        request: u64,
        /// Requests waiting in the admission queue at rejection time.
        queued: u32,
        /// Collectives live on the server at rejection time.
        live: u32,
    },
    /// A collective failed on the submitting client with a
    /// non-admission error (protocol, transport, file system). The
    /// flight recorder treats this as an incident trigger.
    RequestError {
        /// The failed request's id (0 when unknown).
        request: u64,
        /// Short human-readable failure description.
        detail: &'a str,
    },
}

/// Number of event kinds (array dimension for per-kind counters).
pub const KIND_COUNT: usize = 25;

/// Fieldless mirror of [`Event`], used to index per-kind counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// See [`Event::RequestIssued`].
    RequestIssued,
    /// See [`Event::SubchunkPlanned`].
    SubchunkPlanned,
    /// See [`Event::FetchSent`].
    FetchSent,
    /// See [`Event::FetchReplied`].
    FetchReplied,
    /// See [`Event::DiskWriteQueued`].
    DiskWriteQueued,
    /// See [`Event::DiskWriteDone`].
    DiskWriteDone,
    /// See [`Event::DiskReadQueued`].
    DiskReadQueued,
    /// See [`Event::DiskReadDone`].
    DiskReadDone,
    /// See [`Event::PushSent`].
    PushSent,
    /// See [`Event::CollectiveDone`].
    CollectiveDone,
    /// See [`Event::ClientPacked`].
    ClientPacked,
    /// See [`Event::ClientUnpacked`].
    ClientUnpacked,
    /// See [`Event::MsgSent`].
    MsgSent,
    /// See [`Event::MsgReceived`].
    MsgReceived,
    /// See [`Event::FsRead`].
    FsRead,
    /// See [`Event::FsWrite`].
    FsWrite,
    /// See [`Event::FsSync`].
    FsSync,
    /// See [`Event::ThrottleSleep`].
    ThrottleSleep,
    /// See [`Event::GroupSubmit`].
    GroupSubmit,
    /// See [`Event::ReorgWorker`].
    ReorgWorker,
    /// See [`Event::FsSubmit`].
    FsSubmit,
    /// See [`Event::FsComplete`].
    FsComplete,
    /// See [`Event::DiskSyncDone`].
    DiskSyncDone,
    /// See [`Event::AdmissionReject`].
    AdmissionReject,
    /// See [`Event::RequestError`].
    RequestError,
}

impl EventKind {
    /// Every kind, in counter-index order.
    pub const ALL: [EventKind; KIND_COUNT] = [
        EventKind::RequestIssued,
        EventKind::SubchunkPlanned,
        EventKind::FetchSent,
        EventKind::FetchReplied,
        EventKind::DiskWriteQueued,
        EventKind::DiskWriteDone,
        EventKind::DiskReadQueued,
        EventKind::DiskReadDone,
        EventKind::PushSent,
        EventKind::CollectiveDone,
        EventKind::ClientPacked,
        EventKind::ClientUnpacked,
        EventKind::MsgSent,
        EventKind::MsgReceived,
        EventKind::FsRead,
        EventKind::FsWrite,
        EventKind::FsSync,
        EventKind::ThrottleSleep,
        EventKind::GroupSubmit,
        EventKind::ReorgWorker,
        EventKind::FsSubmit,
        EventKind::FsComplete,
        EventKind::DiskSyncDone,
        EventKind::AdmissionReject,
        EventKind::RequestError,
    ];

    /// Counter index of this kind.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name, used as the JSON key in reports.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::RequestIssued => "request_issued",
            EventKind::SubchunkPlanned => "subchunk_planned",
            EventKind::FetchSent => "fetch_sent",
            EventKind::FetchReplied => "fetch_replied",
            EventKind::DiskWriteQueued => "disk_write_queued",
            EventKind::DiskWriteDone => "disk_write_done",
            EventKind::DiskReadQueued => "disk_read_queued",
            EventKind::DiskReadDone => "disk_read_done",
            EventKind::PushSent => "push_sent",
            EventKind::CollectiveDone => "collective_done",
            EventKind::ClientPacked => "client_packed",
            EventKind::ClientUnpacked => "client_unpacked",
            EventKind::MsgSent => "msg_sent",
            EventKind::MsgReceived => "msg_received",
            EventKind::FsRead => "fs_read",
            EventKind::FsWrite => "fs_write",
            EventKind::FsSync => "fs_sync",
            EventKind::ThrottleSleep => "throttle_sleep",
            EventKind::GroupSubmit => "group_submit",
            EventKind::ReorgWorker => "reorg_worker",
            EventKind::FsSubmit => "fs_submit",
            EventKind::FsComplete => "fs_complete",
            EventKind::DiskSyncDone => "disk_sync_done",
            EventKind::AdmissionReject => "admission_reject",
            EventKind::RequestError => "request_error",
        }
    }

    /// The bucket this kind contributes to in the paper-style phase
    /// decomposition, if any. Phase sums use only these kinds, so the
    /// same duration is never counted in two phases.
    pub fn phase(self) -> Option<Phase> {
        match self {
            EventKind::FetchReplied => Some(Phase::Exchange),
            EventKind::DiskWriteDone | EventKind::DiskReadDone => Some(Phase::Disk),
            EventKind::ClientPacked | EventKind::ClientUnpacked | EventKind::ReorgWorker => {
                Some(Phase::Reorg)
            }
            EventKind::ThrottleSleep => Some(Phase::Throttle),
            EventKind::MsgReceived => Some(Phase::RecvWait),
            _ => None,
        }
    }
}

/// Buckets of the paper's Figure 5/6-style time decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Server blocked waiting for client data (write-path gather).
    Exchange,
    /// Time inside positioned disk reads/writes on the collective path.
    Disk,
    /// Data reorganization: packing, scattering, unpacking copies.
    Reorg,
    /// Simulated device time injected by `ThrottledFs` (informational;
    /// a subset of wall time, largely overlapping [`Phase::Disk`]).
    Throttle,
    /// Transport-level blocking in receives, all tags (informational;
    /// overlaps [`Phase::Exchange`] on the write path).
    RecvWait,
}

impl Phase {
    /// Index into [`Phase::ALL`]-ordered per-phase arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Bare label (no `_s` suffix) for metric label values.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Exchange => "exchange",
            Phase::Disk => "disk",
            Phase::Reorg => "reorg",
            Phase::Throttle => "throttle",
            Phase::RecvWait => "recv_wait",
        }
    }

    /// Stable snake_case name, used as the JSON key in reports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Exchange => "exchange_s",
            Phase::Disk => "disk_s",
            Phase::Reorg => "reorg_s",
            Phase::Throttle => "throttle_s",
            Phase::RecvWait => "recv_wait_s",
        }
    }

    /// Every phase, in report order.
    pub const ALL: [Phase; 5] = [
        Phase::Exchange,
        Phase::Disk,
        Phase::Reorg,
        Phase::Throttle,
        Phase::RecvWait,
    ];
}

impl Event<'_> {
    /// This event's kind.
    pub fn kind(&self) -> EventKind {
        match self {
            Event::RequestIssued { .. } => EventKind::RequestIssued,
            Event::SubchunkPlanned { .. } => EventKind::SubchunkPlanned,
            Event::FetchSent { .. } => EventKind::FetchSent,
            Event::FetchReplied { .. } => EventKind::FetchReplied,
            Event::DiskWriteQueued { .. } => EventKind::DiskWriteQueued,
            Event::DiskWriteDone { .. } => EventKind::DiskWriteDone,
            Event::DiskReadQueued { .. } => EventKind::DiskReadQueued,
            Event::DiskReadDone { .. } => EventKind::DiskReadDone,
            Event::PushSent { .. } => EventKind::PushSent,
            Event::CollectiveDone { .. } => EventKind::CollectiveDone,
            Event::ClientPacked { .. } => EventKind::ClientPacked,
            Event::ClientUnpacked { .. } => EventKind::ClientUnpacked,
            Event::MsgSent { .. } => EventKind::MsgSent,
            Event::MsgReceived { .. } => EventKind::MsgReceived,
            Event::FsRead { .. } => EventKind::FsRead,
            Event::FsWrite { .. } => EventKind::FsWrite,
            Event::FsSync { .. } => EventKind::FsSync,
            Event::ThrottleSleep { .. } => EventKind::ThrottleSleep,
            Event::GroupSubmit { .. } => EventKind::GroupSubmit,
            Event::ReorgWorker { .. } => EventKind::ReorgWorker,
            Event::FsSubmit { .. } => EventKind::FsSubmit,
            Event::FsComplete { .. } => EventKind::FsComplete,
            Event::DiskSyncDone { .. } => EventKind::DiskSyncDone,
            Event::AdmissionReject { .. } => EventKind::AdmissionReject,
            Event::RequestError { .. } => EventKind::RequestError,
        }
    }

    /// The subchunk this event belongs to, if it is keyed.
    pub fn key(&self) -> Option<SubchunkKey> {
        match self {
            Event::SubchunkPlanned { key, .. }
            | Event::FetchSent { key, .. }
            | Event::FetchReplied { key, .. }
            | Event::DiskWriteQueued { key, .. }
            | Event::DiskWriteDone { key, .. }
            | Event::DiskReadQueued { key, .. }
            | Event::DiskReadDone { key, .. }
            | Event::PushSent { key, .. }
            | Event::ReorgWorker { key, .. } => Some(*key),
            _ => None,
        }
    }

    /// Bytes the event accounts for (zero when not byte-carrying).
    pub fn bytes(&self) -> u64 {
        match self {
            Event::SubchunkPlanned { bytes, .. }
            | Event::FetchReplied { bytes, .. }
            | Event::DiskWriteQueued { bytes, .. }
            | Event::DiskWriteDone { bytes, .. }
            | Event::DiskReadQueued { bytes, .. }
            | Event::DiskReadDone { bytes, .. }
            | Event::PushSent { bytes, .. }
            | Event::ClientPacked { bytes, .. }
            | Event::ClientUnpacked { bytes, .. }
            | Event::MsgSent { bytes, .. }
            | Event::MsgReceived { bytes, .. }
            | Event::FsRead { bytes, .. }
            | Event::FsWrite { bytes, .. }
            | Event::ThrottleSleep { bytes, .. }
            | Event::ReorgWorker { bytes, .. }
            | Event::FsSubmit { bytes, .. }
            | Event::FsComplete { bytes, .. } => *bytes,
            _ => 0,
        }
    }

    /// The duration the event carries, if any.
    pub fn dur(&self) -> Option<Duration> {
        match self {
            Event::FetchReplied { wait, .. } | Event::MsgReceived { wait, .. } => Some(*wait),
            Event::DiskWriteDone { dur, .. }
            | Event::DiskReadDone { dur, .. }
            | Event::CollectiveDone { dur, .. }
            | Event::ClientPacked { dur, .. }
            | Event::ClientUnpacked { dur, .. }
            | Event::MsgSent { dur, .. }
            | Event::FsRead { dur, .. }
            | Event::FsWrite { dur, .. }
            | Event::FsSync { dur, .. }
            | Event::ThrottleSleep { dur, .. }
            | Event::ReorgWorker { dur, .. }
            | Event::DiskSyncDone { dur, .. } => Some(*dur),
            Event::FsComplete { queued, .. } => Some(*queued),
            _ => None,
        }
    }

    /// The collective request this event belongs to, when it is scoped
    /// to one: keyed events carry the request in their key; the
    /// request-lifecycle and client copy events carry it directly. A
    /// recorded id of 0 means "unscoped" and is reported as `None`.
    pub fn request(&self) -> Option<u64> {
        let id = match self {
            Event::RequestIssued { request, .. }
            | Event::CollectiveDone { request, .. }
            | Event::ClientPacked { request, .. }
            | Event::ClientUnpacked { request, .. }
            | Event::AdmissionReject { request, .. }
            | Event::RequestError { request, .. } => *request,
            _ => self.key().map(|k| k.request).unwrap_or(0),
        };
        (id != 0).then_some(id)
    }

    /// Sequential-or-seek classification for file-system accesses.
    pub fn sequential(&self) -> Option<bool> {
        match self {
            Event::FsRead { sequential, .. } | Event::FsWrite { sequential, .. } => {
                Some(*sequential)
            }
            _ => None,
        }
    }

    /// Message tag for transport events.
    pub fn tag(&self) -> Option<u32> {
        match self {
            Event::MsgSent { tag, .. } | Event::MsgReceived { tag, .. } => Some(*tag),
            _ => None,
        }
    }

    /// The peer rank involved (fetch/push client, message source or
    /// destination), if any.
    pub fn peer(&self) -> Option<u32> {
        match self {
            Event::FetchSent { client, .. } | Event::PushSent { client, .. } => Some(*client),
            Event::MsgSent { to, .. } => Some(*to),
            Event::MsgReceived { from, .. } => Some(*from),
            _ => None,
        }
    }

    /// The file name label for file-system events.
    pub fn label(&self) -> Option<&str> {
        match self {
            Event::FsRead { file, .. }
            | Event::FsWrite { file, .. }
            | Event::FsSync { file, .. }
            | Event::FsSubmit { file, .. }
            | Event::FsComplete { file, .. } => Some(file),
            Event::RequestError { detail, .. } => Some(detail),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_indices_match_all_order() {
        for (i, kind) in EventKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
    }

    #[test]
    fn names_are_unique_and_snake_case() {
        let mut names: Vec<&str> = EventKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), KIND_COUNT);
        for n in names {
            assert!(n
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn accessors_cover_the_collective_path() {
        let key = SubchunkKey::new(1, 0, 7);
        let e = Event::FetchReplied {
            key,
            bytes: 64,
            wait: Duration::from_millis(3),
        };
        assert_eq!(e.kind(), EventKind::FetchReplied);
        assert_eq!(e.key(), Some(key));
        assert_eq!(e.bytes(), 64);
        assert_eq!(e.dur(), Some(Duration::from_millis(3)));
        assert_eq!(e.kind().phase(), Some(Phase::Exchange));
        assert_eq!(e.request(), None, "request id 0 reads as unscoped");

        let scoped = SubchunkKey::scoped(9, 1, 0, 7);
        let e = Event::DiskWriteQueued {
            key: scoped,
            bytes: 64,
        };
        assert_eq!(e.request(), Some(9));
        assert!(scoped > key, "request orders first in sorted reports");

        let e = Event::FsWrite {
            file: "a.s0",
            offset: 0,
            bytes: 10,
            sequential: true,
            dur: Duration::ZERO,
        };
        assert_eq!(e.sequential(), Some(true));
        assert_eq!(e.label(), Some("a.s0"));
        assert_eq!(e.kind().phase(), None);

        let e = Event::MsgSent {
            to: 2,
            tag: 3,
            bytes: 5,
            dur: Duration::ZERO,
        };
        assert_eq!(e.tag(), Some(3));
        assert_eq!(e.peer(), Some(2));
    }

    #[test]
    fn phases_are_disjoint_over_kinds() {
        // No kind may feed two phases; `phase()` returning at most one
        // bucket per kind is what keeps the decomposition additive.
        for kind in EventKind::ALL {
            let _ = kind.phase(); // compiles exhaustively; no panic
        }
        assert_eq!(EventKind::DiskWriteDone.phase(), Some(Phase::Disk));
        assert_eq!(
            EventKind::FsWrite.phase(),
            None,
            "fs layer is reported, not summed"
        );
    }
}
