//! # panda-obs — one instrumentation API for the whole Panda stack
//!
//! The paper's entire evaluation (§4, Figures 3–9) rests on *decomposed*
//! timings — client exchange time vs. disk time vs. reorganization cost.
//! This crate is the reproduction's equivalent: a single [`Recorder`]
//! trait that every layer reports through, so one run can answer "where
//! did subchunk *k* spend its time" instead of offering disconnected
//! per-crate counters.
//!
//! * [`Event`] — the typed event vocabulary. Collective-path events
//!   ([`Event::FetchReplied`], [`Event::DiskWriteDone`], …) are keyed by
//!   [`SubchunkKey`] `(server, array, subchunk)`; transport events carry
//!   tags and byte counts; file-system events carry per-call device
//!   time.
//! * [`Recorder`] — the sink trait. Implementations:
//!   * [`NullRecorder`] — does nothing; `enabled()` returns `false` so
//!     call sites skip clock reads entirely (zero cost when disabled);
//!   * [`CountingRecorder`] — lock-free per-kind atomic counters plus
//!     log₂ latency histograms; the backing store behind the
//!     `panda_fs::IoStats` / `panda_msg::FabricStats` aggregate views;
//!   * [`TimelineRecorder`] — a bounded per-event ring buffer that
//!     exports a Chrome `trace_event` JSON trace and feeds the
//!     per-subchunk phase decomposition.
//! * [`RunReport`] — aggregates any recorder into one machine-readable
//!   JSON run report: phase totals (exchange / disk / reorganization /
//!   throttle), per-node phase sums, per-kind counters, and — with a
//!   timeline — per-subchunk phase durations.
//!
//! The *live* telemetry plane builds on the same event stream:
//!
//! * [`MetricsHub`] — lock-free sharded counters, per-phase cost-line
//!   moments, log₂ latency histograms, and per-tenant ledgers,
//!   snapshotted on demand into a [`MetricsSnapshot`] with p50/p95/p99
//!   derivation and Prometheus text exposition;
//! * [`FlightRecorder`] — an always-on bounded ring that dumps a Chrome
//!   trace automatically on admission rejections, request errors, or
//!   SLO-breaching collectives;
//! * [`FanoutRecorder`] — forwards one event stream to several sinks
//!   (e.g. a timeline for calibration plus a hub for scraping).
//!
//! The crate has no dependency on the rest of the workspace; `panda-msg`,
//! `panda-fs`, and `panda-core` all depend on it and report through the
//! same trait.

#![warn(missing_docs)]

pub mod calibrate;
pub mod counting;
pub mod event;
pub mod flight;
pub mod hub;
pub mod json;
pub mod recorder;
pub mod report;
pub mod timeline;

pub use calibrate::{CalibrationSummary, PhaseStats, CALIBRATION_SCHEMA};
pub use counting::{CountersSnapshot, CountingRecorder, KindStats, TagStats};
pub use event::{Event, EventKind, OpDir, Phase, SubchunkKey, KIND_COUNT};
pub use flight::{FlightRecorder, DEFAULT_FLIGHT_CAPACITY, DEFAULT_MAX_DUMPS};
pub use hub::{tenant_of, KindCounter, MetricsHub, MetricsSnapshot, PhaseMetrics, TenantMetrics};
pub use recorder::{null_recorder, FanoutRecorder, NullRecorder, Recorder};
pub use report::{NodePhases, PhaseTotals, RunReport, SubchunkPhases, REPORT_SCHEMA};
pub use timeline::{chrome_trace, TimelineEvent, TimelineRecorder, DEFAULT_TIMELINE_CAPACITY};
