//! Minimal hand-rolled JSON support: escaping writers used by the
//! report/trace serializers, and a small validating parser so tests and
//! the CI smoke run can check emitted documents without external crates.

/// Append `s` to `out` as a JSON string literal (quotes included).
pub fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `v` to `out` as a finite JSON number. Non-finite values (which
/// JSON cannot represent) are written as `0`.
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Shortest roundtrip formatting; always valid JSON (no NaN/inf).
        out.push_str(&format!("{v}"));
        // `{}` on an integral f64 prints no decimal point; that is still
        // valid JSON, so leave it.
    } else {
        out.push('0');
    }
}

/// Maximum nesting depth [`validate`] accepts.
const MAX_DEPTH: usize = 64;

/// Validate that `input` is one complete JSON value (RFC 8259 subset:
/// no duplicate-key detection). Returns the byte offset of the first
/// error, with a short description.
pub fn validate(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    match bytes.get(*pos) {
        None => Err(format!("unexpected end of input at byte {pos}")),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => parse_string(bytes, pos),
        Some(b't') => parse_literal(bytes, pos, b"true"),
        Some(b'f') => parse_literal(bytes, pos, b"false"),
        Some(b'n') => parse_literal(bytes, pos, b"null"),
        Some(c) if *c == b'-' || c.is_ascii_digit() => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {c:#x} at {pos}")),
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        parse_value(bytes, pos, depth + 1)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        parse_value(bytes, pos, depth + 1)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume opening quote
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => match bytes.get(*pos + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 2,
                Some(b'u') => {
                    let hex = bytes
                        .get(*pos + 2..*pos + 6)
                        .ok_or_else(|| format!("truncated \\u escape at byte {pos}"))?;
                    if !hex.iter().all(u8::is_ascii_hexdigit) {
                        return Err(format!("bad \\u escape at byte {pos}"));
                    }
                    *pos += 6;
                }
                _ => return Err(format!("bad escape at byte {pos}")),
            },
            c if c < 0x20 => return Err(format!("raw control byte {c:#x} at {pos}")),
            _ => *pos += 1,
        }
    }
    Err(format!("unterminated string at byte {pos}"))
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if bytes.get(*pos..*pos + lit.len()) == Some(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_digits = eat_digits(bytes, pos);
    if int_digits == 0 {
        return Err(format!("expected digits at byte {pos}"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if eat_digits(bytes, pos) == 0 {
            return Err(format!("expected fraction digits at byte {pos}"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if eat_digits(bytes, pos) == 0 {
            return Err(format!("expected exponent digits at byte {pos}"));
        }
    }
    debug_assert!(*pos > start);
    Ok(())
}

fn eat_digits(bytes: &[u8], pos: &mut usize) -> usize {
    let start = *pos;
    while matches!(bytes.get(*pos), Some(c) if c.is_ascii_digit()) {
        *pos += 1;
    }
    *pos - start
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writers_escape_and_format() {
        let mut s = String::new();
        push_str(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
        let mut n = String::new();
        push_f64(&mut n, 1.5);
        push_f64(&mut n, f64::NAN);
        assert_eq!(n, "1.50");
        let mut doc = String::from("[");
        doc.push_str(&s);
        doc.push(',');
        let mut num = String::new();
        push_f64(&mut num, -2.25e-3);
        doc.push_str(&num);
        doc.push(']');
        validate(&doc).unwrap();
    }

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "null",
            "true",
            "-12.5e3",
            "\"hi\\u00e9\"",
            "[]",
            "{}",
            "{\"a\":[1,2,{\"b\":null}],\"c\":\"x\"}",
            " { \"k\" : [ 1 , 2 ] } ",
        ] {
            validate(doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\"}",
            "{\"a\":}",
            "{a:1}",
            "\"unterminated",
            "1 2",
            "01e",
            "nul",
            "[\"\\x\"]",
        ] {
            assert!(validate(doc).is_err(), "{doc:?} should be rejected");
        }
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(validate(&deep).is_err());
        let ok = "[".repeat(20) + &"]".repeat(20);
        validate(&ok).unwrap();
    }
}
