//! Drive the `pandactl` binary itself (via `CARGO_BIN_EXE_pandactl`)
//! against a real dataset.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Arc;

use panda_core::{ArrayGroup, ArrayMeta, PandaConfig, PandaSystem};
use panda_fs::{FileSystem, LocalFs};
use panda_schema::{DataSchema, ElementType, Mesh, Shape};

fn pandactl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pandactl"))
}

fn produce_dataset(root: &Path, servers: usize) -> Vec<PathBuf> {
    let roots: Vec<PathBuf> = (0..servers)
        .map(|s| root.join(format!("ionode{s}")))
        .collect();
    let shape = Shape::new(&[8, 8]).unwrap();
    let mem = DataSchema::block_all(shape.clone(), ElementType::F64, Mesh::new(&[2, 2]).unwrap())
        .unwrap();
    let meta = ArrayMeta::new(
        "field",
        mem,
        DataSchema::traditional_order(shape, ElementType::F64, servers).unwrap(),
    )
    .unwrap();
    let (system, mut clients) = PandaSystem::builder()
        .config(PandaConfig::new(4, servers).clone())
        .launch(|s| Arc::new(LocalFs::new(&roots[s]).unwrap()) as Arc<dyn FileSystem>)
        .unwrap();
    std::thread::scope(|s| {
        for client in clients.iter_mut() {
            let meta = &meta;
            s.spawn(move || {
                let mut g = ArrayGroup::new("demo");
                g.include(meta.clone());
                let data = vec![7u8; meta.client_bytes(client.rank())];
                g.timestep(client, &[&data]).unwrap();
                if client.rank() == 0 {
                    g.save_schema(client).unwrap();
                }
            });
        }
    });
    system.shutdown(clients).unwrap();
    roots
}

#[test]
fn cli_list_show_verify_export() {
    let root = std::env::temp_dir().join(format!("pandactl-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let roots = produce_dataset(&root, 2);
    let root0 = roots[0].to_str().unwrap().to_string();
    let root1 = roots[1].to_str().unwrap().to_string();

    // list
    let out = pandactl().args(["list", &root0]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("demo"), "{stdout}");

    // show
    let out = pandactl().args(["show", &root0, "demo"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("BLOCK,* over 2"), "{stdout}");

    // verify (2 files: 1 array x 1 timestep x 2 servers)
    let out = pandactl()
        .args(["verify", "demo", &root0, &root1])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("2 files checked, 0 bad"), "{stdout}");

    // export
    let out_file = root.join("field.bin");
    let out = pandactl()
        .args([
            "export",
            "demo",
            "field",
            "demo/field.ts0",
            out_file.to_str().unwrap(),
            &root0,
            &root1,
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let image = std::fs::read(&out_file).unwrap();
    assert_eq!(image, vec![7u8; 8 * 8 * 8]);

    // unknown group fails politely
    let out = pandactl().args(["show", &root0, "nope"]).output().unwrap();
    assert!(!out.status.success());

    // no args prints usage with exit 2
    let out = pandactl().output().unwrap();
    assert_eq!(out.status.code(), Some(2));

    let _ = std::fs::remove_dir_all(&root);
}
