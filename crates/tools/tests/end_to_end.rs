//! End-to-end: a Panda deployment writes a dataset to real directories;
//! `panda-tools` then discovers, verifies, and exports it offline.

use std::path::PathBuf;
use std::sync::Arc;

use panda_core::{ArrayGroup, ArrayMeta, PandaConfig, PandaSystem};
use panda_fs::{FileSystem, LocalFs};
use panda_schema::copy::offset_in_region;
use panda_schema::{DataSchema, ElementType, Mesh, Region, Shape};
use panda_tools::{describe, discover, element_at, export, verify, Finding};

const SERVERS: usize = 2;

fn arrays() -> (ArrayMeta, ArrayMeta) {
    let shape = Shape::new(&[16, 12]).unwrap();
    let mem = DataSchema::block_all(shape.clone(), ElementType::F64, Mesh::new(&[2, 2]).unwrap())
        .unwrap();
    let traditional = ArrayMeta::new(
        "temperature",
        mem.clone(),
        DataSchema::traditional_order(shape, ElementType::F64, SERVERS).unwrap(),
    )
    .unwrap();
    let natural = ArrayMeta::natural("pressure", mem).unwrap();
    (traditional, natural)
}

/// Fill a client's chunk so that element (i,j) holds i*1000 + j.
fn chunk_data(meta: &ArrayMeta, rank: usize) -> Vec<u8> {
    let region = meta.client_region(rank);
    let mut out = vec![0u8; meta.client_bytes(rank)];
    let shape = region.shape().unwrap();
    for local in shape.iter_indices() {
        let (i, j) = (local[0] + region.lo()[0], local[1] + region.lo()[1]);
        let off = offset_in_region(&region, &[i, j], 8);
        out[off..off + 8].copy_from_slice(&((i * 1000 + j) as f64).to_le_bytes());
    }
    out
}

#[test]
fn write_then_inspect_offline() {
    let root = std::env::temp_dir().join(format!("pandactl-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let roots: Vec<PathBuf> = (0..SERVERS)
        .map(|s| root.join(format!("ionode{s}")))
        .collect();

    let (temperature, pressure) = arrays();
    // Produce the dataset.
    let (system, mut clients) = PandaSystem::builder()
        .config(
            PandaConfig::new(4, SERVERS)
                .with_subchunk_bytes(128)
                .clone(),
        )
        .launch(|s| Arc::new(LocalFs::new(&roots[s]).unwrap()) as Arc<dyn FileSystem>)
        .unwrap();
    std::thread::scope(|s| {
        for client in clients.iter_mut() {
            let (temperature, pressure) = (&temperature, &pressure);
            s.spawn(move || {
                let mut g = ArrayGroup::new("run");
                g.include(temperature.clone()).include(pressure.clone());
                let t = chunk_data(temperature, client.rank());
                let p = chunk_data(pressure, client.rank());
                g.timestep(client, &[&t, &p]).unwrap();
                g.checkpoint(client, &[&t, &p]).unwrap();
                if client.rank() == 0 {
                    g.save_schema(client).unwrap();
                }
            });
        }
    });
    system.shutdown(clients).unwrap();

    // Offline: discover the manifest.
    let found = discover(&roots[0]).unwrap();
    assert_eq!(found.len(), 1);
    let group = &found[0].group;
    assert_eq!(group.name(), "run");
    assert!(describe(group).contains("temperature"));

    // Verify all files against the planner.
    let findings = verify(group, &roots).unwrap();
    // 2 arrays x (1 timestep + 1 checkpoint generation) x 2 servers.
    assert_eq!(findings.len(), 8);
    assert!(findings.iter().all(|f| matches!(f, Finding::Ok { .. })));

    // Corrupt one file → verify flags exactly it.
    let victim = roots[1].join("run/pressure.ts0.s1");
    let orig = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &orig[..orig.len() - 8]).unwrap();
    let findings = verify(group, &roots).unwrap();
    let bad: Vec<_> = findings
        .iter()
        .filter(|f| matches!(f, Finding::WrongSize { .. }))
        .collect();
    assert_eq!(bad.len(), 1);
    std::fs::write(&victim, &orig).unwrap();

    // Export both layouts and spot-check elements: the traditional-
    // order export is a concatenation; the natural-chunking export
    // exercises the gather path. Both must give identical images.
    let t_meta = &group.arrays()[0];
    let p_meta = &group.arrays()[1];
    let t_img = export(t_meta, "run/temperature.ts0", &roots).unwrap();
    let p_img = export(p_meta, "run/pressure.ts0", &roots).unwrap();
    assert_eq!(t_img, p_img, "same values, different on-disk layouts");
    for (i, j) in [(0usize, 0usize), (7, 11), (15, 0), (9, 5)] {
        let b = element_at(t_meta, &t_img, &[i, j]);
        let v = f64::from_le_bytes(b.try_into().unwrap());
        assert_eq!(v, (i * 1000 + j) as f64, "element ({i},{j})");
    }
    // The traditional-order image equals raw concatenation.
    let mut cat = Vec::new();
    for (s, r) in roots.iter().enumerate() {
        cat.extend(std::fs::read(r.join(format!("run/temperature.ts0.s{s}"))).unwrap());
    }
    assert_eq!(cat, t_img);

    // Full region sanity: every element of the image is correct.
    let full = Region::of_shape(t_meta.shape());
    for idx in t_meta.shape().iter_indices() {
        let off = offset_in_region(&full, &idx, 8);
        let v = f64::from_le_bytes(t_img[off..off + 8].try_into().unwrap());
        assert_eq!(v, (idx[0] * 1000 + idx[1]) as f64);
    }

    let _ = std::fs::remove_dir_all(&root);
}
