//! # panda-tools — offline dataset tooling (`pandactl`)
//!
//! A Panda dataset is a set of per-I/O-node directories containing the
//! per-server files of each collective operation plus, per array group,
//! a `.schema` manifest (Figure 2's `simulation2.schema`). This crate
//! works on those directories *without* a running deployment:
//!
//! * [`discover`] — find the group manifests under a set of I/O-node
//!   roots;
//! * [`describe`] — render a group's schemas paper-style;
//! * [`verify`] — cross-check every present file's size against the
//!   server-directed planner's prediction for its server;
//! * [`export`] — reassemble one operation's files into a single
//!   row-major array file (cheap concatenation for traditional-order
//!   schemas, a full gather for chunked ones).
//!
//! The `pandactl` binary wraps these as subcommands.

#![warn(missing_docs)]

use std::fs;
use std::path::{Path, PathBuf};

use panda_core::{build_server_plan, ArrayGroup, ArrayMeta};
use panda_schema::copy::offset_in_region;
use panda_schema::DEFAULT_SUBCHUNK_BYTES;

/// A discovered group: its manifest plus where it came from.
#[derive(Debug)]
pub struct DiscoveredGroup {
    /// The decoded group definition.
    pub group: ArrayGroup,
    /// Path of the manifest file it was read from.
    pub manifest_path: PathBuf,
}

/// Find all group manifests (`*.schema`) under I/O-node root 0.
/// (Manifests live only on the first I/O node.)
pub fn discover(root0: &Path) -> std::io::Result<Vec<DiscoveredGroup>> {
    let mut out = Vec::new();
    let mut stack = vec![root0.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "schema") {
                let bytes = fs::read(&path)?;
                match ArrayGroup::decode_manifest(&bytes) {
                    Ok(group) => out.push(DiscoveredGroup {
                        group,
                        manifest_path: path,
                    }),
                    Err(e) => eprintln!("warning: undecodable manifest {}: {e}", path.display()),
                }
            }
        }
    }
    out.sort_by(|a, b| a.group.name().cmp(b.group.name()));
    Ok(out)
}

/// Render a group definition the way the paper writes schemas.
pub fn describe(group: &ArrayGroup) -> String {
    let mut s = format!(
        "group '{}': {} arrays, {} timesteps, {} checkpoints\n",
        group.name(),
        group.arrays().len(),
        group.timesteps_taken(),
        group.checkpoints_taken(),
    );
    for meta in group.arrays() {
        s.push_str(&format!(
            "  {}:\n    memory: {}\n    disk:   {}{}\n",
            meta.name(),
            meta.memory().describe(),
            meta.disk().describe(),
            if meta.is_natural() {
                "  (natural chunking)"
            } else {
                ""
            }
        ));
    }
    s
}

/// One verification finding.
#[derive(Debug, PartialEq, Eq)]
pub enum Finding {
    /// File present with exactly the planned size.
    Ok {
        /// The file checked.
        path: PathBuf,
        /// Its (correct) size.
        bytes: u64,
    },
    /// File present but the wrong size.
    WrongSize {
        /// The file checked.
        path: PathBuf,
        /// Size found.
        actual: u64,
        /// Size the planner predicts.
        expected: u64,
    },
}

/// Verify every file of `group` present under the per-server roots:
/// each `<tag>.s<i>` file must be exactly the planner's total for
/// server `i`. Files for operations never performed are simply absent
/// and not reported.
pub fn verify(group: &ArrayGroup, roots: &[PathBuf]) -> std::io::Result<Vec<Finding>> {
    let num_servers = roots.len();
    let mut findings = Vec::new();
    // Candidate tags: all timesteps and both checkpoint generations.
    for (idx, meta) in group.arrays().iter().enumerate() {
        let mut tags: Vec<String> = (0..group.timesteps_taken())
            .map(|t| group.timestep_tag(idx, t))
            .collect();
        tags.push(group.checkpoint_tag(idx, 0));
        tags.push(group.checkpoint_tag(idx, 1));
        for tag in tags {
            for (s, root) in roots.iter().enumerate() {
                let path = root.join(format!("{tag}.s{s}"));
                let Ok(md) = fs::metadata(&path) else {
                    continue; // op not performed / generation unused
                };
                let plan = build_server_plan(meta, s, num_servers, DEFAULT_SUBCHUNK_BYTES);
                if md.len() == plan.total_bytes {
                    findings.push(Finding::Ok {
                        path,
                        bytes: md.len(),
                    });
                } else {
                    findings.push(Finding::WrongSize {
                        path,
                        actual: md.len(),
                        expected: plan.total_bytes,
                    });
                }
            }
        }
    }
    Ok(findings)
}

/// Reassemble the files of one operation (`<tag>.s<i>` across servers)
/// into a single row-major array image.
///
/// For a traditional-order (`BLOCK,*,...`) disk schema this is plain
/// concatenation — the migration path the paper §3 highlights. For any
/// other schema the chunks are gathered into place through the same
/// placement computation the servers used.
pub fn export(meta: &ArrayMeta, tag: &str, roots: &[PathBuf]) -> std::io::Result<Vec<u8>> {
    let num_servers = roots.len();
    let elem = meta.elem_size();
    let mut out = vec![0u8; meta.total_bytes()];
    let full = panda_schema::Region::of_shape(meta.shape());
    for (s, root) in roots.iter().enumerate() {
        let path = root.join(format!("{tag}.s{s}"));
        let bytes = fs::read(&path)?;
        let plan = build_server_plan(meta, s, num_servers, DEFAULT_SUBCHUNK_BYTES);
        if bytes.len() as u64 != plan.total_bytes {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "{}: {} bytes, planner expects {}",
                    path.display(),
                    bytes.len(),
                    plan.total_bytes
                ),
            ));
        }
        for chunk in &plan.chunks {
            // Scatter the chunk (row-major in the file) into the image.
            let src_off = chunk.file_offset as usize;
            let chunk_bytes = chunk.region.num_bytes(elem);
            panda_schema::copy::copy_region(
                &bytes[src_off..src_off + chunk_bytes],
                &chunk.region,
                &mut out,
                &full,
                &chunk.region,
                elem,
            )
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        }
    }
    Ok(out)
}

/// Read one element of an exported image (tool convenience).
pub fn element_at(meta: &ArrayMeta, image: &[u8], idx: &[usize]) -> Vec<u8> {
    let elem = meta.elem_size();
    let full = panda_schema::Region::of_shape(meta.shape());
    let off = offset_in_region(&full, idx, elem);
    image[off..off + elem].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_schema::{DataSchema, ElementType, Mesh, Shape};

    fn group() -> ArrayGroup {
        let shape = Shape::new(&[8, 8]).unwrap();
        let mem =
            DataSchema::block_all(shape.clone(), ElementType::F64, Mesh::new(&[2, 2]).unwrap())
                .unwrap();
        let t = ArrayMeta::new(
            "temperature",
            mem.clone(),
            DataSchema::traditional_order(shape, ElementType::F64, 2).unwrap(),
        )
        .unwrap();
        let mut g = ArrayGroup::new("sim");
        g.include(t);
        g
    }

    #[test]
    fn describe_mentions_schemas() {
        let d = describe(&group());
        assert!(d.contains("group 'sim'"));
        assert!(d.contains("BLOCK,BLOCK over 2x2"));
        assert!(d.contains("BLOCK,* over 2"));
    }

    #[test]
    fn manifest_roundtrip_through_files() {
        let dir = std::env::temp_dir().join(format!("pandactl-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.join("sim")).unwrap();
        let g = group();
        fs::write(dir.join("sim/sim.schema"), g.encode_manifest()).unwrap();
        let found = discover(&dir).unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].group.name(), "sim");
        assert_eq!(found[0].group.arrays().len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
