//! `pandactl` — inspect, verify, and export Panda datasets offline.
//!
//! ```text
//! pandactl list   <ionode0-root>
//! pandactl show   <ionode0-root> <group>
//! pandactl verify <group> <root0> <root1> ...
//! pandactl export <group> <array> <tag> <out-file> <root0> <root1> ...
//! ```
//!
//! Roots are the per-I/O-node storage directories (server `i`'s files
//! live under root `i`). Group manifests (`<group>/<group>.schema`)
//! live under root 0.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use panda_tools::{describe, discover, export, verify, Finding};

fn usage() -> ExitCode {
    eprintln!("usage:");
    eprintln!("  pandactl list   <ionode0-root>");
    eprintln!("  pandactl show   <ionode0-root> <group>");
    eprintln!("  pandactl verify <group> <root0> <root1> ...");
    eprintln!("  pandactl export <group> <array> <tag> <out-file> <root0> <root1> ...");
    ExitCode::from(2)
}

fn load_group(root0: &Path, name: &str) -> Option<panda_core::ArrayGroup> {
    match discover(root0) {
        Ok(found) => found
            .into_iter()
            .find(|d| d.group.name() == name)
            .map(|d| d.group),
        Err(e) => {
            eprintln!("error reading {}: {e}", root0.display());
            None
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") if args.len() == 2 => {
            let root = PathBuf::from(&args[1]);
            match discover(&root) {
                Ok(found) if found.is_empty() => println!("no group manifests found"),
                Ok(found) => {
                    for d in found {
                        println!(
                            "{:<20} {} arrays  {} timesteps  {} checkpoints   ({})",
                            d.group.name(),
                            d.group.arrays().len(),
                            d.group.timesteps_taken(),
                            d.group.checkpoints_taken(),
                            d.manifest_path.display()
                        );
                    }
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
            ExitCode::SUCCESS
        }
        Some("show") if args.len() == 3 => {
            let root = PathBuf::from(&args[1]);
            match load_group(&root, &args[2]) {
                Some(group) => {
                    print!("{}", describe(&group));
                    ExitCode::SUCCESS
                }
                None => {
                    eprintln!("group '{}' not found under {}", args[2], root.display());
                    ExitCode::FAILURE
                }
            }
        }
        Some("verify") if args.len() >= 3 => {
            let roots: Vec<PathBuf> = args[2..].iter().map(PathBuf::from).collect();
            let Some(group) = load_group(&roots[0], &args[1]) else {
                eprintln!("group '{}' not found", args[1]);
                return ExitCode::FAILURE;
            };
            match verify(&group, &roots) {
                Ok(findings) => {
                    let mut bad = 0;
                    for f in &findings {
                        match f {
                            Finding::Ok { path, bytes } => {
                                println!("ok   {:<50} {bytes} bytes", path.display())
                            }
                            Finding::WrongSize {
                                path,
                                actual,
                                expected,
                            } => {
                                bad += 1;
                                println!(
                                    "BAD  {:<50} {actual} bytes (planner expects {expected})",
                                    path.display()
                                );
                            }
                        }
                    }
                    println!("{} files checked, {bad} bad", findings.len());
                    if bad == 0 {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("export") if args.len() >= 6 => {
            let (group_name, array_name, tag, out) = (&args[1], &args[2], &args[3], &args[4]);
            let roots: Vec<PathBuf> = args[5..].iter().map(PathBuf::from).collect();
            let Some(group) = load_group(&roots[0], group_name) else {
                eprintln!("group '{group_name}' not found");
                return ExitCode::FAILURE;
            };
            let Some(meta) = group.arrays().iter().find(|m| m.name() == array_name) else {
                eprintln!("array '{array_name}' not in group '{group_name}'");
                return ExitCode::FAILURE;
            };
            match export(meta, tag, &roots) {
                Ok(image) => {
                    if let Err(e) = std::fs::write(out, &image) {
                        eprintln!("error writing {out}: {e}");
                        return ExitCode::FAILURE;
                    }
                    println!(
                        "exported {} ({} bytes, row-major {}) to {out}",
                        array_name,
                        image.len(),
                        meta.memory().describe()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
