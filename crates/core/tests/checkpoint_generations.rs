//! A/B checkpoint generations: a crash during a checkpoint can never
//! lose the previous good one.

mod common;

use common::*;
use panda_core::{ArrayGroup, PandaError};
use panda_schema::ElementType;

#[test]
fn alternating_generations_and_latest_restart() {
    let meta = make_array("f", &[8, 8], ElementType::F64, &[2, 2], DiskSchema::Natural);
    let (system, mut clients, mems) = launch_mem(4, 2, 1 << 20);

    let first: Vec<Vec<u8>> = (0..4).map(|r| vec![0x11; meta.client_bytes(r)]).collect();
    let second: Vec<Vec<u8>> = (0..4).map(|r| vec![0x22; meta.client_bytes(r)]).collect();

    std::thread::scope(|s| {
        for (client, (d1, d2)) in clients.iter_mut().zip(first.iter().zip(&second)) {
            let meta = &meta;
            s.spawn(move || {
                let mut g = ArrayGroup::new("g");
                g.include(meta.clone());

                // No checkpoint yet → restart must refuse.
                let mut buf = vec![0u8; meta.client_bytes(client.rank())];
                let err = g.restart(client, &mut [buf.as_mut_slice()]).unwrap_err();
                assert!(matches!(err, PandaError::Config { .. }));

                // First checkpoint → generation a; second → generation b.
                g.checkpoint(client, &[d1]).unwrap();
                assert_eq!(g.checkpoints_taken(), 1);
                g.checkpoint(client, &[d2]).unwrap();
                assert_eq!(g.checkpoints_taken(), 2);

                // Restart returns the *latest* (generation b) data.
                let mut buf = vec![0u8; meta.client_bytes(client.rank())];
                g.restart(client, &mut [buf.as_mut_slice()]).unwrap();
                assert_eq!(buf, *d2);

                // A "torn" third checkpoint: pretend the collective
                // crashed before the generation committed. The group
                // state (gen counter) is untouched, so restart still
                // serves generation b even though generation-a files
                // were partially overwritten by the attempt.
                // (Simulated by simply not calling checkpoint.)
                let rewound = g.clone();
                let mut buf = vec![0u8; meta.client_bytes(client.rank())];
                rewound.restart(client, &mut [buf.as_mut_slice()]).unwrap();
                assert_eq!(buf, *d2);
            });
        }
    });

    // Both generations exist on disk as distinct file sets.
    for (i, fs) in mems.iter().enumerate() {
        assert!(fs.contents(&format!("g/f.ckpt-a.s{i}")).is_ok());
        assert!(fs.contents(&format!("g/f.ckpt-b.s{i}")).is_ok());
        assert_ne!(
            fs.contents(&format!("g/f.ckpt-a.s{i}")).unwrap(),
            fs.contents(&format!("g/f.ckpt-b.s{i}")).unwrap()
        );
    }
    system.shutdown(clients).unwrap();
}

#[test]
fn generation_counter_survives_the_manifest() {
    let meta = make_array("f", &[8, 8], ElementType::I32, &[2, 2], DiskSchema::Natural);
    let (system, mut clients, _mems) = launch_mem(4, 2, 1 << 20);
    let datas: Vec<Vec<u8>> = (0..4).map(|r| pattern_chunk(&meta, r)).collect();

    std::thread::scope(|s| {
        for (client, d) in clients.iter_mut().zip(&datas) {
            let meta = &meta;
            s.spawn(move || {
                let mut g = ArrayGroup::new("gen");
                g.include(meta.clone());
                g.checkpoint(client, &[d]).unwrap();
                g.checkpoint(client, &[d]).unwrap();
                g.checkpoint(client, &[d]).unwrap();
                if client.rank() == 0 {
                    g.save_schema(client).unwrap();
                }
            });
        }
    });

    let loaded = ArrayGroup::load(&mut clients[0], "gen").unwrap();
    assert_eq!(loaded.checkpoints_taken(), 3);
    // Generation 2 (0-based) is the live one: tag `ckpt-a` again
    // (3rd checkpoint → generation index 2 → 'a').
    assert_eq!(loaded.checkpoint_tag(0, 2), "gen/f.ckpt-a");
    system.shutdown(clients).unwrap();
}
