//! Multi-tenant service mode: concurrent session requests interleaving
//! on shared I/O nodes must honor admission control (typed rejection
//! when saturated, queue drain otherwise), never starve a tenant, and
//! produce byte-identical files whether requests run one at a time or
//! interleaved. Request-scoped observability must attribute each
//! event to the request that caused it.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use panda_core::{
    AdmissionIssue, ArrayMeta, PandaConfig, PandaError, PandaService, PandaSystem, ReadSet,
    Session, WriteSet,
};
use panda_fs::{FileHandle, FileSystem, FsError, IoStats, MemFs};
use panda_obs::{FlightRecorder, Recorder, TimelineRecorder};
use panda_schema::{DataSchema, ElementType, Mesh, Shape};

/// A single-node-mesh array (the session-mode requirement): this
/// session's buffer covers the whole array.
fn solo_meta(name: &str, dims: &[usize]) -> ArrayMeta {
    let shape = Shape::new(dims).unwrap();
    let mesh = Mesh::new(&vec![1; dims.len()]).unwrap();
    let mem = DataSchema::block_all(shape, ElementType::U8, mesh).unwrap();
    ArrayMeta::natural(name, mem).unwrap()
}

/// Deterministic per-tenant payload, never zero.
fn tenant_bytes(seed: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((seed.wrapping_mul(131).wrapping_add(i.wrapping_mul(7))) % 251) as u8 + 1)
        .collect()
}

// ---------------------------------------------------------------------
// A gate that blocks the disk stage's writes until released, so a test
// can hold one request live on the server deterministically.
// ---------------------------------------------------------------------

#[derive(Default)]
struct GateState {
    open: bool,
    reached: bool,
}

#[derive(Default)]
struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
}

impl Gate {
    /// Called from the disk thread: note that a write arrived, then
    /// block until the gate opens.
    fn pass(&self) {
        let mut st = self.state.lock().unwrap();
        st.reached = true;
        self.cv.notify_all();
        while !st.open {
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Block the test thread until some write has reached the gate.
    fn wait_reached(&self) {
        let mut st = self.state.lock().unwrap();
        while !st.reached {
            st = self.cv.wait(st).unwrap();
        }
    }

    fn open(&self) {
        let mut st = self.state.lock().unwrap();
        st.open = true;
        self.cv.notify_all();
    }
}

/// MemFs whose write path blocks on a [`Gate`].
struct GateFs {
    inner: Arc<MemFs>,
    gate: Arc<Gate>,
}

struct GateHandle {
    inner: Box<dyn FileHandle>,
    gate: Arc<Gate>,
}

impl FileHandle for GateHandle {
    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<(), FsError> {
        self.gate.pass();
        self.inner.write_at(offset, data)
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<(), FsError> {
        self.inner.read_at(offset, buf)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn sync(&mut self) -> Result<(), FsError> {
        self.inner.sync()
    }
}

impl FileSystem for GateFs {
    fn create(&self, path: &str) -> Result<Box<dyn FileHandle>, FsError> {
        Ok(Box::new(GateHandle {
            inner: self.inner.create(path)?,
            gate: Arc::clone(&self.gate),
        }))
    }

    fn open(&self, path: &str) -> Result<Box<dyn FileHandle>, FsError> {
        Ok(Box::new(GateHandle {
            inner: self.inner.open(path)?,
            gate: Arc::clone(&self.gate),
        }))
    }

    fn exists(&self, path: &str) -> bool {
        self.inner.exists(path)
    }

    fn remove(&self, path: &str) -> Result<(), FsError> {
        self.inner.remove(path)
    }

    fn list(&self) -> Vec<String> {
        self.inner.list()
    }

    fn stats(&self) -> Arc<IoStats> {
        self.inner.stats()
    }
}

fn serve_gated_rec(
    sessions: usize,
    max_concurrent: usize,
    max_queued: usize,
    recorder: Option<Arc<dyn Recorder>>,
) -> (PandaService, Arc<MemFs>, Arc<Gate>) {
    let mem = Arc::new(MemFs::new());
    let gate = Arc::new(Gate::default());
    let (fs, g) = (Arc::clone(&mem), Arc::clone(&gate));
    let mut config = PandaConfig::new(sessions, 1)
        .with_max_concurrent_collectives(max_concurrent)
        .with_max_queued_collectives(max_queued)
        .with_recv_timeout(Duration::from_secs(20));
    if let Some(rec) = recorder {
        config = config.with_recorder(rec);
    }
    let service = PandaSystem::builder()
        .config(config)
        .serve(move |_| {
            Arc::new(GateFs {
                inner: Arc::clone(&fs),
                gate: Arc::clone(&g),
            }) as Arc<dyn FileSystem>
        })
        .unwrap();
    (service, mem, gate)
}

fn serve_gated(
    sessions: usize,
    max_concurrent: usize,
    max_queued: usize,
) -> (PandaService, Arc<MemFs>, Arc<Gate>) {
    serve_gated_rec(sessions, max_concurrent, max_queued, None)
}

#[test]
fn saturated_service_rejects_with_typed_error() {
    let (mut service, mem, gate) = serve_gated(2, 1, 0);
    let a = service.open().unwrap();
    let mut b = service.open().unwrap();
    assert!(service.open().is_none(), "only two slots configured");

    let meta = solo_meta("t", &[8, 8]);
    let data_a = tenant_bytes(1, 64);
    let data_b = tenant_bytes(2, 64);

    let (a, req_a) = std::thread::scope(|s| {
        let h = s.spawn(|| {
            let mut a = a;
            let req = a
                .write_set(&WriteSet::new().array(&meta, "a", &data_a))
                .unwrap();
            (a, req)
        });
        // A's request is live on the server (its first disk write is
        // parked at the gate). A second submission must be rejected
        // *typed*, not blocked: max_concurrent 1, queue 0.
        gate.wait_reached();
        let err = b
            .write_set(&WriteSet::new().array(&meta, "b", &data_b))
            .unwrap_err();
        match err {
            PandaError::Admission {
                issue: AdmissionIssue::Saturated { live, max },
            } => {
                assert_eq!((live, max), (1, 1));
            }
            other => panic!("expected Saturated admission error, got {other}"),
        }
        gate.open();
        h.join().unwrap()
    });

    // The slot is free again: the rejected tenant retries and succeeds.
    let req_b = b
        .write_set(&WriteSet::new().array(&meta, "b", &data_b))
        .unwrap();
    assert_ne!(req_a, req_b);
    assert_eq!(mem.contents("a.s0").unwrap(), data_a);
    assert_eq!(mem.contents("b.s0").unwrap(), data_b);
    service.shutdown(vec![a, b]).unwrap();
}

#[test]
fn queued_request_drains_when_slot_frees() {
    let (mut service, mem, gate) = serve_gated(2, 1, 8);
    let a = service.open().unwrap();
    let b = service.open().unwrap();

    let meta = solo_meta("t", &[8, 8]);
    let data_a = tenant_bytes(3, 64);
    let data_b = tenant_bytes(4, 64);

    let (a, b, req_a, req_b) = std::thread::scope(|s| {
        let ha = s.spawn(|| {
            let mut a = a;
            let req = a
                .write_set(&WriteSet::new().array(&meta, "a", &data_a))
                .unwrap();
            (a, req)
        });
        gate.wait_reached();
        // B is admitted into the queue (not rejected) and blocks until
        // A's slot frees.
        let hb = s.spawn(|| {
            let mut b = b;
            let req = b
                .write_set(&WriteSet::new().array(&meta, "b", &data_b))
                .unwrap();
            (b, req)
        });
        std::thread::sleep(Duration::from_millis(50));
        gate.open();
        let (a, req_a) = ha.join().unwrap();
        let (b, req_b) = hb.join().unwrap();
        (a, b, req_a, req_b)
    });

    assert_ne!(req_a, req_b);
    assert_eq!(mem.contents("a.s0").unwrap(), data_a);
    assert_eq!(mem.contents("b.s0").unwrap(), data_b);
    service.shutdown(vec![a, b]).unwrap();
}

/// Eight tenants submitting at once, more than the concurrency limit:
/// every request completes (queued ones drain, nobody starves), every
/// request id is distinct, and every tenant reads its own bytes back.
#[test]
fn eight_concurrent_sessions_none_starve() {
    const TENANTS: usize = 8;
    let mems: Vec<Arc<MemFs>> = (0..2).map(|_| Arc::new(MemFs::new())).collect();
    let handles = mems.clone();
    let mut service = PandaSystem::builder()
        .config(
            PandaConfig::new(TENANTS, 2)
                .with_max_concurrent_collectives(3)
                .with_max_queued_collectives(TENANTS)
                .with_recv_timeout(Duration::from_secs(30)),
        )
        .serve(move |s| Arc::clone(&handles[s]) as Arc<dyn FileSystem>)
        .unwrap();

    let sessions: Vec<Session> = (0..TENANTS).map(|_| service.open().unwrap()).collect();
    let metas: Vec<ArrayMeta> = (0..TENANTS)
        .map(|i| solo_meta(&format!("t{i}"), &[16, 16]))
        .collect();

    let (sessions, ids) = std::thread::scope(|s| {
        let joins: Vec<_> = sessions
            .into_iter()
            .enumerate()
            .map(|(i, mut sess)| {
                let meta = &metas[i];
                s.spawn(move || {
                    let data = tenant_bytes(i, 256);
                    let tag = format!("t{i}");
                    let req = sess
                        .write_set(&WriteSet::new().array(meta, tag.as_str(), &data))
                        .unwrap();
                    let mut back = vec![0u8; 256];
                    sess.read_set(&mut ReadSet::new().array(meta, tag.as_str(), &mut back))
                        .unwrap();
                    assert_eq!(back, data, "tenant {i} read back wrong bytes");
                    (sess, req)
                })
            })
            .collect();
        let mut sessions = Vec::new();
        let mut ids = Vec::new();
        for j in joins {
            let (sess, req) = j.join().unwrap();
            sessions.push(sess);
            ids.push(req);
        }
        (sessions, ids)
    });

    let mut unique = ids.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(
        unique.len(),
        TENANTS,
        "request ids must be distinct: {ids:?}"
    );
    service.shutdown(sessions).unwrap();
}

const TENANTS: usize = 4;

/// Run `TENANTS` session writes over the given backends.
fn run_tenant_writes(max_concurrent: usize, fs_for: impl Fn(usize) -> Arc<dyn FileSystem> + Send) {
    let mut service = PandaSystem::builder()
        .config(
            PandaConfig::new(TENANTS, 2)
                .with_max_concurrent_collectives(max_concurrent)
                .with_max_queued_collectives(TENANTS)
                .with_subchunk_bytes(64)
                .with_recv_timeout(Duration::from_secs(30)),
        )
        .serve(fs_for)
        .unwrap();
    let sessions: Vec<Session> = (0..TENANTS).map(|_| service.open().unwrap()).collect();
    let metas: Vec<ArrayMeta> = (0..TENANTS)
        .map(|i| solo_meta(&format!("t{i}"), &[16, 16]))
        .collect();
    let sessions = std::thread::scope(|s| {
        let joins: Vec<_> = sessions
            .into_iter()
            .enumerate()
            .map(|(i, mut sess)| {
                let meta = &metas[i];
                s.spawn(move || {
                    let data = tenant_bytes(i.wrapping_mul(17), 256);
                    let tag = format!("t{i}");
                    sess.write_set(&WriteSet::new().array(meta, tag.as_str(), &data))
                        .unwrap();
                    sess
                })
            })
            .collect();
        joins
            .into_iter()
            .map(|j| j.join().unwrap())
            .collect::<Vec<_>>()
    });
    service.shutdown(sessions).unwrap();
}

/// Every file's bytes across the given MemFs backends, sorted by name.
fn memfs_snapshot(mems: &[Arc<MemFs>]) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = Vec::new();
    for (s, fs) in mems.iter().enumerate() {
        for name in fs.list() {
            files.push((format!("s{s}/{name}"), fs.contents(&name).unwrap()));
        }
    }
    files.sort();
    files
}

#[test]
fn interleaved_requests_write_identical_bytes_memfs() {
    let run = |conc: usize| {
        let mems: Vec<Arc<MemFs>> = (0..2).map(|_| Arc::new(MemFs::new())).collect();
        let handles = mems.clone();
        run_tenant_writes(conc, move |s| {
            Arc::clone(&handles[s]) as Arc<dyn FileSystem>
        });
        memfs_snapshot(&mems)
    };
    let sequential = run(1);
    let interleaved = run(4);
    assert!(!sequential.is_empty());
    assert_eq!(
        sequential, interleaved,
        "interleaving requests changed bytes on disk"
    );
}

#[test]
fn interleaved_requests_write_identical_bytes_localfs() {
    let root = std::env::temp_dir().join(format!("panda-tenancy-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let run = |sub: &str, conc: usize| {
        let sub_root = root.join(sub);
        let fs_root = sub_root.clone();
        run_tenant_writes(conc, move |s| {
            Arc::new(panda_fs::LocalFs::new(fs_root.join(format!("ionode{s}"))).unwrap())
                as Arc<dyn FileSystem>
        });
        let mut files: Vec<(String, Vec<u8>)> = Vec::new();
        for s in 0..2 {
            let dir = sub_root.join(format!("ionode{s}"));
            for entry in std::fs::read_dir(&dir).unwrap() {
                let entry = entry.unwrap();
                let name = entry.file_name().into_string().unwrap();
                files.push((format!("s{s}/{name}"), std::fs::read(entry.path()).unwrap()));
            }
        }
        files.sort();
        files
    };
    let sequential = run("seq", 1);
    let interleaved = run("conc", 4);
    assert!(!sequential.is_empty());
    assert_eq!(sequential, interleaved);
    let _ = std::fs::remove_dir_all(&root);
}

/// One HTTP GET against the scrape listener; returns (head, body).
fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect scrape listener");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    (head.to_string(), body.to_string())
}

/// Poll `/healthz` until it reports `want` (the gauges are published by
/// the server thread, so transitions are asynchronous).
fn wait_health_status(addr: std::net::SocketAddr, want: &str) -> (String, String) {
    let needle = format!("\"status\":\"{want}\"");
    for _ in 0..1000 {
        let (head, body) = http_get(addr, "/healthz");
        if body.contains(&needle) {
            return (head, body);
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("healthz never reached status {want:?}");
}

/// The scrape surface tracks admission state live: `/healthz` is `ok`
/// while nothing waits, `degraded` while a queue is non-empty, and
/// `unhealthy` (HTTP 503) once a queue hits its cap — the point where
/// the next session request is refused with `QueueFull`.
#[test]
fn healthz_degrades_with_queue_and_goes_unhealthy_at_cap() {
    let (mut service, _mem, gate) = serve_gated(4, 1, 2);
    let scrape = service.serve_metrics("127.0.0.1:0").unwrap();
    let addr = scrape.addr();

    let (head, body) = http_get(addr, "/healthz");
    assert!(
        head.starts_with("HTTP/1.1 200"),
        "idle service is ok: {head}"
    );
    assert!(body.contains("\"status\":\"ok\""));
    panda_obs::json::validate(&body).expect("healthz body is valid JSON");

    let a = service.open().unwrap();
    let b = service.open().unwrap();
    let c = service.open().unwrap();
    let mut d = service.open().unwrap();
    let meta = solo_meta("t", &[8, 8]);
    let data = tenant_bytes(5, 64);

    let (a, b, c) = std::thread::scope(|s| {
        let ha = s.spawn(|| {
            let mut a = a;
            a.write_set(&WriteSet::new().array(&meta, "a", &data))
                .unwrap();
            a
        });
        // A is live (parked at the gate), nothing queued: still ok.
        gate.wait_reached();
        let (head, _) = http_get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"));

        // B waits in the queue: degraded, but still HTTP 200.
        let hb = s.spawn(|| {
            let mut b = b;
            b.write_set(&WriteSet::new().array(&meta, "b", &data))
                .unwrap();
            b
        });
        let (head, _) = wait_health_status(addr, "degraded");
        assert!(head.starts_with("HTTP/1.1 200"), "degraded is 200: {head}");

        // C fills the queue to its cap: unhealthy, HTTP 503.
        let hc = s.spawn(|| {
            let mut c = c;
            c.write_set(&WriteSet::new().array(&meta, "c", &data))
                .unwrap();
            c
        });
        let (head, _) = wait_health_status(addr, "unhealthy");
        assert!(head.starts_with("HTTP/1.1 503"), "unhealthy is 503: {head}");

        // And the next session request is indeed refused.
        let err = d
            .write_set(&WriteSet::new().array(&meta, "d", &data))
            .unwrap_err();
        assert!(
            matches!(
                err,
                PandaError::Admission {
                    issue: AdmissionIssue::QueueFull { queued: 2, max: 2 }
                }
            ),
            "expected QueueFull, got {err}"
        );

        gate.open();
        (ha.join().unwrap(), hb.join().unwrap(), hc.join().unwrap())
    });

    // Everything drained: back to ok, and the rejection is on the
    // metrics surface.
    wait_health_status(addr, "ok");
    let (head, body) = http_get(addr, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200"));
    assert!(body.contains("panda_admission_rejects_total 1"), "{body}");
    assert!(body.contains("panda_health_status 0"));

    scrape.stop();
    service.shutdown(vec![a, b, c, d]).unwrap();
}

/// The flight recorder round-trips an injected admission rejection:
/// the server-side `AdmissionReject` event triggers an automatic dump,
/// and the dump loads back as a valid Chrome trace containing both the
/// trigger and the history before it.
#[test]
fn flight_recorder_dumps_admission_reject_as_chrome_trace() {
    let dir = std::env::temp_dir().join(format!("panda-flight-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let flight = Arc::new(FlightRecorder::new(&dir));
    let (mut service, _mem, gate) =
        serve_gated_rec(2, 1, 0, Some(Arc::clone(&flight) as Arc<dyn Recorder>));
    let a = service.open().unwrap();
    let mut b = service.open().unwrap();
    let meta = solo_meta("t", &[8, 8]);
    let data = tenant_bytes(6, 64);

    let a = std::thread::scope(|s| {
        let ha = s.spawn(|| {
            let mut a = a;
            a.write_set(&WriteSet::new().array(&meta, "a", &data))
                .unwrap();
            a
        });
        gate.wait_reached();
        assert!(flight.last_dump().is_none(), "no incident yet, no dump");
        let err = b
            .write_set(&WriteSet::new().array(&meta, "b", &data))
            .unwrap_err();
        assert!(matches!(err, PandaError::Admission { .. }));
        gate.open();
        ha.join().unwrap()
    });

    // The dump was written by the server thread *before* it sent the
    // rejection, so it exists by the time the submitter saw the error.
    let path = flight.last_dump().expect("rejection produced a dump");
    let doc = std::fs::read_to_string(&path).unwrap();
    panda_obs::json::validate(&doc).expect("dump is a valid Chrome trace");
    assert!(doc.contains("\"traceEvents\""));
    assert!(doc.contains("admission_reject"), "trigger event retained");
    assert!(
        doc.contains("request_issued"),
        "pre-incident history retained"
    );

    service.shutdown(vec![a, b]).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The observability bugfix: phase decomposition and event keys are
/// scoped by request id, so one tenant's report never absorbs
/// another's concurrent work.
#[test]
fn run_report_scopes_phases_by_request() {
    let rec = Arc::new(TimelineRecorder::with_capacity(8192));
    let mut service = PandaSystem::builder()
        .config(
            PandaConfig::new(2, 1)
                .with_max_concurrent_collectives(2)
                .with_recv_timeout(Duration::from_secs(20))
                .with_recorder(rec.clone() as Arc<dyn Recorder>),
        )
        .serve(|_| Arc::new(MemFs::new()) as Arc<dyn FileSystem>)
        .unwrap();
    let mut a = service.open().unwrap();
    let mut b = service.open().unwrap();

    let meta_a = solo_meta("a", &[8, 8]);
    let meta_b = solo_meta("b", &[16, 16]);
    let data_a = tenant_bytes(9, 64);
    let data_b = tenant_bytes(11, 256);
    let req_a = a
        .write_set(&WriteSet::new().array(&meta_a, "a", &data_a))
        .unwrap();
    let req_b = b
        .write_set(&WriteSet::new().array(&meta_b, "b", &data_b))
        .unwrap();
    assert_ne!(req_a, req_b);
    assert_eq!(a.last_request_id(), Some(req_a));

    let report_a = panda_obs::RunReport::for_request(rec.as_ref(), req_a);
    let report_b = panda_obs::RunReport::for_request(rec.as_ref(), req_b);
    assert!(
        !report_a.per_subchunk.is_empty() && !report_b.per_subchunk.is_empty(),
        "both requests must have recorded subchunk work"
    );
    for sc in &report_a.per_subchunk {
        assert_eq!(sc.key.request, req_a, "foreign subchunk in a's report");
    }
    for sc in &report_b.per_subchunk {
        assert_eq!(sc.key.request, req_b, "foreign subchunk in b's report");
    }
    // A request id that never ran reports nothing.
    let empty = panda_obs::RunReport::for_request(rec.as_ref(), 0xdead_beef);
    assert!(empty.per_subchunk.is_empty());

    service.shutdown(vec![a, b]).unwrap();
}
