//! The paper's §5 portability claim, demonstrated: "we will be able to
//! run Panda on a network of ordinary workstations without changing any
//! code." The entire collective protocol runs unchanged over real TCP
//! sockets instead of the in-process fabric.

mod common;

use std::sync::Arc;
use std::time::Duration;

use common::*;
use panda_core::{PandaConfig, PandaSystem};
use panda_fs::{FileSystem, MemFs};
use panda_msg::{FabricStats, TcpFabric, Transport};
use panda_schema::ElementType;

fn launch_tcp(
    num_clients: usize,
    num_servers: usize,
    subchunk: usize,
) -> (PandaSystem, Vec<panda_core::PandaClient>, Vec<Arc<MemFs>>) {
    let endpoints = TcpFabric::localhost(num_clients + num_servers, Duration::from_secs(20))
        .expect("tcp fabric");
    let transports: Vec<Box<dyn Transport>> = endpoints
        .into_iter()
        .map(|e| Box::new(e) as Box<dyn Transport>)
        .collect();
    let mems: Vec<Arc<MemFs>> = (0..num_servers).map(|_| Arc::new(MemFs::new())).collect();
    let handles = mems.clone();
    let config = PandaConfig::new(num_clients, num_servers)
        .with_subchunk_bytes(subchunk)
        .with_recv_timeout(Duration::from_secs(20));
    let (system, clients) = PandaSystem::builder()
        .config(config)
        .transports(transports, Arc::new(FabricStats::new()))
        .launch(move |s| Arc::clone(&handles[s]) as Arc<dyn FileSystem>)
        .expect("launch over tcp");
    (system, clients, mems)
}

#[test]
fn collective_roundtrip_over_tcp() {
    let meta = make_array(
        "t",
        &[16, 16],
        ElementType::F64,
        &[2, 2],
        DiskSchema::Traditional(2),
    );
    let (system, mut clients, mems) = launch_tcp(4, 2, 256);
    collective_write(&mut clients, &meta, "t");
    // Files are byte-identical to what the in-process fabric produces.
    assert_eq!(concat_server_files(&mems, "t"), pattern_full(&meta));
    let bufs = collective_read(&mut clients, &meta, "t");
    assert_pattern(&meta, &bufs);
    // And still perfectly sequential at each I/O node.
    for fs in &mems {
        assert_eq!(fs.stats().seeks(), 0);
    }
    system.shutdown(clients).unwrap();
}

#[test]
fn group_ops_over_tcp() {
    use panda_core::{ArrayGroup, GroupData};
    let meta = make_array("f", &[8, 8], ElementType::I32, &[2, 2], DiskSchema::Natural);
    let (system, mut clients, _mems) = launch_tcp(4, 2, 1 << 20);
    std::thread::scope(|s| {
        for client in clients.iter_mut() {
            let meta = &meta;
            s.spawn(move || {
                let mut g = ArrayGroup::new("net");
                g.include(meta.clone());
                let chunk = pattern_chunk(meta, client.rank());
                g.checkpoint(client, &[&chunk]).unwrap();
                if client.rank() == 0 {
                    g.save_schema(client).unwrap();
                }
                let mut data = GroupData::zeroed(&g, client.rank());
                g.restart(client, &mut data.slices_mut()).unwrap();
                assert_eq!(data.buffer(0), &chunk[..]);
            });
        }
    });
    // Manifest reloads over TCP too.
    let loaded = panda_core::ArrayGroup::load(&mut clients[0], "net").unwrap();
    assert_eq!(loaded.checkpoints_taken(), 1);
    system.shutdown(clients).unwrap();
}
