//! Tests for the group schema manifest (the paper's
//! `ArrayGroup("Sim2", "simulation2.schema")`): a fresh process must be
//! able to reconstruct the group from I/O-node state alone and restart.

mod common;

use common::*;
use panda_core::{ArrayGroup, GroupData, PandaError};
use panda_schema::ElementType;

#[test]
fn save_and_load_roundtrip() {
    let a = make_array(
        "alpha",
        &[8, 8],
        ElementType::F64,
        &[2, 2],
        DiskSchema::Natural,
    );
    let b = make_array(
        "beta",
        &[6, 4],
        ElementType::I32,
        &[2, 2],
        DiskSchema::Traditional(2),
    );
    let (system, mut clients, _mems) = launch_mem(4, 2, 1 << 20);

    let mut group = ArrayGroup::new("sim");
    group.include(a.clone()).include(b.clone());

    // Take two timesteps so the counter is nontrivial, then persist.
    std::thread::scope(|s| {
        for client in clients.iter_mut() {
            let (a, b) = (&a, &b);
            s.spawn(move || {
                let mut g = ArrayGroup::new("sim");
                g.include(a.clone()).include(b.clone());
                let data = GroupData::zeroed(&g, client.rank());
                g.timestep(client, &data.slices()).unwrap();
                g.timestep(client, &data.slices()).unwrap();
                if client.rank() == 0 {
                    g.save_schema(client).unwrap();
                }
            });
        }
    });

    // A "fresh process": reconstruct from the manifest alone.
    let loaded = ArrayGroup::load(&mut clients[1], "sim").unwrap();
    assert_eq!(loaded.name(), "sim");
    assert_eq!(loaded.timesteps_taken(), 2);
    assert_eq!(loaded.arrays().len(), 2);
    assert_eq!(loaded.arrays()[0], a);
    assert_eq!(loaded.arrays()[1], b);
    assert_eq!(loaded.manifest_file(), "sim/sim.schema");

    system.shutdown(clients).unwrap();
}

#[test]
fn load_missing_manifest_errors() {
    let (system, mut clients, _mems) = launch_mem(2, 1, 1 << 20);
    let err = ArrayGroup::load(&mut clients[0], "nope").unwrap_err();
    assert!(matches!(err, PandaError::Fs(_)));
    system.shutdown(clients).unwrap();
}

#[test]
fn checkpoint_then_cold_restart_via_manifest() {
    // Full recovery story: write a checkpoint + manifest, forget
    // everything, reload the group from the manifest, restart the data.
    let a = make_array(
        "field",
        &[12, 12],
        ElementType::F64,
        &[2, 2],
        DiskSchema::Traditional(2),
    );
    let (system, mut clients, _mems) = launch_mem(4, 2, 256);

    std::thread::scope(|s| {
        for client in clients.iter_mut() {
            let a = &a;
            s.spawn(move || {
                let mut g = ArrayGroup::new("ckpt");
                g.include(a.clone());
                let chunk = pattern_chunk(a, client.rank());
                g.checkpoint(client, &[&chunk]).unwrap();
                g.save_schema(client).unwrap();
            });
        }
    });

    // Cold start: no ArrayMeta in hand, only the group name.
    std::thread::scope(|s| {
        for client in clients.iter_mut() {
            s.spawn(move || {
                let g = ArrayGroup::load(client, "ckpt").unwrap();
                let mut data = GroupData::zeroed(&g, client.rank());
                g.restart(client, &mut data.slices_mut()).unwrap();
                assert_eq!(
                    data.buffer(0),
                    &pattern_chunk(&g.arrays()[0], client.rank())[..]
                );
            });
        }
    });
    system.shutdown(clients).unwrap();
}
