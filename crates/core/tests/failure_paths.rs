//! Failure injection: the protocol must fail loudly and diagnosably
//! rather than hang when a participant misbehaves.

mod common;

use std::sync::Arc;
use std::time::Duration;

use common::*;
use panda_core::{PandaConfig, PandaError, PandaSystem, ReadSet, WriteSet};
use panda_fs::{FileSystem, MemFs};
use panda_schema::ElementType;

#[test]
fn missing_client_times_out_instead_of_hanging() {
    // Only 3 of 4 clients join the collective write. The servers wait
    // for the fourth client's pieces; the configured receive timeout
    // turns that into an error instead of a deadlock.
    let meta = make_array("t", &[8, 8], ElementType::F64, &[2, 2], DiskSchema::Natural);
    let config = PandaConfig::new(4, 2)
        .with_recv_timeout(Duration::from_millis(300))
        .with_subchunk_bytes(1 << 20);
    let (system, mut clients) = PandaSystem::builder()
        .config(config.clone())
        .launch(|_| Arc::new(MemFs::new()) as Arc<dyn FileSystem>)
        .unwrap();
    let datas: Vec<Vec<u8>> = (0..4).map(|r| pattern_chunk(&meta, r)).collect();

    let mut results: Vec<Result<(), PandaError>> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = clients
            .iter_mut()
            .zip(&datas)
            .enumerate()
            .filter(|(rank, _)| *rank != 3) // client 3 "crashed"
            .map(|(_, (client, data))| {
                let meta = &meta;
                s.spawn(move || {
                    client.write_set(&WriteSet::new().array(meta, "t", data.as_slice()))
                })
            })
            .collect();
        for h in handles {
            results.push(h.join().unwrap());
        }
    });
    // Every participating client surfaces an error (timeout waiting
    // for release/complete).
    assert!(results.iter().all(|r| r.is_err()));
    // The server threads errored too; shutdown reports it.
    let err = system.shutdown(clients).map(|_| ()).unwrap_err();
    assert!(
        matches!(err, PandaError::Msg(_) | PandaError::Protocol { .. }),
        "got {err}"
    );
}

#[test]
fn garbage_message_to_server_is_a_decode_error() {
    let config = PandaConfig::new(1, 1).with_recv_timeout(Duration::from_millis(300));
    let (system, mut clients) = PandaSystem::builder()
        .config(config.clone())
        .launch(|_| Arc::new(MemFs::new()) as Arc<dyn FileSystem>)
        .unwrap();
    // Hand-craft a corrupt COLLECTIVE message.
    clients[0]
        .transport_mut_for_tests()
        .send(
            panda_msg::NodeId(1),
            panda_core::protocol::tags::COLLECTIVE,
            vec![0xff; 3],
        )
        .unwrap();
    let err = system.shutdown(clients).map(|_| ()).unwrap_err();
    assert!(matches!(err, PandaError::Decode { .. }), "got {err}");
}

#[test]
fn unexpected_tag_is_a_protocol_error() {
    let config = PandaConfig::new(1, 1).with_recv_timeout(Duration::from_millis(300));
    let (system, mut clients) = PandaSystem::builder()
        .config(config.clone())
        .launch(|_| Arc::new(MemFs::new()) as Arc<dyn FileSystem>)
        .unwrap();
    // Servers never expect a RELEASE message.
    clients[0]
        .transport_mut_for_tests()
        .send(
            panda_msg::NodeId(1),
            panda_core::protocol::tags::RELEASE,
            panda_core::protocol::Msg::Release { request: 0 }.encode(),
        )
        .unwrap();
    let err = system.shutdown(clients).map(|_| ()).unwrap_err();
    assert!(matches!(err, PandaError::Protocol { .. }), "got {err}");
}

#[test]
fn read_of_missing_files_surfaces_fs_error() {
    let meta = make_array("t", &[8, 8], ElementType::F64, &[2, 2], DiskSchema::Natural);
    let config = PandaConfig::new(4, 2).with_recv_timeout(Duration::from_millis(500));
    let (system, mut clients) = PandaSystem::builder()
        .config(config.clone())
        .launch(|_| Arc::new(MemFs::new()) as Arc<dyn FileSystem>)
        .unwrap();
    // Read something that was never written: the servers hit NotFound
    // and abort; clients time out waiting for data.
    let mut results: Vec<Result<(), PandaError>> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = clients
            .iter_mut()
            .map(|client| {
                let meta = &meta;
                s.spawn(move || {
                    let mut buf = vec![0u8; meta.client_bytes(client.rank())];
                    client.read_set(&mut ReadSet::new().array(
                        meta,
                        "never_written",
                        buf.as_mut_slice(),
                    ))
                })
            })
            .collect();
        for h in handles {
            results.push(h.join().unwrap());
        }
    });
    assert!(results.iter().all(|r| r.is_err()));
    let err = system.shutdown(clients).map(|_| ()).unwrap_err();
    assert!(
        matches!(err, PandaError::Fs(_) | PandaError::Msg(_)),
        "got {err}"
    );
}
