//! Property tests: write-then-read through the full threaded runtime is
//! the identity for arbitrary valid schema pairs, traditional-order
//! files always concatenate to the row-major array, and the planner's
//! pieces tile every array cell exactly once across all servers.

mod common;

use common::*;
use panda_core::{build_server_plan, ArrayMeta};
use panda_fs::FileSystem as _;
use panda_schema::{DataSchema, Dist, ElementType, Mesh, SchemaError, Shape};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Scenario {
    dims: Vec<usize>,
    mem_mesh: Vec<usize>,
    disk: Vec<(Dist, usize)>, // per-dim directive and (if Block) parts
    servers: usize,
    subchunk: usize,
    elem: ElementType,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    let rank = 1usize..=3;
    rank.prop_flat_map(|r| {
        let dims = prop::collection::vec(2usize..=8, r..=r);
        let mem_parts = prop::collection::vec(1usize..=3, r..=r);
        let disk = prop::collection::vec(
            prop_oneof![
                (1usize..=3).prop_map(|p| (Dist::Block, p)),
                Just((Dist::Star, 1usize)),
            ],
            r..=r,
        );
        (
            dims,
            mem_parts,
            disk,
            1usize..=3,
            prop_oneof![Just(16usize), Just(64), Just(1 << 20)],
            prop_oneof![Just(ElementType::U8), Just(ElementType::F64)],
        )
            .prop_map(|(dims, mem_mesh, disk, servers, subchunk, elem)| Scenario {
                dims,
                mem_mesh,
                disk,
                servers,
                subchunk,
                elem,
            })
    })
}

fn build(scenario: &Scenario) -> panda_core::ArrayMeta {
    // Disk mesh axes: one per Block dim.
    let disk_dists: Vec<Dist> = scenario.disk.iter().map(|&(d, _)| d).collect();
    let disk_mesh: Vec<usize> = scenario
        .disk
        .iter()
        .filter(|&&(d, _)| d.is_distributed())
        .map(|&(_, p)| p)
        .collect();
    // At least one distributed dim is needed only if the mesh is
    // nonempty; an all-Star disk schema gets a rank-0 mesh.
    make_array(
        "prop",
        &scenario.dims,
        scenario.elem,
        &scenario.mem_mesh,
        DiskSchema::Custom(disk_dists, disk_mesh),
    )
}

proptest! {
    // Each case launches threads; keep the count moderate.
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    #[test]
    fn write_read_roundtrip_is_identity(scenario in scenario()) {
        let meta = build(&scenario);
        let num_clients = meta.num_clients();
        let (system, mut clients, _mems) =
            launch_mem(num_clients, scenario.servers, scenario.subchunk);
        collective_write(&mut clients, &meta, "prop");
        let bufs = collective_read(&mut clients, &meta, "prop");
        for (r, buf) in bufs.iter().enumerate() {
            prop_assert_eq!(buf, &pattern_chunk(&meta, r), "client {}", r);
        }
        system.shutdown(clients).unwrap();
    }

    #[test]
    fn files_always_hold_each_byte_exactly_once(scenario in scenario()) {
        let meta = build(&scenario);
        let num_clients = meta.num_clients();
        let (system, mut clients, mems) =
            launch_mem(num_clients, scenario.servers, scenario.subchunk);
        collective_write(&mut clients, &meta, "prop");
        let total: usize = mems
            .iter()
            .enumerate()
            .map(|(i, m)| m.contents(&format!("prop.s{i}")).map(|v| v.len()).unwrap_or(0))
            .sum();
        prop_assert_eq!(total, meta.total_bytes());
        // Zero seeks, always.
        for m in &mems {
            prop_assert_eq!(m.stats().seeks(), 0);
        }
        system.shutdown(clients).unwrap();
    }
}

/// (dims, memory mesh, per-dim disk directive, servers, subchunk).
type PlanCase = (Vec<usize>, Vec<usize>, Vec<(Dist, usize)>, usize, usize);

/// Like [`scenario`] but for pure planning (no threads): disk dists may
/// also be `CYCLIC(b)`, which the schema layer must reject up front.
fn plan_scenario() -> impl Strategy<Value = PlanCase> {
    let rank = 1usize..=3;
    rank.prop_flat_map(|r| {
        (
            prop::collection::vec(2usize..=9, r..=r),
            prop::collection::vec(1usize..=3, r..=r),
            prop::collection::vec(
                prop_oneof![
                    (1usize..=4).prop_map(|p| (Dist::Block, p)),
                    Just((Dist::Star, 1usize)),
                    (1usize..=3, 1usize..=3).prop_map(|(b, p)| (Dist::Cyclic(b), p)),
                ],
                r..=r,
            ),
            1usize..=4,
            prop_oneof![Just(8usize), Just(64), Just(4096)],
        )
    })
}

proptest! {
    // Pure planner arithmetic — no threads, so many more cases.
    #![proptest_config(ProptestConfig {
        cases: 256,
        ..ProptestConfig::default()
    })]

    /// The paper's correctness core: across *all* servers' plans, the
    /// client pieces of every subchunk tile the array — each cell
    /// covered exactly once, for any BLOCK/`*` schema, server count,
    /// and subchunk size. CYCLIC schemas never reach the planner: the
    /// schema constructor rejects them with a typed error.
    #[test]
    fn plans_cover_every_cell_exactly_once(case in plan_scenario()) {
        let (dims, mem_mesh, disk, servers, subchunk) = case;
        let shape = Shape::new(&dims).unwrap();
        let elem = ElementType::U8;
        let disk_dists: Vec<Dist> = disk.iter().map(|&(d, _)| d).collect();
        let disk_mesh: Vec<usize> = disk
            .iter()
            .filter(|&&(d, _)| d.is_distributed())
            .map(|&(_, p)| p)
            .collect();
        let built = DataSchema::new(
            shape.clone(),
            elem,
            &disk_dists,
            Mesh::new(&disk_mesh).unwrap(),
        );
        if let Some(dim) = disk_dists.iter().position(|d| matches!(d, Dist::Cyclic(_))) {
            prop_assert_eq!(
                built.unwrap_err(),
                SchemaError::UnsupportedDistribution { dim }
            );
        } else {
            let mem = DataSchema::block_all(
                shape.clone(),
                elem,
                Mesh::new(&mem_mesh).unwrap(),
            )
            .unwrap();
            let meta = ArrayMeta::new("prop", mem, built.unwrap()).unwrap();
            let mut counts = vec![0u32; shape.num_elements()];
            for s in 0..servers {
                let plan = build_server_plan(&meta, s, servers, subchunk);
                for sub in plan.subchunks() {
                    for p in &sub.pieces {
                        let pshape = p.region.shape().unwrap();
                        for local in pshape.iter_indices() {
                            let global: Vec<usize> = local
                                .iter()
                                .zip(p.region.lo())
                                .map(|(&l, &o)| l + o)
                                .collect();
                            counts[shape.linearize(&global)] += 1;
                        }
                    }
                }
            }
            prop_assert!(
                counts.iter().all(|&c| c == 1),
                "some cell covered != once across {} servers",
                servers
            );
        }
    }
}
