//! Collective section reads: arbitrary rectangular subarrays come back
//! correctly, cheaply (fewer bytes off disk), and in server-directed
//! file order.

mod common;

use common::*;
use panda_core::{PandaClient, ReadSet};
use panda_fs::FileSystem as _;
use panda_schema::copy::offset_in_region;
use panda_schema::{ElementType, Region};
use proptest::prelude::*;

/// Expected bytes for `client`'s share of `section` under the pattern.
fn pattern_section(meta: &panda_core::ArrayMeta, rank: usize, section: &Region) -> Vec<u8> {
    let elem = meta.elem_size();
    let Some(target) = meta.client_region(rank).intersect(section) else {
        return Vec::new();
    };
    let mut out = vec![0u8; target.num_bytes(elem)];
    let shape = target.shape().expect("nonempty");
    for local in shape.iter_indices() {
        let global: Vec<usize> = local
            .iter()
            .zip(target.lo())
            .map(|(&l, &o)| l + o)
            .collect();
        let lin = meta.shape().linearize(&global);
        let off = offset_in_region(&target, &global, elem);
        for b in 0..elem {
            out[off + b] = element_byte(lin, b);
        }
    }
    out
}

fn run_section_read(
    clients: &mut [PandaClient],
    meta: &panda_core::ArrayMeta,
    tag: &str,
    section: &Region,
) -> Vec<Vec<u8>> {
    let mut bufs: Vec<Vec<u8>> = clients
        .iter()
        .map(|c| vec![0u8; c.section_bytes(meta, section)])
        .collect();
    std::thread::scope(|s| {
        for (client, buf) in clients.iter_mut().zip(bufs.iter_mut()) {
            s.spawn(move || {
                client
                    .read_set(&mut ReadSet::new().section(
                        meta,
                        tag,
                        section.clone(),
                        buf.as_mut_slice(),
                    ))
                    .unwrap();
            });
        }
    });
    bufs
}

#[test]
fn interior_box_section() {
    let meta = make_array(
        "t",
        &[16, 16],
        ElementType::F64,
        &[2, 2],
        DiskSchema::Traditional(2),
    );
    let (system, mut clients, _mems) = launch_mem(4, 2, 128);
    collective_write(&mut clients, &meta, "t");
    let section = Region::new(&[3, 5], &[13, 11]).unwrap();
    let bufs = run_section_read(&mut clients, &meta, "t", &section);
    for (r, buf) in bufs.iter().enumerate() {
        assert_eq!(buf, &pattern_section(&meta, r, &section), "client {r}");
    }
    system.shutdown(clients).unwrap();
}

#[test]
fn section_covering_whole_array_equals_full_read() {
    let meta = make_array(
        "t",
        &[8, 12],
        ElementType::I32,
        &[2, 2],
        DiskSchema::Natural,
    );
    let (system, mut clients, _mems) = launch_mem(4, 2, 64);
    collective_write(&mut clients, &meta, "t");
    let all = Region::new(&[0, 0], &[8, 12]).unwrap();
    let bufs = run_section_read(&mut clients, &meta, "t", &all);
    assert_pattern(&meta, &bufs);
    system.shutdown(clients).unwrap();
}

#[test]
fn section_disjoint_from_some_clients() {
    // A single plane owned entirely by the top row of clients: the
    // bottom clients participate with empty buffers.
    let meta = make_array(
        "t",
        &[16, 16],
        ElementType::F64,
        &[2, 2],
        DiskSchema::Traditional(3),
    );
    let (system, mut clients, _mems) = launch_mem(4, 3, 256);
    collective_write(&mut clients, &meta, "t");
    let plane = Region::new(&[2, 0], &[3, 16]).unwrap();
    let bufs = run_section_read(&mut clients, &meta, "t", &plane);
    assert!(!bufs[0].is_empty() && !bufs[1].is_empty());
    assert!(bufs[2].is_empty() && bufs[3].is_empty());
    for (r, buf) in bufs.iter().enumerate() {
        assert_eq!(buf, &pattern_section(&meta, r, &plane));
    }
    system.shutdown(clients).unwrap();
}

#[test]
fn section_reads_less_from_disk() {
    let meta = make_array(
        "t",
        &[64, 64],
        ElementType::F64,
        &[2, 2],
        DiskSchema::Traditional(2),
    );
    let (system, mut clients, mems) = launch_mem(4, 2, 1024);
    collective_write(&mut clients, &meta, "t");
    let before: u64 = mems.iter().map(|m| m.stats().bytes_read()).sum();
    // A thin slab: 4 of 64 rows.
    let slab = Region::new(&[30, 0], &[34, 64]).unwrap();
    let _ = run_section_read(&mut clients, &meta, "t", &slab);
    let read: u64 = mems.iter().map(|m| m.stats().bytes_read()).sum::<u64>() - before;
    let full = meta.total_bytes() as u64;
    assert!(
        read < full / 4,
        "section read {read} bytes; full array is {full}"
    );
    system.shutdown(clients).unwrap();
}

#[test]
fn wrong_section_buffer_size_rejected() {
    let meta = make_array("t", &[8, 8], ElementType::F64, &[2, 2], DiskSchema::Natural);
    let (system, mut clients, _mems) = launch_mem(4, 1, 1 << 20);
    collective_write(&mut clients, &meta, "t");
    let section = Region::new(&[0, 0], &[2, 2]).unwrap();
    let mut bad = vec![0u8; 3];
    let err = clients[1]
        .read_set(&mut ReadSet::new().section(&meta, "t", section.clone(), &mut bad))
        .unwrap_err();
    assert!(matches!(
        err,
        panda_core::PandaError::BadClientBuffer { .. }
    ));
    system.shutdown(clients).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any section of any written array reads back as the matching
    /// slice of the pattern, across schema kinds.
    #[test]
    fn arbitrary_sections_roundtrip(
        lo0 in 0usize..12, lo1 in 0usize..10,
        ext0 in 1usize..=12, ext1 in 1usize..=10,
        traditional in any::<bool>(),
    ) {
        let meta = make_array(
            "t",
            &[12, 10],
            ElementType::U8,
            &[2, 2],
            if traditional {
                DiskSchema::Traditional(2)
            } else {
                DiskSchema::Natural
            },
        );
        let section = Region::new(
            &[lo0.min(11), lo1.min(9)],
            &[(lo0 + ext0).min(12), (lo1 + ext1).min(10)],
        )
        .unwrap();
        let (system, mut clients, _mems) = launch_mem(4, 2, 16);
        collective_write(&mut clients, &meta, "t");
        let bufs = run_section_read(&mut clients, &meta, "t", &section);
        for (r, buf) in bufs.iter().enumerate() {
            prop_assert_eq!(buf, &pattern_section(&meta, r, &section), "client {}", r);
        }
        system.shutdown(clients).unwrap();
    }
}
