//! Shared helpers for the panda-core integration tests.
#![allow(dead_code)] // each test binary uses a different subset

use std::sync::Arc;

use panda_core::{ArrayMeta, PandaClient, PandaConfig, PandaSystem, ReadSet, WriteSet};
use panda_fs::{FileSystem, MemFs};
use panda_schema::copy::offset_in_region;
use panda_schema::{DataSchema, Dist, ElementType, Mesh, Shape};

/// Deterministic byte for element `lin` (row-major linear index), byte
/// `b` within the element. Never zero, so zero reads as "untouched".
pub fn element_byte(lin: usize, b: usize) -> u8 {
    ((lin.wrapping_mul(31).wrapping_add(b.wrapping_mul(7))) % 251) as u8 + 1
}

/// The full array in traditional (row-major) order under the pattern.
pub fn pattern_full(meta: &ArrayMeta) -> Vec<u8> {
    let elem = meta.elem_size();
    let n = meta.shape().num_elements();
    let mut out = vec![0u8; n * elem];
    for lin in 0..n {
        for b in 0..elem {
            out[lin * elem + b] = element_byte(lin, b);
        }
    }
    out
}

/// Client `rank`'s chunk buffer under the pattern.
pub fn pattern_chunk(meta: &ArrayMeta, rank: usize) -> Vec<u8> {
    let elem = meta.elem_size();
    let region = meta.client_region(rank);
    let mut out = vec![0u8; meta.client_bytes(rank)];
    if region.is_empty() {
        return out;
    }
    let shape = region.shape().expect("nonempty");
    for local in shape.iter_indices() {
        let global: Vec<usize> = local
            .iter()
            .zip(region.lo())
            .map(|(&l, &o)| l + o)
            .collect();
        let lin = meta.shape().linearize(&global);
        let off = offset_in_region(&region, &global, elem);
        for b in 0..elem {
            out[off + b] = element_byte(lin, b);
        }
    }
    out
}

/// Build an array with a `BLOCK`-everywhere memory schema and the given
/// disk schema choice.
pub fn make_array(
    name: &str,
    dims: &[usize],
    elem: ElementType,
    mem_mesh: &[usize],
    disk: DiskSchema,
) -> ArrayMeta {
    let shape = Shape::new(dims).unwrap();
    let mem = DataSchema::block_all(shape.clone(), elem, Mesh::new(mem_mesh).unwrap()).unwrap();
    match disk {
        DiskSchema::Natural => ArrayMeta::natural(name, mem).unwrap(),
        DiskSchema::Traditional(n) => {
            let d = DataSchema::traditional_order(shape, elem, n).unwrap();
            ArrayMeta::new(name, mem, d).unwrap()
        }
        DiskSchema::Custom(dists, mesh) => {
            let d = DataSchema::new(shape, elem, &dists, Mesh::new(&mesh).unwrap()).unwrap();
            ArrayMeta::new(name, mem, d).unwrap()
        }
    }
}

/// Disk-schema selector for [`make_array`].
pub enum DiskSchema {
    /// Disk schema == memory schema.
    Natural,
    /// `BLOCK,*,...` over n I/O nodes.
    Traditional(usize),
    /// Arbitrary dists over an arbitrary mesh.
    Custom(Vec<Dist>, Vec<usize>),
}

/// Launch a MemFs-backed system.
pub fn launch_mem(
    num_clients: usize,
    num_servers: usize,
    subchunk: usize,
) -> (PandaSystem, Vec<PandaClient>, Vec<Arc<MemFs>>) {
    let mems: Vec<Arc<MemFs>> = (0..num_servers).map(|_| Arc::new(MemFs::new())).collect();
    let handles = mems.clone();
    let config = PandaConfig::new(num_clients, num_servers)
        .with_subchunk_bytes(subchunk)
        .with_recv_timeout(std::time::Duration::from_secs(20));
    let (system, clients) = PandaSystem::builder()
        .config(config)
        .launch(move |s| Arc::clone(&handles[s]) as Arc<dyn FileSystem>)
        .unwrap();
    (system, clients, mems)
}

/// Launch a system over existing MemFs backends with an explicit
/// pipeline depth (for comparing depths over the same or equal files).
pub fn launch_mem_over(
    mems: &[Arc<MemFs>],
    num_clients: usize,
    subchunk: usize,
    depth: usize,
) -> (PandaSystem, Vec<PandaClient>) {
    let handles: Vec<Arc<MemFs>> = mems.to_vec();
    let config = PandaConfig::new(num_clients, mems.len())
        .with_subchunk_bytes(subchunk)
        .with_pipeline_depth(depth)
        .with_recv_timeout(std::time::Duration::from_secs(20));
    PandaSystem::builder()
        .config(config)
        .launch(move |s| Arc::clone(&handles[s]) as Arc<dyn FileSystem>)
        .unwrap()
}

/// Concatenate each server's file `"<tag>.s<i>"` across servers in
/// order.
pub fn concat_server_files(mems: &[Arc<MemFs>], tag: &str) -> Vec<u8> {
    let mut out = Vec::new();
    for (i, fs) in mems.iter().enumerate() {
        let name = format!("{tag}.s{i}");
        if let Ok(bytes) = fs.contents(&name) {
            out.extend_from_slice(&bytes);
        }
    }
    out
}

/// Collective write of one array from every client, using the pattern.
pub fn collective_write(clients: &mut [PandaClient], meta: &ArrayMeta, tag: &str) {
    let datas: Vec<Vec<u8>> = (0..clients.len()).map(|r| pattern_chunk(meta, r)).collect();
    std::thread::scope(|s| {
        for (client, data) in clients.iter_mut().zip(&datas) {
            s.spawn(move || {
                let set = WriteSet::new().array(meta, tag, data.as_slice());
                client.write_set(&set).unwrap();
            });
        }
    });
}

/// Collective read of one array into fresh buffers; returns them by
/// client rank.
pub fn collective_read(clients: &mut [PandaClient], meta: &ArrayMeta, tag: &str) -> Vec<Vec<u8>> {
    let mut bufs: Vec<Vec<u8>> = (0..clients.len())
        .map(|r| vec![0u8; meta.client_bytes(r)])
        .collect();
    std::thread::scope(|s| {
        for (client, buf) in clients.iter_mut().zip(bufs.iter_mut()) {
            s.spawn(move || {
                let mut set = ReadSet::new().array(meta, tag, buf.as_mut_slice());
                client.read_set(&mut set).unwrap();
            });
        }
    });
    bufs
}

/// Assert that every client's buffer equals the pattern for its chunk.
pub fn assert_pattern(meta: &ArrayMeta, bufs: &[Vec<u8>]) {
    for (r, buf) in bufs.iter().enumerate() {
        assert_eq!(buf, &pattern_chunk(meta, r), "client {r} chunk mismatch");
    }
}
