//! The 0.6-era positional APIs (`write`/`read`/`read_section` tuple
//! slices) are deprecated shims over `WriteSet`/`ReadSet`; they must
//! keep working verbatim for one release.
#![allow(deprecated)]

use std::sync::Arc;

use panda_core::{ArrayMeta, PandaConfig, PandaSystem};
use panda_fs::{FileSystem, MemFs};
use panda_schema::{DataSchema, ElementType, Mesh, Region, Shape};

#[test]
fn tuple_slice_shims_still_round_trip() {
    let shape = Shape::new(&[8, 8]).unwrap();
    let mem = DataSchema::block_all(shape, ElementType::U8, Mesh::new(&[1, 1]).unwrap()).unwrap();
    let meta = ArrayMeta::natural("t", mem).unwrap();
    let data: Vec<u8> = (0..64u8).map(|i| i + 1).collect();

    let config = PandaConfig::new(1, 1).with_recv_timeout(std::time::Duration::from_secs(10));
    let (system, mut clients) = PandaSystem::builder()
        .config(config)
        .launch(|_| Arc::new(MemFs::new()) as Arc<dyn FileSystem>)
        .unwrap();
    let client = &mut clients[0];

    client.write(&[(&meta, "t", data.as_slice())]).unwrap();

    let mut back = vec![0u8; 64];
    client
        .read(&mut [(&meta, "t", back.as_mut_slice())])
        .unwrap();
    assert_eq!(back, data);

    let section = Region::new(&[0, 0], &[2, 8]).unwrap();
    let mut sect = vec![0u8; client.section_bytes(&meta, &section)];
    client
        .read_section(&meta, "t", &section, &mut sect)
        .unwrap();
    assert_eq!(sect, data[..16]);

    system.shutdown(clients).unwrap();
}
