//! Per-array subchunk schemas (the paper's §2 future work, "explicitly
//! request sub-chunked schemas in memory and on disk").

mod common;

use common::*;
use panda_core::{build_server_plan, client_manifest, WriteSet};
use panda_schema::ElementType;

#[test]
fn override_changes_the_plan_but_not_the_files() {
    let base = make_array(
        "a",
        &[16, 16],
        ElementType::F64,
        &[2, 2],
        DiskSchema::Traditional(2),
    );
    let fine = base.clone().with_subchunk_bytes(64);
    assert_eq!(base.subchunk_override(), None);
    assert_eq!(fine.subchunk_override(), Some(64));
    assert_eq!(fine.effective_subchunk(1 << 20), 64);
    assert_eq!(base.effective_subchunk(1 << 20), 1 << 20);

    // Finer subchunks → more subchunks in the plan.
    let coarse_plan = build_server_plan(&base, 0, 2, 1 << 20);
    let fine_plan = build_server_plan(&fine, 0, 2, 1 << 20);
    assert!(fine_plan.subchunks().count() > coarse_plan.subchunks().count());
    // Manifests follow suit.
    assert!(
        client_manifest(&fine, 0, 2, 1 << 20).pieces > client_manifest(&base, 0, 2, 1 << 20).pieces
    );

    // But the files written are identical: the override is a transport
    // knob, not a layout change.
    let (sys_a, mut a_clients, a_mems) = launch_mem(4, 2, 1 << 20);
    collective_write(&mut a_clients, &base, "x");
    let (sys_b, mut b_clients, b_mems) = launch_mem(4, 2, 1 << 20);
    collective_write(&mut b_clients, &fine, "x");
    for i in 0..2 {
        assert_eq!(
            a_mems[i].contents(&format!("x.s{i}")).unwrap(),
            b_mems[i].contents(&format!("x.s{i}")).unwrap()
        );
    }
    // And the fine-grained array still reads back correctly.
    let bufs = collective_read(&mut b_clients, &fine, "x");
    assert_pattern(&fine, &bufs);
    sys_a.shutdown(a_clients).unwrap();
    sys_b.shutdown(b_clients).unwrap();
}

#[test]
fn mixed_overrides_in_one_group() {
    // Two arrays in one collective, one with a fine override: each
    // array uses its own cap.
    let coarse = make_array("c", &[8, 8], ElementType::F64, &[2, 2], DiskSchema::Natural);
    let fine = make_array("f", &[8, 8], ElementType::F64, &[2, 2], DiskSchema::Natural)
        .with_subchunk_bytes(32);
    let (system, mut clients, _mems) = launch_mem(4, 2, 1 << 20);
    let c_datas: Vec<Vec<u8>> = (0..4).map(|r| pattern_chunk(&coarse, r)).collect();
    let f_datas: Vec<Vec<u8>> = (0..4).map(|r| pattern_chunk(&fine, r)).collect();
    std::thread::scope(|s| {
        for (client, (dc, df)) in clients.iter_mut().zip(c_datas.iter().zip(&f_datas)) {
            let (coarse, fine) = (&coarse, &fine);
            s.spawn(move || {
                client
                    .write_set(&WriteSet::new().array(coarse, "c", dc.as_slice()).array(
                        fine,
                        "f",
                        df.as_slice(),
                    ))
                    .unwrap();
            });
        }
    });
    let c_bufs = collective_read(&mut clients, &coarse, "c");
    assert_pattern(&coarse, &c_bufs);
    let f_bufs = collective_read(&mut clients, &fine, "f");
    assert_pattern(&fine, &f_bufs);
    system.shutdown(clients).unwrap();
}
