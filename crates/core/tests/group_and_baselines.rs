//! Integration tests for array groups (timestep/checkpoint/restart) and
//! the baseline I/O strategies.

mod common;

use common::*;
use panda_core::baseline::naive::{naive_read, naive_write};
use panda_core::baseline::two_phase::{two_phase_read, two_phase_write};
use panda_core::{ArrayGroup, GroupData};
use panda_fs::FileSystem as _;
use panda_schema::ElementType;

/// The paper's Figure 2 scenario, miniaturized: three arrays (two f64,
/// one i32), timestep output in a loop, a checkpoint midway, restart.
#[test]
fn figure2_timestep_checkpoint_restart() {
    let temperature = make_array(
        "temperature",
        &[16, 16],
        ElementType::I32,
        &[2, 2],
        DiskSchema::Traditional(2),
    );
    let pressure = make_array(
        "pressure",
        &[16, 16],
        ElementType::F64,
        &[2, 2],
        DiskSchema::Traditional(2),
    );
    let density = make_array(
        "density",
        &[8, 8],
        ElementType::F64,
        &[2, 2],
        DiskSchema::Traditional(2),
    );

    let (system, mut clients, mems) = launch_mem(4, 2, 128);

    let build_group = || {
        let mut g = ArrayGroup::new("Sim2");
        g.include(temperature.clone())
            .include(pressure.clone())
            .include(density.clone());
        g
    };

    // Run 3 timesteps with a checkpoint after the second; then restart.
    let metas = [&temperature, &pressure, &density];
    std::thread::scope(|s| {
        for client in clients.iter_mut() {
            let build_group = &build_group;
            let metas = &metas;
            s.spawn(move || {
                let mut group = build_group();
                let rank = client.rank();
                let mut data = GroupData::zeroed(&group, rank);
                // Fill with the pattern (stands in for computation).
                for (i, meta) in metas.iter().enumerate() {
                    data.buffer_mut(i)
                        .copy_from_slice(&pattern_chunk(meta, rank));
                }
                for step in 0..3 {
                    group.timestep(client, &data.slices()).unwrap();
                    if step == 1 {
                        group.checkpoint(client, &data.slices()).unwrap();
                    }
                }
                assert_eq!(group.timesteps_taken(), 3);

                // Crash! ... restart from checkpoint into fresh buffers.
                let mut restored = GroupData::zeroed(&group, rank);
                group.restart(client, &mut restored.slices_mut()).unwrap();
                for i in 0..3 {
                    assert_eq!(restored.buffer(i), data.buffer(i), "array {i}");
                }

                // And timestep 0 can be read back for post-processing.
                let mut ts0 = GroupData::zeroed(&group, rank);
                group
                    .read_timestep(client, 0, &mut ts0.slices_mut())
                    .unwrap();
                assert_eq!(ts0.buffer(2), data.buffer(2));
            });
        }
    });

    // Each timestep produced its own files on each I/O node; the
    // checkpoint its own; 3 arrays x (3 timesteps + 1 checkpoint). The
    // checkpoint's generation marker lands on I/O node 0 only.
    for (i, fs) in mems.iter().enumerate() {
        assert_eq!(fs.list().len(), 3 * 4 + usize::from(i == 0));
    }
    assert!(mems[0].contents("Sim2/Sim2.ckpt").is_ok());
    // Traditional order holds per timestep file set.
    assert_eq!(
        concat_server_files(&mems, "Sim2/pressure.ts2"),
        pattern_full(&pressure)
    );
    system.shutdown(clients).unwrap();
}

#[test]
fn naive_baseline_writes_identical_files_with_seeks() {
    // Column-strip memory schema: each client's chunk maps to strided
    // runs (one per row) in the disk layout, with gaps between them.
    let meta = make_array(
        "t",
        &[16, 16],
        ElementType::F64,
        &[1, 4],
        DiskSchema::Traditional(2),
    );
    // Server-directed reference.
    let (sys_a, mut panda_clients, mems_panda) = launch_mem(4, 2, 128);
    collective_write(&mut panda_clients, &meta, "t");
    let panda_seeks: u64 = mems_panda.iter().map(|m| m.stats().seeks()).sum();
    assert_eq!(panda_seeks, 0);

    // Naive baseline on a fresh system.
    let (sys_b, mut naive_clients, mems_naive) = launch_mem(4, 2, 128);
    let datas: Vec<Vec<u8>> = (0..4).map(|r| pattern_chunk(&meta, r)).collect();
    std::thread::scope(|s| {
        for (client, data) in naive_clients.iter_mut().zip(&datas) {
            let meta = &meta;
            s.spawn(move || naive_write(client, meta, "t", data).unwrap());
        }
    });

    // Byte-identical files...
    for i in 0..2 {
        assert_eq!(
            mems_panda[i].contents(&format!("t.s{i}")).unwrap(),
            mems_naive[i].contents(&format!("t.s{i}")).unwrap()
        );
    }
    // ...but the naive access pattern seeks heavily.
    let naive_seeks: u64 = mems_naive.iter().map(|m| m.stats().seeks()).sum();
    assert!(
        naive_seeks > 0,
        "client-directed strided writes must produce seeks"
    );
    // And its requests are much smaller on average.
    let naive_writes: u64 = mems_naive.iter().map(|m| m.stats().writes()).sum();
    let panda_writes: u64 = mems_panda.iter().map(|m| m.stats().writes()).sum();
    assert!(naive_writes > panda_writes);

    sys_a.shutdown(panda_clients).unwrap();
    sys_b.shutdown(naive_clients).unwrap();
}

#[test]
fn naive_roundtrip_and_cross_compat_with_panda() {
    let meta = make_array(
        "t",
        &[12, 10],
        ElementType::I32,
        &[2, 2],
        DiskSchema::Traditional(3),
    );
    let (system, mut clients, _mems) = launch_mem(4, 3, 64);
    // Panda writes; naive reads the same files.
    collective_write(&mut clients, &meta, "t");
    let mut bufs: Vec<Vec<u8>> = (0..4).map(|r| vec![0; meta.client_bytes(r)]).collect();
    std::thread::scope(|s| {
        for (client, buf) in clients.iter_mut().zip(bufs.iter_mut()) {
            let meta = &meta;
            s.spawn(move || naive_read(client, meta, "t", buf).unwrap());
        }
    });
    assert_pattern(&meta, &bufs);

    // Naive writes under a different tag; Panda reads it back.
    let datas: Vec<Vec<u8>> = (0..4).map(|r| pattern_chunk(&meta, r)).collect();
    std::thread::scope(|s| {
        for (client, data) in clients.iter_mut().zip(&datas) {
            let meta = &meta;
            s.spawn(move || naive_write(client, meta, "t2", data).unwrap());
        }
    });
    let bufs = collective_read(&mut clients, &meta, "t2");
    assert_pattern(&meta, &bufs);
    system.shutdown(clients).unwrap();
}

#[test]
fn two_phase_baseline_roundtrip_and_equivalence() {
    let meta = make_array(
        "t",
        &[16, 12],
        ElementType::F64,
        &[2, 2],
        DiskSchema::Traditional(3),
    );
    let (sys_a, mut panda_clients, mems_panda) = launch_mem(4, 3, 128);
    collective_write(&mut panda_clients, &meta, "t");

    let (sys_b, mut tp_clients, mems_tp) = launch_mem(4, 3, 128);
    let datas: Vec<Vec<u8>> = (0..4).map(|r| pattern_chunk(&meta, r)).collect();
    std::thread::scope(|s| {
        for (client, data) in tp_clients.iter_mut().zip(&datas) {
            let meta = &meta;
            s.spawn(move || two_phase_write(client, meta, "t", data, 128).unwrap());
        }
    });
    for i in 0..3 {
        assert_eq!(
            mems_panda[i].contents(&format!("t.s{i}")).unwrap(),
            mems_tp[i].contents(&format!("t.s{i}")).unwrap(),
            "server {i}"
        );
    }

    // Two-phase read back.
    let mut bufs: Vec<Vec<u8>> = (0..4).map(|r| vec![0; meta.client_bytes(r)]).collect();
    std::thread::scope(|s| {
        for (client, buf) in tp_clients.iter_mut().zip(bufs.iter_mut()) {
            let meta = &meta;
            s.spawn(move || two_phase_read(client, meta, "t", buf, 128).unwrap());
        }
    });
    assert_pattern(&meta, &bufs);

    sys_a.shutdown(panda_clients).unwrap();
    sys_b.shutdown(tp_clients).unwrap();
}

#[test]
fn two_phase_seeks_less_than_naive() {
    // Disk layout deliberately hostile to the clients' traversal order:
    // column slabs while memory is row-dominant.
    let meta = make_array(
        "t",
        &[24, 24],
        ElementType::F64,
        &[4, 1],
        DiskSchema::Custom(
            vec![panda_schema::Dist::Star, panda_schema::Dist::Block],
            vec![4],
        ),
    );
    let datas: Vec<Vec<u8>> = (0..4).map(|r| pattern_chunk(&meta, r)).collect();

    let (sys_n, mut naive_clients, mems_naive) = launch_mem(4, 2, 256);
    std::thread::scope(|s| {
        for (client, data) in naive_clients.iter_mut().zip(&datas) {
            let meta = &meta;
            s.spawn(move || naive_write(client, meta, "t", data).unwrap());
        }
    });
    let (sys_t, mut tp_clients, mems_tp) = launch_mem(4, 2, 256);
    std::thread::scope(|s| {
        for (client, data) in tp_clients.iter_mut().zip(&datas) {
            let meta = &meta;
            s.spawn(move || two_phase_write(client, meta, "t", data, 256).unwrap());
        }
    });
    let naive_seeks: u64 = mems_naive.iter().map(|m| m.stats().seeks()).sum();
    let tp_seeks: u64 = mems_tp.iter().map(|m| m.stats().seeks()).sum();
    assert!(
        tp_seeks < naive_seeks,
        "two-phase ({tp_seeks} seeks) must beat naive ({naive_seeks} seeks)"
    );
    // Same bytes hit the disks either way.
    for i in 0..2 {
        assert_eq!(
            mems_naive[i].contents(&format!("t.s{i}")).unwrap(),
            mems_tp[i].contents(&format!("t.s{i}")).unwrap()
        );
    }
    sys_n.shutdown(naive_clients).unwrap();
    sys_t.shutdown(tp_clients).unwrap();
}
