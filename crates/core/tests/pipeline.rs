//! The pipelined transfer engine: any depth must produce exactly the
//! files and buffers of the unpipelined schedule — pipelining changes
//! *when* work overlaps, never *what* is written — and failures must
//! stay typed errors, not hangs.

mod common;

use std::sync::Arc;
use std::time::Duration;

use common::*;
use panda_core::{ArrayMeta, PandaConfig, PandaError, PandaSystem, ReadSet, WriteSet};
use panda_fs::{FileSystem, MemFs};
use panda_schema::{Dist, ElementType, Region};

/// Write the pattern at `depth`, returning each server's file plus the
/// buffers of a same-depth read-back.
fn roundtrip_at_depth(
    meta: &ArrayMeta,
    num_clients: usize,
    num_servers: usize,
    subchunk: usize,
    depth: usize,
) -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
    let mems: Vec<Arc<MemFs>> = (0..num_servers).map(|_| Arc::new(MemFs::new())).collect();
    let (system, mut clients) = launch_mem_over(&mems, num_clients, subchunk, depth);
    collective_write(&mut clients, meta, "t");
    let files: Vec<Vec<u8>> = (0..num_servers)
        .map(|s| mems[s].contents(&format!("t.s{s}")).unwrap_or_default())
        .collect();
    let bufs = collective_read(&mut clients, meta, "t");
    system.shutdown(clients).unwrap();
    (files, bufs)
}

#[test]
fn all_depths_write_byte_identical_files_memfs() {
    // Geometries covering natural chunking, reorganization, and uneven
    // division; small subchunk caps force many subchunks per chunk so
    // the window actually pipelines.
    let cases: Vec<(ArrayMeta, usize, usize, usize)> = vec![
        (
            make_array(
                "t",
                &[16, 16],
                ElementType::F64,
                &[2, 2],
                DiskSchema::Natural,
            ),
            4,
            2,
            256,
        ),
        (
            make_array(
                "t",
                &[16, 16],
                ElementType::F64,
                &[2, 2],
                DiskSchema::Traditional(2),
            ),
            4,
            2,
            256,
        ),
        (
            make_array(
                "t",
                &[12, 10],
                ElementType::F32,
                &[2, 2],
                DiskSchema::Traditional(3),
            ),
            4,
            3,
            128,
        ),
        (
            make_array(
                "t",
                &[8, 8],
                ElementType::F64,
                &[2, 2],
                DiskSchema::Custom(vec![Dist::Star, Dist::Block], vec![4]),
            ),
            4,
            2,
            64,
        ),
    ];
    for (meta, num_clients, num_servers, subchunk) in &cases {
        let (base_files, base_bufs) =
            roundtrip_at_depth(meta, *num_clients, *num_servers, *subchunk, 1);
        assert_pattern(meta, &base_bufs);
        for depth in [2usize, 3, 5] {
            let (files, bufs) =
                roundtrip_at_depth(meta, *num_clients, *num_servers, *subchunk, depth);
            assert_eq!(files, base_files, "depth {depth} files differ from depth 1");
            assert_pattern(meta, &bufs);
        }
    }
}

#[test]
fn depths_interoperate_on_the_same_files_localfs() {
    // Write with a pipelined system onto real files, read the same
    // files back with an unpipelined one (and vice versa): the on-disk
    // format is depth-independent.
    let root = std::env::temp_dir().join(format!("panda-pipeline-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let meta = make_array(
        "t",
        &[16, 16],
        ElementType::F64,
        &[2, 2],
        DiskSchema::Traditional(2),
    );
    let roots: Vec<_> = (0..2).map(|s| root.join(format!("ionode{s}"))).collect();
    let launch = |depth: usize| {
        let config = PandaConfig::new(4, 2)
            .with_subchunk_bytes(256)
            .with_pipeline_depth(depth);
        PandaSystem::builder()
            .config(config.clone())
            .launch(|s| Arc::new(panda_fs::LocalFs::new(&roots[s]).unwrap()) as Arc<dyn FileSystem>)
            .unwrap()
    };

    let (system, mut clients) = launch(3);
    collective_write(&mut clients, &meta, "t");
    system.shutdown(clients).unwrap();
    let pipelined_files: Vec<Vec<u8>> = (0..2)
        .map(|s| std::fs::read(roots[s].join(format!("t.s{s}"))).unwrap())
        .collect();

    let (system, mut clients) = launch(1);
    let bufs = collective_read(&mut clients, &meta, "t");
    assert_pattern(&meta, &bufs);
    collective_write(&mut clients, &meta, "t");
    system.shutdown(clients).unwrap();
    let plain_files: Vec<Vec<u8>> = (0..2)
        .map(|s| std::fs::read(roots[s].join(format!("t.s{s}"))).unwrap())
        .collect();
    assert_eq!(pipelined_files, plain_files);

    let (system, mut clients) = launch(2);
    let bufs = collective_read(&mut clients, &meta, "t");
    assert_pattern(&meta, &bufs);
    system.shutdown(clients).unwrap();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn pipelined_section_read_matches_unpipelined() {
    let meta = make_array(
        "t",
        &[16, 16],
        ElementType::F64,
        &[2, 2],
        DiskSchema::Traditional(2),
    );
    let section = Region::new(&[2, 3], &[13, 11]).unwrap();
    let mems: Vec<Arc<MemFs>> = (0..2).map(|_| Arc::new(MemFs::new())).collect();

    let (system, mut clients) = launch_mem_over(&mems, 4, 128, 1);
    collective_write(&mut clients, &meta, "t");
    let base = run_section_read(&mut clients, &meta, "t", &section);
    system.shutdown(clients).unwrap();

    let (system, mut clients) = launch_mem_over(&mems, 4, 128, 4);
    let piped = run_section_read(&mut clients, &meta, "t", &section);
    system.shutdown(clients).unwrap();
    assert_eq!(base, piped);
}

fn run_section_read(
    clients: &mut [panda_core::PandaClient],
    meta: &ArrayMeta,
    tag: &str,
    section: &Region,
) -> Vec<Vec<u8>> {
    let mut bufs: Vec<Vec<u8>> = clients
        .iter()
        .map(|c| vec![0u8; c.section_bytes(meta, section)])
        .collect();
    std::thread::scope(|s| {
        for (client, buf) in clients.iter_mut().zip(bufs.iter_mut()) {
            s.spawn(move || {
                client
                    .read_set(&mut ReadSet::new().section(
                        meta,
                        tag,
                        section.clone(),
                        buf.as_mut_slice(),
                    ))
                    .unwrap();
            });
        }
    });
    bufs
}

#[test]
fn pipelined_write_with_dead_client_is_a_typed_error_not_a_hang() {
    // Same failure injection as the unpipelined variant in
    // failure_paths.rs, but with a deep window: the servers have
    // several subchunks' fetches outstanding when the timeout fires,
    // and the disk-writer threads must be reaped, not abandoned.
    let meta = make_array("t", &[8, 8], ElementType::F64, &[2, 2], DiskSchema::Natural);
    let config = PandaConfig::new(4, 2)
        .with_recv_timeout(Duration::from_millis(300))
        .with_subchunk_bytes(64)
        .with_pipeline_depth(3);
    let (system, mut clients) = PandaSystem::builder()
        .config(config.clone())
        .launch(|_| Arc::new(MemFs::new()) as Arc<dyn FileSystem>)
        .unwrap();
    let datas: Vec<Vec<u8>> = (0..4).map(|r| pattern_chunk(&meta, r)).collect();

    let mut results: Vec<Result<(), PandaError>> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = clients
            .iter_mut()
            .zip(&datas)
            .enumerate()
            .filter(|(rank, _)| *rank != 3) // client 3 "crashed"
            .map(|(_, (client, data))| {
                let meta = &meta;
                s.spawn(move || {
                    client.write_set(&WriteSet::new().array(meta, "t", data.as_slice()))
                })
            })
            .collect();
        for h in handles {
            results.push(h.join().unwrap());
        }
    });
    assert!(results.iter().all(|r| r.is_err()));
    let err = system.shutdown(clients).map(|_| ()).unwrap_err();
    assert!(
        matches!(err, PandaError::Msg(_) | PandaError::Protocol { .. }),
        "got {err}"
    );
}

#[test]
fn multi_array_pipelined_roundtrip() {
    // Arrays are processed strictly in order even when each one is
    // internally pipelined; the per-array seq spaces must not bleed
    // into each other.
    let a = make_array(
        "a",
        &[16, 16],
        ElementType::F64,
        &[2, 2],
        DiskSchema::Natural,
    );
    let b = make_array(
        "b",
        &[12, 8],
        ElementType::F32,
        &[2, 2],
        DiskSchema::Traditional(2),
    );
    let mems: Vec<Arc<MemFs>> = (0..2).map(|_| Arc::new(MemFs::new())).collect();
    let (system, mut clients) = launch_mem_over(&mems, 4, 128, 3);
    let a_data: Vec<Vec<u8>> = (0..4).map(|r| pattern_chunk(&a, r)).collect();
    let b_data: Vec<Vec<u8>> = (0..4).map(|r| pattern_chunk(&b, r)).collect();
    std::thread::scope(|s| {
        for ((client, ad), bd) in clients.iter_mut().zip(&a_data).zip(&b_data) {
            let (a, b) = (&a, &b);
            s.spawn(move || {
                client
                    .write_set(&WriteSet::new().array(a, "a", ad.as_slice()).array(
                        b,
                        "b",
                        bd.as_slice(),
                    ))
                    .unwrap();
            });
        }
    });
    let mut a_bufs: Vec<Vec<u8>> = (0..4).map(|r| vec![0u8; a.client_bytes(r)]).collect();
    let mut b_bufs: Vec<Vec<u8>> = (0..4).map(|r| vec![0u8; b.client_bytes(r)]).collect();
    std::thread::scope(|s| {
        for ((client, ab), bb) in clients
            .iter_mut()
            .zip(a_bufs.iter_mut())
            .zip(b_bufs.iter_mut())
        {
            let (a, b) = (&a, &b);
            s.spawn(move || {
                client
                    .read_set(&mut ReadSet::new().array(a, "a", ab.as_mut_slice()).array(
                        b,
                        "b",
                        bb.as_mut_slice(),
                    ))
                    .unwrap();
            });
        }
    });
    assert_pattern(&a, &a_bufs);
    assert_pattern(&b, &b_bufs);
    system.shutdown(clients).unwrap();
}
