//! Paper-scale runs through the real threaded runtime: 32 compute
//! nodes, 8 I/O nodes, multi-megabyte arrays. These verify that the
//! protocol holds up at the paper's node counts (the figures' largest
//! configuration), not just at toy sizes.

mod common;

use common::*;
use panda_fs::FileSystem as _;
use panda_schema::ElementType;

/// 32 clients (4x4x2, the paper's mesh) and 8 servers, natural
/// chunking. 2 MB of f32 keeps the test fast while every node still
/// carries multiple subchunks at the 64 KB cap.
#[test]
fn paper_mesh_32x8_natural() {
    let meta = make_array(
        "t",
        &[32, 128, 128],
        ElementType::F32,
        &[4, 4, 2],
        DiskSchema::Natural,
    );
    assert_eq!(meta.total_bytes(), 2 << 20);
    let (system, mut clients, mems) = launch_mem(32, 8, 64 << 10);
    collective_write(&mut clients, &meta, "t");
    let bufs = collective_read(&mut clients, &meta, "t");
    assert_pattern(&meta, &bufs);
    for fs in &mems {
        assert_eq!(fs.stats().seeks(), 0);
    }
    system.shutdown(clients).unwrap();
}

/// Same mesh with the traditional-order disk schema: full
/// reorganization at scale, then a concatenation check.
#[test]
fn paper_mesh_32x8_traditional() {
    let meta = make_array(
        "t",
        &[32, 128, 128],
        ElementType::F32,
        &[4, 4, 2],
        DiskSchema::Traditional(8),
    );
    let (system, mut clients, mems) = launch_mem(32, 8, 64 << 10);
    collective_write(&mut clients, &meta, "t");
    assert_eq!(concat_server_files(&mems, "t"), pattern_full(&meta));
    let bufs = collective_read(&mut clients, &meta, "t");
    assert_pattern(&meta, &bufs);
    system.shutdown(clients).unwrap();
}

/// A sustained run: 10 timestep-style collectives back to back at the
/// paper mesh, all files independent and correct.
#[test]
fn sustained_timesteps_at_scale() {
    let meta = make_array(
        "t",
        &[16, 64, 64],
        ElementType::F32,
        &[4, 4, 2],
        DiskSchema::Natural,
    );
    let (system, mut clients, mems) = launch_mem(32, 8, 32 << 10);
    for step in 0..10 {
        collective_write(&mut clients, &meta, &format!("t.ts{step}"));
    }
    // All 10 timesteps exist on every server and read back correctly.
    for fs in &mems {
        assert_eq!(fs.list().len(), 10);
    }
    let bufs = collective_read(&mut clients, &meta, "t.ts7");
    assert_pattern(&meta, &bufs);
    system.shutdown(clients).unwrap();
}
