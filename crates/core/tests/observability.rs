//! The unified observability layer, end to end: a `TimelineRecorder`
//! attached through `PandaConfig::with_recorder` must see every layer
//! (messages, disk calls, collective phases) of a real MemFs + inproc
//! run, the aggregated report must be internally consistent, and a
//! recorded run must write byte-identical files to an unrecorded one.

mod common;

use std::sync::Arc;

use common::*;
use panda_core::{PandaClient, PandaConfig, PandaSystem};
use panda_fs::{FileSystem, MemFs};
use panda_obs::{EventKind, Phase, Recorder, TimelineRecorder, REPORT_SCHEMA};
use panda_schema::ElementType;

const CLIENTS: usize = 4;
const SERVERS: usize = 2;

/// Launch over existing MemFs backends with a recorder attached.
fn launch_recorded(
    mems: &[Arc<MemFs>],
    depth: usize,
    recorder: Arc<dyn Recorder>,
) -> (PandaSystem, Vec<PandaClient>) {
    let handles: Vec<Arc<MemFs>> = mems.to_vec();
    let config = PandaConfig::new(CLIENTS, mems.len())
        .with_subchunk_bytes(256)
        .with_pipeline_depth(depth)
        .with_recv_timeout(std::time::Duration::from_secs(20))
        .with_recorder(recorder);
    PandaSystem::builder()
        .config(config.clone())
        .launch(move |s| Arc::clone(&handles[s]) as Arc<dyn FileSystem>)
        .unwrap()
}

#[test]
fn timeline_round_trip_memfs_inproc() {
    let meta = make_array(
        "t",
        &[16, 16],
        ElementType::F64,
        &[2, 2],
        DiskSchema::Traditional(SERVERS),
    );
    let rec = Arc::new(TimelineRecorder::with_capacity(4096));
    let mems: Vec<Arc<MemFs>> = (0..SERVERS).map(|_| Arc::new(MemFs::new())).collect();
    let (system, mut clients) = launch_recorded(&mems, 2, rec.clone());
    collective_write(&mut clients, &meta, "t");
    let bufs = collective_read(&mut clients, &meta, "t");
    assert_pattern(&meta, &bufs);

    let report = system.report();
    system.shutdown(clients).unwrap();

    // Every layer reported: collective phases from core, disk calls
    // from fs, messages from msg.
    let events = rec.timeline().expect("timeline recorder keeps events");
    assert!(!events.is_empty());
    let count = |k: EventKind| events.iter().filter(|e| e.kind == k).count();
    assert!(count(EventKind::RequestIssued) >= 2 * SERVERS); // write + read
    assert!(count(EventKind::SubchunkPlanned) > 0);
    assert!(count(EventKind::FetchReplied) > 0);
    assert!(count(EventKind::DiskWriteDone) > 0);
    assert!(count(EventKind::DiskReadDone) > 0);
    assert!(count(EventKind::PushSent) > 0);
    assert!(count(EventKind::MsgSent) > 0);
    assert!(count(EventKind::MsgReceived) > 0);
    assert!(count(EventKind::FsWrite) > 0);
    // One CollectiveDone per client per collective, plus the servers'.
    assert!(count(EventKind::CollectiveDone) >= 2 * CLIENTS + 2 * SERVERS);

    // Paired events: every disk-written subchunk was planned first, and
    // its fetches were answered, under the same key.
    for e in events.iter().filter(|e| e.kind == EventKind::DiskWriteDone) {
        let key = e.key.expect("disk writes carry a subchunk key");
        assert_eq!(key.server as usize + CLIENTS, e.node as usize);
        let planned = events
            .iter()
            .any(|p| p.kind == EventKind::SubchunkPlanned && p.key == Some(key));
        assert!(planned, "unplanned subchunk written: {key:?}");
        let replied = events
            .iter()
            .any(|p| p.kind == EventKind::FetchReplied && p.key == Some(key));
        assert!(replied, "subchunk written without any fetch: {key:?}");
    }

    // Node ranks follow the fabric convention: clients 0..C, servers
    // C..C+S, nothing else.
    assert!(events.iter().all(|e| (e.node as usize) < CLIENTS + SERVERS));
    assert!(events
        .iter()
        .filter(|e| e.kind == EventKind::ClientPacked)
        .all(|e| (e.node as usize) < CLIENTS));

    // The report is consistent: wall covers every per-subchunk phase,
    // phase totals match the counters, and the JSON validates.
    assert!(report.wall_s > 0.0);
    assert!(!report.per_subchunk.is_empty());
    for s in &report.per_subchunk {
        assert!(s.exchange_s >= 0.0 && s.exchange_s <= report.wall_s);
        assert!(s.disk_s >= 0.0 && s.disk_s <= report.wall_s);
        assert!(s.reorg_s >= 0.0 && s.reorg_s <= report.wall_s);
        assert!(s.bytes > 0, "subchunk {:?} has no size", s.key);
    }
    assert!(report.phases.get(Phase::Disk) > 0.0);
    let per_node_disk: f64 = report
        .per_node
        .iter()
        .map(|n| n.phases.get(Phase::Disk))
        .sum();
    assert!((per_node_disk - report.phases.get(Phase::Disk)).abs() < 1e-9);
    assert_eq!(report.dropped_events, 0);
    let doc = report.to_json();
    panda_obs::json::validate(&doc).unwrap();
    assert!(doc.contains(REPORT_SCHEMA));

    // The Chrome trace export is valid JSON too.
    panda_obs::json::validate(&rec.to_chrome_trace()).unwrap();
}

/// Regression: a *single-array* read at depth ≥ 2 must run through the
/// engine's pinned disk stage like any group — the old per-array read
/// path streamed the file inline and never prefetched, so no
/// `DiskReadQueued` events appeared for one-array reads.
#[test]
fn single_array_read_at_depth_3_prefetches() {
    let meta = make_array(
        "solo",
        &[16, 16],
        ElementType::F64,
        &[2, 2],
        DiskSchema::Traditional(SERVERS),
    );
    let rec = Arc::new(TimelineRecorder::with_capacity(4096));
    let mems: Vec<Arc<MemFs>> = (0..SERVERS).map(|_| Arc::new(MemFs::new())).collect();
    let (system, mut clients) = launch_recorded(&mems, 3, rec.clone());
    collective_write(&mut clients, &meta, "solo");
    let bufs = collective_read(&mut clients, &meta, "solo");
    assert_pattern(&meta, &bufs);
    system.shutdown(clients).unwrap();

    let events = rec.timeline().expect("timeline recorder keeps events");
    let queued: Vec<_> = events
        .iter()
        .filter(|e| e.kind == EventKind::DiskReadQueued)
        .collect();
    assert!(
        !queued.is_empty(),
        "one-array read at depth 3 bypassed the prefetcher"
    );
    // Every prefetched subchunk was read off disk first, under the same
    // key and on the owning server's rank.
    for q in &queued {
        let key = q.key.expect("prefetches carry a subchunk key");
        assert_eq!(key.server as usize + CLIENTS, q.node as usize);
        assert!(events
            .iter()
            .any(|e| e.kind == EventKind::DiskReadDone && e.key == Some(key)));
    }
    // The whole file went through the prefetcher: one queue event per
    // planned read subchunk, several per server at a 256-byte subchunk.
    assert_eq!(
        queued.len(),
        events
            .iter()
            .filter(|e| e.kind == EventKind::DiskReadDone)
            .count()
    );
    assert!(queued.len() >= 2 * SERVERS);
    // And the read direction reorganized on the pool.
    assert!(events.iter().any(|e| e.kind == EventKind::ReorgWorker));
}

#[test]
fn null_recorder_runs_write_identical_files_to_recorded_runs() {
    let meta = make_array(
        "t",
        &[12, 10],
        ElementType::F32,
        &[2, 2],
        DiskSchema::Traditional(SERVERS),
    );
    let run = |recorder: Option<Arc<TimelineRecorder>>| -> Vec<Vec<u8>> {
        let mems: Vec<Arc<MemFs>> = (0..SERVERS).map(|_| Arc::new(MemFs::new())).collect();
        let (system, mut clients) = match recorder {
            Some(rec) => launch_recorded(&mems, 3, rec),
            None => launch_mem_over(&mems, CLIENTS, 256, 3),
        };
        collective_write(&mut clients, &meta, "t");
        let bufs = collective_read(&mut clients, &meta, "t");
        assert_pattern(&meta, &bufs);
        system.shutdown(clients).unwrap();
        (0..SERVERS)
            .map(|s| mems[s].contents(&format!("t.s{s}")).unwrap())
            .collect()
    };
    let plain = run(None);
    let rec = Arc::new(TimelineRecorder::new());
    let recorded = run(Some(rec.clone()));
    assert_eq!(plain, recorded, "recording changed the bytes on disk");
    assert!(rec.timeline().is_some_and(|t| !t.is_empty()));
}
