//! End-to-end collective I/O tests over the threaded runtime.

use panda_fs::FileSystem as _;

mod common;

use common::*;
use panda_core::{ReadSet, WriteSet};
use panda_schema::{Dist, ElementType};

#[test]
fn natural_chunking_roundtrip() {
    // Paper-style: memory schema == disk schema, 4 clients, 2 servers.
    let meta = make_array(
        "t",
        &[16, 16],
        ElementType::F64,
        &[2, 2],
        DiskSchema::Natural,
    );
    let (system, mut clients, _mems) = launch_mem(4, 2, 1 << 20);
    collective_write(&mut clients, &meta, "t");
    let bufs = collective_read(&mut clients, &meta, "t");
    assert_pattern(&meta, &bufs);
    system.shutdown(clients).unwrap();
}

#[test]
fn traditional_order_concatenates_to_row_major() {
    // BLOCK,*,* disk schema: "the data can be migrated to a sequential
    // machine with the array in a single file in traditional order by
    // simply concatenating all the files on the i/o nodes together."
    let meta = make_array(
        "t",
        &[8, 6, 4],
        ElementType::F64,
        &[2, 2, 2],
        DiskSchema::Traditional(3),
    );
    let (system, mut clients, mems) = launch_mem(8, 3, 256);
    collective_write(&mut clients, &meta, "t");
    assert_eq!(concat_server_files(&mems, "t"), pattern_full(&meta));
    // And it reads back.
    let bufs = collective_read(&mut clients, &meta, "t");
    assert_pattern(&meta, &bufs);
    system.shutdown(clients).unwrap();
}

#[test]
fn reorganization_between_arbitrary_schemas() {
    // Memory 2x2 blocks; disk column-slabs over a 3-node mesh that does
    // not divide anything evenly.
    let meta = make_array(
        "p",
        &[10, 9],
        ElementType::I32,
        &[2, 2],
        DiskSchema::Custom(vec![Dist::Star, Dist::Block], vec![3]),
    );
    let (system, mut clients, _mems) = launch_mem(4, 2, 64);
    collective_write(&mut clients, &meta, "p");
    let bufs = collective_read(&mut clients, &meta, "p");
    assert_pattern(&meta, &bufs);
    system.shutdown(clients).unwrap();
}

#[test]
fn more_servers_than_chunks() {
    // 2 disk chunks, 4 servers: servers 2 and 3 have empty plans.
    let meta = make_array(
        "t",
        &[8, 8],
        ElementType::F64,
        &[2, 1],
        DiskSchema::Traditional(2),
    );
    let (system, mut clients, _mems) = launch_mem(2, 4, 1 << 20);
    collective_write(&mut clients, &meta, "t");
    let bufs = collective_read(&mut clients, &meta, "t");
    assert_pattern(&meta, &bufs);
    system.shutdown(clients).unwrap();
}

#[test]
fn uneven_block_distribution() {
    // 7x5 over a 3x2 mesh: short trailing blocks everywhere; 3 servers.
    let meta = make_array("u", &[7, 5], ElementType::U8, &[3, 2], DiskSchema::Natural);
    let (system, mut clients, _mems) = launch_mem(6, 3, 8);
    collective_write(&mut clients, &meta, "u");
    let bufs = collective_read(&mut clients, &meta, "u");
    assert_pattern(&meta, &bufs);
    system.shutdown(clients).unwrap();
}

#[test]
fn single_element_array() {
    let meta = make_array("s", &[1], ElementType::F64, &[1], DiskSchema::Natural);
    let (system, mut clients, _mems) = launch_mem(1, 1, 1 << 20);
    collective_write(&mut clients, &meta, "s");
    let bufs = collective_read(&mut clients, &meta, "s");
    assert_pattern(&meta, &bufs);
    system.shutdown(clients).unwrap();
}

#[test]
fn one_dimensional_array_many_nodes() {
    let meta = make_array(
        "v",
        &[1000],
        ElementType::F32,
        &[5],
        DiskSchema::Traditional(3),
    );
    let (system, mut clients, mems) = launch_mem(5, 3, 128);
    collective_write(&mut clients, &meta, "v");
    assert_eq!(concat_server_files(&mems, "v"), pattern_full(&meta));
    let bufs = collective_read(&mut clients, &meta, "v");
    assert_pattern(&meta, &bufs);
    system.shutdown(clients).unwrap();
}

#[test]
fn subchunking_matches_unsubchunked_result() {
    // Same array written with a tiny cap and a huge cap must produce
    // identical files — subchunking "does not change the memory schema,
    // disk schema, or round-robin assignment of chunks in any way".
    let meta = make_array(
        "w",
        &[12, 10],
        ElementType::F64,
        &[2, 2],
        DiskSchema::Traditional(2),
    );
    let (sys_small, mut small, mems_small) = launch_mem(4, 2, 32);
    collective_write(&mut small, &meta, "w");
    let (sys_big, mut big, mems_big) = launch_mem(4, 2, 1 << 20);
    collective_write(&mut big, &meta, "w");
    for i in 0..2 {
        assert_eq!(
            mems_small[i].contents(&format!("w.s{i}")).unwrap(),
            mems_big[i].contents(&format!("w.s{i}")).unwrap(),
            "server {i} file differs"
        );
    }
    sys_small.shutdown(small).unwrap();
    sys_big.shutdown(big).unwrap();
}

#[test]
fn multiple_arrays_in_one_collective() {
    let a = make_array("a", &[8, 8], ElementType::F64, &[2, 2], DiskSchema::Natural);
    let b = make_array(
        "b",
        &[6, 6],
        ElementType::I32,
        &[2, 2],
        DiskSchema::Traditional(2),
    );
    let (system, mut clients, mems) = launch_mem(4, 2, 64);
    let a_datas: Vec<Vec<u8>> = (0..4).map(|r| pattern_chunk(&a, r)).collect();
    let b_datas: Vec<Vec<u8>> = (0..4).map(|r| pattern_chunk(&b, r)).collect();
    std::thread::scope(|s| {
        for (client, (da, db)) in clients.iter_mut().zip(a_datas.iter().zip(&b_datas)) {
            let (a, b) = (&a, &b);
            s.spawn(move || {
                client
                    .write_set(&WriteSet::new().array(a, "a", da.as_slice()).array(
                        b,
                        "b",
                        db.as_slice(),
                    ))
                    .unwrap();
            });
        }
    });
    assert_eq!(concat_server_files(&mems, "b"), pattern_full(&b));
    // Read both back in one collective.
    let mut a_bufs: Vec<Vec<u8>> = (0..4).map(|r| vec![0; a.client_bytes(r)]).collect();
    let mut b_bufs: Vec<Vec<u8>> = (0..4).map(|r| vec![0; b.client_bytes(r)]).collect();
    std::thread::scope(|s| {
        for ((client, ba), bb) in clients
            .iter_mut()
            .zip(a_bufs.iter_mut())
            .zip(b_bufs.iter_mut())
        {
            let (a, b) = (&a, &b);
            s.spawn(move || {
                client
                    .read_set(&mut ReadSet::new().array(a, "a", ba.as_mut_slice()).array(
                        b,
                        "b",
                        bb.as_mut_slice(),
                    ))
                    .unwrap();
            });
        }
    });
    assert_pattern(&a, &a_bufs);
    assert_pattern(&b, &b_bufs);
    system.shutdown(clients).unwrap();
}

#[test]
fn server_directed_io_is_fully_sequential() {
    // The core claim: collective writes and reads produce zero seeks on
    // every I/O node.
    let meta = make_array(
        "t",
        &[16, 12],
        ElementType::F64,
        &[2, 2],
        DiskSchema::Traditional(3),
    );
    let (system, mut clients, mems) = launch_mem(4, 3, 128);
    collective_write(&mut clients, &meta, "t");
    for fs in &mems {
        assert_eq!(fs.stats().seeks(), 0, "write path must not seek");
        assert!(fs.stats().writes() > 0);
    }
    let _ = collective_read(&mut clients, &meta, "t");
    for fs in &mems {
        assert_eq!(fs.stats().seeks(), 0, "read path must not seek");
    }
    system.shutdown(clients).unwrap();
}

#[test]
fn back_to_back_collectives_reuse_the_system() {
    let meta = make_array("t", &[8, 8], ElementType::F64, &[2, 2], DiskSchema::Natural);
    let (system, mut clients, _mems) = launch_mem(4, 2, 1 << 20);
    for i in 0..5 {
        let tag = format!("t{i}");
        collective_write(&mut clients, &meta, &tag);
        let bufs = collective_read(&mut clients, &meta, &tag);
        assert_pattern(&meta, &bufs);
    }
    system.shutdown(clients).unwrap();
}

#[test]
fn wrong_buffer_size_is_rejected() {
    let meta = make_array("t", &[8, 8], ElementType::F64, &[2, 2], DiskSchema::Natural);
    let (system, mut clients, _mems) = launch_mem(4, 1, 1 << 20);
    let bad = vec![0u8; 3];
    let err = clients[1]
        .write_set(&WriteSet::new().array(&meta, "t", bad.as_slice()))
        .unwrap_err();
    assert!(matches!(
        err,
        panda_core::PandaError::BadClientBuffer { .. }
    ));
    system.shutdown(clients).unwrap();
}

#[test]
fn local_fs_end_to_end() {
    use panda_core::{PandaConfig, PandaSystem};
    use panda_fs::{FileSystem, LocalFs};
    use std::sync::Arc;

    let root = std::env::temp_dir().join(format!("panda-core-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let meta = make_array(
        "t",
        &[16, 16],
        ElementType::F64,
        &[2, 2],
        DiskSchema::Traditional(2),
    );
    let roots: Vec<_> = (0..2).map(|s| root.join(format!("ionode{s}"))).collect();
    let config = PandaConfig::new(4, 2).with_subchunk_bytes(256);
    let (system, mut clients) = PandaSystem::builder()
        .config(config.clone())
        .launch(|s| Arc::new(LocalFs::new(&roots[s]).unwrap()) as Arc<dyn FileSystem>)
        .unwrap();
    collective_write(&mut clients, &meta, "t");
    // Concatenate the real files on disk: must be the row-major array.
    let mut cat = Vec::new();
    for (s, r) in roots.iter().enumerate() {
        cat.extend(std::fs::read(r.join(format!("t.s{s}"))).unwrap());
    }
    assert_eq!(cat, pattern_full(&meta));
    let bufs = collective_read(&mut clients, &meta, "t");
    assert_pattern(&meta, &bufs);
    system.shutdown(clients).unwrap();
    let _ = std::fs::remove_dir_all(&root);
}
