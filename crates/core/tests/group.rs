//! Group-concurrent collectives: a batched multi-array request must
//! produce byte-identical files to one collective per array, at every
//! pipeline depth and on both MemFs and LocalFs; the scheduler must
//! advertise itself through `GroupSubmit`/`ReorgWorker` events; and
//! `restart` must refuse a group whose generation marker never landed.

mod common;

use std::sync::Arc;

use common::*;
use panda_core::{
    ArrayGroup, ArrayMeta, PandaClient, PandaConfig, PandaError, PandaSystem, ReadSet, WriteSet,
};
use panda_fs::{FileSystem, MemFs, SubmitFs, SyncPolicy};
use panda_obs::{EventKind, Recorder, TimelineRecorder};
use panda_schema::ElementType;

const CLIENTS: usize = 4;
const SERVERS: usize = 2;

fn test_arrays() -> Vec<ArrayMeta> {
    vec![
        make_array(
            "temperature",
            &[16, 16],
            ElementType::F64,
            &[2, 2],
            DiskSchema::Traditional(SERVERS),
        ),
        make_array(
            "pressure",
            &[16, 16],
            ElementType::F32,
            &[2, 2],
            DiskSchema::Traditional(SERVERS),
        ),
        make_array(
            "density",
            &[12, 10],
            ElementType::I32,
            &[2, 2],
            DiskSchema::Natural,
        ),
        make_array(
            "energy",
            &[8, 8, 4],
            ElementType::F64,
            &[2, 2, 1],
            DiskSchema::Traditional(SERVERS),
        ),
    ]
}

/// One batched collective covering every array (the group-concurrent
/// path at depth ≥ 2).
fn concurrent_write(clients: &mut [PandaClient], metas: &[ArrayMeta], tags: &[String]) {
    let datas: Vec<Vec<Vec<u8>>> = (0..clients.len())
        .map(|r| metas.iter().map(|m| pattern_chunk(m, r)).collect())
        .collect();
    std::thread::scope(|s| {
        for (client, per_array) in clients.iter_mut().zip(&datas) {
            s.spawn(move || {
                let mut set = WriteSet::new();
                for ((m, t), d) in metas.iter().zip(tags).zip(per_array) {
                    set = set.array(m, t.as_str(), d.as_slice());
                }
                client.write_set(&set).unwrap();
            });
        }
    });
}

/// One collective per array, strictly in sequence.
fn sequential_write(clients: &mut [PandaClient], metas: &[ArrayMeta], tags: &[String]) {
    for (meta, tag) in metas.iter().zip(tags) {
        collective_write(clients, meta, tag);
    }
}

/// One batched collective read of every array; asserts the pattern.
fn concurrent_read_check(clients: &mut [PandaClient], metas: &[ArrayMeta], tags: &[String]) {
    let mut bufs: Vec<Vec<Vec<u8>>> = (0..clients.len())
        .map(|r| metas.iter().map(|m| vec![0u8; m.client_bytes(r)]).collect())
        .collect();
    std::thread::scope(|s| {
        for (client, per_array) in clients.iter_mut().zip(bufs.iter_mut()) {
            s.spawn(move || {
                let mut set = ReadSet::new();
                for ((m, t), b) in metas.iter().zip(tags).zip(per_array.iter_mut()) {
                    set = set.array(m, t.as_str(), b.as_mut_slice());
                }
                client.read_set(&mut set).unwrap();
            });
        }
    });
    for (r, per_array) in bufs.iter().enumerate() {
        for (m, buf) in metas.iter().zip(per_array) {
            assert_eq!(buf, &pattern_chunk(m, r), "client {r} array {}", m.name());
        }
    }
}

fn file_snapshot(mems: &[Arc<MemFs>], tags: &[String]) -> Vec<Vec<u8>> {
    tags.iter()
        .flat_map(|t| {
            mems.iter()
                .enumerate()
                .map(move |(i, fs)| fs.contents(&format!("{t}.s{i}")).unwrap())
        })
        .collect()
}

#[test]
fn concurrent_group_write_matches_sequential_memfs() {
    let metas = test_arrays();
    let tags: Vec<String> = metas.iter().map(|m| format!("g/{}", m.name())).collect();
    // Reference: one collective per array, unpipelined.
    let mems_seq: Vec<Arc<MemFs>> = (0..SERVERS).map(|_| Arc::new(MemFs::new())).collect();
    let (system, mut clients) = launch_mem_over(&mems_seq, CLIENTS, 256, 1);
    sequential_write(&mut clients, &metas, &tags);
    system.shutdown(clients).unwrap();
    let reference = file_snapshot(&mems_seq, &tags);

    for depth in [2, 3, 5] {
        let mems: Vec<Arc<MemFs>> = (0..SERVERS).map(|_| Arc::new(MemFs::new())).collect();
        let (system, mut clients) = launch_mem_over(&mems, CLIENTS, 256, depth);
        concurrent_write(&mut clients, &metas, &tags);
        assert_eq!(
            file_snapshot(&mems, &tags),
            reference,
            "group-concurrent depth {depth} changed bytes on disk"
        );
        // And the batched read path returns the same data.
        concurrent_read_check(&mut clients, &metas, &tags);
        // Each server's file is still written strictly sequentially.
        for fs in &mems {
            assert_eq!(fs.stats().seeks(), 0, "depth {depth} introduced seeks");
        }
        system.shutdown(clients).unwrap();
    }
}

#[test]
fn concurrent_group_write_matches_sequential_localfs() {
    let root = std::env::temp_dir().join(format!("panda-group-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let metas = test_arrays();
    let tags: Vec<String> = metas.iter().map(|m| m.name().to_string()).collect();
    let launch = |sub: &str, depth: usize| {
        let roots: Vec<_> = (0..SERVERS)
            .map(|s| root.join(sub).join(format!("ionode{s}")))
            .collect();
        let config = PandaConfig::new(CLIENTS, SERVERS)
            .with_subchunk_bytes(256)
            .with_pipeline_depth(depth);
        PandaSystem::builder()
            .config(config.clone())
            .launch(move |s| {
                Arc::new(panda_fs::LocalFs::new(&roots[s]).unwrap()) as Arc<dyn FileSystem>
            })
            .unwrap()
    };
    let read_files = |sub: &str| -> Vec<Vec<u8>> {
        let root = &root;
        tags.iter()
            .flat_map(|t| {
                (0..SERVERS).map(move |s| {
                    std::fs::read(root.join(sub).join(format!("ionode{s}/{t}.s{s}"))).unwrap()
                })
            })
            .collect()
    };

    let (system, mut clients) = launch("seq", 1);
    sequential_write(&mut clients, &metas, &tags);
    system.shutdown(clients).unwrap();

    let (system, mut clients) = launch("conc", 4);
    concurrent_write(&mut clients, &metas, &tags);
    concurrent_read_check(&mut clients, &metas, &tags);
    system.shutdown(clients).unwrap();

    assert_eq!(read_files("seq"), read_files("conc"));
    let _ = std::fs::remove_dir_all(&root);
}

/// FNV-1a 64 over a byte slice (inline — the workspace takes no
/// checksum dependency).
fn fnv1a64(data: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Seed-compat goldens: per-file `(length, fnv1a64)` of every
/// [`test_arrays`] file, captured from the pre-refactor engine at
/// depth 1 (subchunk 256, 4 clients, 2 servers, `pattern_chunk` data)
/// before the unified executor replaced the per-path code. Any depth of
/// the unified engine must still produce exactly these bytes.
const SEED_GOLDEN: [(&str, [(usize, u64); SERVERS]); 4] = [
    (
        "temperature",
        [(1024, 0x0ae8dfa13e06f399), (1024, 0x2e698ae34a3081f1)],
    ),
    (
        "pressure",
        [(512, 0x95b7634de4a87ea0), (512, 0x42c3c20b3a9e49c4)],
    ),
    (
        "density",
        [(240, 0xa4dc6dabe9147792), (240, 0x6397d331ef4aec63)],
    ),
    (
        "energy",
        [(1024, 0x0ae8dfa13e06f399), (1024, 0x2e698ae34a3081f1)],
    ),
];

fn assert_seed_golden(depth: usize, read: impl Fn(&str, usize) -> Vec<u8>) {
    for (name, per_server) in SEED_GOLDEN {
        for (s, (len, sum)) in per_server.iter().enumerate() {
            let bytes = read(name, s);
            assert_eq!(
                bytes.len(),
                *len,
                "depth {depth}: {name}.s{s} length diverged from the seed"
            );
            assert_eq!(
                fnv1a64(&bytes),
                *sum,
                "depth {depth}: {name}.s{s} bytes diverged from the seed"
            );
        }
    }
}

#[test]
fn unified_engine_matches_seed_golden_checksums_memfs() {
    let metas = test_arrays();
    let tags: Vec<String> = metas.iter().map(|m| m.name().to_string()).collect();
    for depth in [1, 2, 4] {
        let mems: Vec<Arc<MemFs>> = (0..SERVERS).map(|_| Arc::new(MemFs::new())).collect();
        let (system, mut clients) = launch_mem_over(&mems, CLIENTS, 256, depth);
        concurrent_write(&mut clients, &metas, &tags);
        system.shutdown(clients).unwrap();
        assert_seed_golden(depth, |name, s| {
            mems[s].contents(&format!("{name}.s{s}")).unwrap()
        });
    }
}

#[test]
fn unified_engine_matches_seed_golden_checksums_localfs() {
    let root = std::env::temp_dir().join(format!("panda-golden-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let metas = test_arrays();
    let tags: Vec<String> = metas.iter().map(|m| m.name().to_string()).collect();
    for depth in [1, 4] {
        let roots: Vec<_> = (0..SERVERS)
            .map(|s| root.join(format!("d{depth}/ionode{s}")))
            .collect();
        let launch_roots = roots.clone();
        let config = PandaConfig::new(CLIENTS, SERVERS)
            .with_subchunk_bytes(256)
            .with_pipeline_depth(depth);
        let (system, mut clients) = PandaSystem::builder()
            .config(config.clone())
            .launch(move |s| {
                Arc::new(panda_fs::LocalFs::new(&launch_roots[s]).unwrap()) as Arc<dyn FileSystem>
            })
            .unwrap();
        concurrent_write(&mut clients, &metas, &tags);
        system.shutdown(clients).unwrap();
        assert_seed_golden(depth, |name, s| {
            std::fs::read(roots[s].join(format!("{name}.s{s}"))).unwrap()
        });
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn unified_engine_matches_seed_golden_checksums_submitfs() {
    let root = std::env::temp_dir().join(format!("panda-golden-submit-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let metas = test_arrays();
    let tags: Vec<String> = metas.iter().map(|m| m.name().to_string()).collect();
    // Each depth pairs with a different sync policy and completion
    // thread count; the asynchronous disk stage must still land the
    // exact seed bytes, and the read path must see them afterwards.
    for (depth, threads, policy) in [
        (1, 1, SyncPolicy::PerWrite),
        (2, 2, SyncPolicy::PerFile),
        (4, 3, SyncPolicy::PerCollective),
    ] {
        let roots: Vec<_> = (0..SERVERS)
            .map(|s| root.join(format!("d{depth}/ionode{s}")))
            .collect();
        let launch_roots = roots.clone();
        let config = PandaConfig::new(CLIENTS, SERVERS)
            .with_subchunk_bytes(256)
            .with_pipeline_depth(depth)
            .with_sync_policy(policy)
            .with_disk_completion_threads(threads);
        let (system, mut clients) = PandaSystem::builder()
            .config(config.clone())
            .launch(move |s| {
                Arc::new(SubmitFs::new(&launch_roots[s], threads).unwrap()) as Arc<dyn FileSystem>
            })
            .unwrap();
        concurrent_write(&mut clients, &metas, &tags);
        concurrent_read_check(&mut clients, &metas, &tags);
        system.shutdown(clients).unwrap();
        assert_seed_golden(depth, |name, s| {
            std::fs::read(roots[s].join(format!("{name}.s{s}"))).unwrap()
        });
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn sync_policy_controls_barrier_count() {
    let metas = test_arrays();
    let tags: Vec<String> = metas.iter().map(|m| m.name().to_string()).collect();
    let files_per_server = metas.len();
    let count_syncs = |policy: SyncPolicy, depth: usize| -> usize {
        let rec = Arc::new(TimelineRecorder::with_capacity(1 << 16));
        let mems: Vec<Arc<MemFs>> = (0..SERVERS).map(|_| Arc::new(MemFs::new())).collect();
        let handles = mems.clone();
        let config = PandaConfig::new(CLIENTS, SERVERS)
            .with_subchunk_bytes(256)
            .with_pipeline_depth(depth)
            .with_sync_policy(policy)
            .with_recorder(rec.clone() as Arc<dyn Recorder>);
        let (system, mut clients) = PandaSystem::builder()
            .config(config.clone())
            .launch(move |s| Arc::clone(&handles[s]) as Arc<dyn FileSystem>)
            .unwrap();
        concurrent_write(&mut clients, &metas, &tags);
        system.shutdown(clients).unwrap();
        let events = rec.timeline().expect("timeline recorder keeps events");
        events
            .iter()
            .filter(|e| e.kind == EventKind::DiskSyncDone)
            .count()
    };

    // One barrier per server covers the whole collective.
    assert_eq!(count_syncs(SyncPolicy::PerCollective, 4), SERVERS);
    // One barrier per file.
    assert_eq!(
        count_syncs(SyncPolicy::PerFile, 4),
        SERVERS * files_per_server
    );
    // Paper semantics: every write syncs, which is strictly more
    // barriers than one per file (each file spans several subchunks).
    assert!(count_syncs(SyncPolicy::PerWrite, 1) > SERVERS * files_per_server);
}

#[test]
fn group_scheduler_reports_itself() {
    let metas = test_arrays();
    let tags: Vec<String> = metas.iter().map(|m| m.name().to_string()).collect();
    let rec = Arc::new(TimelineRecorder::with_capacity(1 << 16));
    let mems: Vec<Arc<MemFs>> = (0..SERVERS).map(|_| Arc::new(MemFs::new())).collect();
    let handles = mems.clone();
    let config = PandaConfig::new(CLIENTS, SERVERS)
        .with_subchunk_bytes(256)
        .with_pipeline_depth(3)
        .with_io_workers(2)
        .with_recorder(rec.clone() as Arc<dyn Recorder>);
    let (system, mut clients) = PandaSystem::builder()
        .config(config.clone())
        .launch(move |s| Arc::clone(&handles[s]) as Arc<dyn FileSystem>)
        .unwrap();
    concurrent_write(&mut clients, &metas, &tags);
    concurrent_read_check(&mut clients, &metas, &tags);
    let report = system.report();
    system.shutdown(clients).unwrap();

    let events = rec.timeline().expect("timeline recorder keeps events");
    // The master client announced both batched submissions with the
    // full group size.
    let submits: Vec<_> = events
        .iter()
        .filter(|e| e.kind == EventKind::GroupSubmit)
        .collect();
    assert_eq!(submits.len(), 2, "one GroupSubmit per collective");
    // The parallel reorganization pool did real work on both paths.
    assert!(
        events.iter().any(|e| e.kind == EventKind::ReorgWorker),
        "no ReorgWorker events from the worker pool"
    );
    // The report aggregates cross-array overlap without breaking the
    // schema.
    assert!(report.cross_array_overlap_s >= 0.0);
    panda_obs::json::validate(&report.to_json()).unwrap();
}

#[test]
fn restart_without_generation_marker_is_a_typed_error() {
    let meta = make_array("f", &[8, 8], ElementType::F64, &[2, 2], DiskSchema::Natural);
    // Checkpoint on system A so the group's counter advances...
    let (system, mut clients, _mems) = launch_mem(CLIENTS, SERVERS, 1 << 20);
    let manifests: Vec<Vec<u8>> = {
        let datas: Vec<Vec<u8>> = (0..CLIENTS).map(|r| pattern_chunk(&meta, r)).collect();
        let mut out = vec![Vec::new(); CLIENTS];
        std::thread::scope(|s| {
            for ((client, d), slot) in clients.iter_mut().zip(&datas).zip(out.iter_mut()) {
                let meta = &meta;
                s.spawn(move || {
                    let mut g = ArrayGroup::new("torn");
                    g.include(meta.clone());
                    g.checkpoint(client, &[d]).unwrap();
                    *slot = g.encode_manifest();
                });
            }
        });
        out
    };
    system.shutdown(clients).unwrap();

    // ...then "restart" on a fresh deployment where the checkpoint data
    // may be gone or torn and the marker certainly never landed: the
    // group must refuse with the typed error instead of serving junk.
    let (system, mut clients, _mems) = launch_mem(CLIENTS, SERVERS, 1 << 20);
    std::thread::scope(|s| {
        for (client, manifest) in clients.iter_mut().zip(&manifests) {
            let meta = &meta;
            s.spawn(move || {
                let g = ArrayGroup::decode_manifest(manifest).unwrap();
                assert_eq!(g.checkpoints_taken(), 1);
                let mut buf = vec![0u8; meta.client_bytes(client.rank())];
                let err = g.restart(client, &mut [buf.as_mut_slice()]).unwrap_err();
                assert!(
                    matches!(
                        &err,
                        PandaError::Config {
                            issue: panda_core::ConfigIssue::CheckpointIncomplete { group }
                        } if group == "torn"
                    ),
                    "wrong error: {err}"
                );
            });
        }
    });
    system.shutdown(clients).unwrap();
}
