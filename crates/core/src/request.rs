//! Typed collective request sets.
//!
//! [`WriteSet`] and [`ReadSet`] are the one way to describe a
//! collective operation's payload — which arrays, under which file
//! tags, backed by which buffers — shared by the one-shot fleet path
//! ([`crate::PandaClient::write_set`]) and the multi-tenant service
//! path ([`crate::Session::write_set`]). They replace the old
//! positional tuple slices: the builder names each field at the call
//! site, owns the file tags (no more borrowing a temporary `String`),
//! and carries per-array sections for read operations, so group,
//! section, and single-array calls all lower to the same shape.

use panda_schema::Region;

use crate::array::ArrayMeta;
use crate::tuned::TunedConfig;

/// One array in a [`WriteSet`].
pub(crate) struct WriteItem<'a> {
    pub(crate) meta: &'a ArrayMeta,
    pub(crate) tag: String,
    pub(crate) data: &'a [u8],
}

/// The payload of one collective write: each array's metadata, its
/// file tag (the operation's files are `"<tag>.s<server>"` on each I/O
/// node), and this node's chunk of its data.
///
/// ```
/// # use panda_core::WriteSet;
/// # use panda_core::ArrayMeta;
/// # use panda_schema::{DataSchema, ElementType, Mesh, Shape};
/// # let mem = DataSchema::block_all(Shape::new(&[4, 4]).unwrap(),
/// #     ElementType::U8, Mesh::new(&[1, 1]).unwrap()).unwrap();
/// # let meta = ArrayMeta::natural("t", mem).unwrap();
/// # let chunk = vec![0u8; 16];
/// let set = WriteSet::new().array(&meta, "t.ts0", &chunk);
/// assert_eq!(set.len(), 1);
/// ```
#[derive(Default)]
pub struct WriteSet<'a> {
    pub(crate) items: Vec<WriteItem<'a>>,
    pub(crate) tuning: Option<TunedConfig>,
}

impl<'a> WriteSet<'a> {
    /// An empty set.
    pub fn new() -> Self {
        WriteSet {
            items: Vec::new(),
            tuning: None,
        }
    }

    /// Add one array: its metadata, file tag, and this node's chunk.
    pub fn array(
        mut self,
        meta: &'a ArrayMeta,
        file_tag: impl Into<String>,
        data: &'a [u8],
    ) -> Self {
        self.items.push(WriteItem {
            meta,
            tag: file_tag.into(),
            data,
        });
        self
    }

    /// Run this collective at `tuned`'s operating point: its
    /// `subchunk_bytes` and `pipeline_depth` override the session's
    /// values for this one request (they ride the request's existing
    /// wire fields). The point is validated at submit time with the
    /// same typed checks as [`crate::PandaConfig`]
    /// ([`TunedConfig::validate`]); `io_workers` is launch-scoped and
    /// participates only in that validation.
    pub fn tuned(mut self, tuned: &TunedConfig) -> Self {
        self.tuning = Some(*tuned);
        self
    }

    /// Number of arrays in the set.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True iff the set holds no arrays.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// One array in a [`ReadSet`].
pub(crate) struct ReadItem<'a> {
    pub(crate) meta: &'a ArrayMeta,
    pub(crate) tag: String,
    /// `None` reads the whole array; `Some` reads a rectangular section.
    pub(crate) section: Option<Region>,
    pub(crate) data: &'a mut [u8],
}

/// The payload of one collective read: the mirror of [`WriteSet`],
/// with mutable receive buffers and optional per-array sections.
///
/// A whole-array entry's buffer must be sized for this node's memory
/// chunk ([`ArrayMeta::client_bytes`]); a section entry's for the
/// chunk's intersection with the section
/// ([`crate::PandaClient::section_bytes`] — zero bytes when disjoint).
#[derive(Default)]
pub struct ReadSet<'a> {
    pub(crate) items: Vec<ReadItem<'a>>,
    pub(crate) tuning: Option<TunedConfig>,
}

impl<'a> ReadSet<'a> {
    /// An empty set.
    pub fn new() -> Self {
        ReadSet {
            items: Vec::new(),
            tuning: None,
        }
    }

    /// Run this collective at `tuned`'s operating point — the mirror of
    /// [`WriteSet::tuned`].
    pub fn tuned(mut self, tuned: &TunedConfig) -> Self {
        self.tuning = Some(*tuned);
        self
    }

    /// Add one whole-array read into `data`.
    pub fn array(
        mut self,
        meta: &'a ArrayMeta,
        file_tag: impl Into<String>,
        data: &'a mut [u8],
    ) -> Self {
        self.items.push(ReadItem {
            meta,
            tag: file_tag.into(),
            section: None,
            data,
        });
        self
    }

    /// Add a rectangular-section read of one array into `data` — the
    /// strided-subarray access pattern of the paper's workload studies.
    pub fn section(
        mut self,
        meta: &'a ArrayMeta,
        file_tag: impl Into<String>,
        section: Region,
        data: &'a mut [u8],
    ) -> Self {
        self.items.push(ReadItem {
            meta,
            tag: file_tag.into(),
            section: Some(section),
            data,
        });
        self
    }

    /// Number of arrays in the set.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True iff the set holds no arrays.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_schema::{DataSchema, ElementType, Mesh, Shape};

    fn meta() -> ArrayMeta {
        let mem = DataSchema::block_all(
            Shape::new(&[4, 4]).unwrap(),
            ElementType::U8,
            Mesh::new(&[1, 1]).unwrap(),
        )
        .unwrap();
        ArrayMeta::natural("t", mem).unwrap()
    }

    #[test]
    fn builders_accumulate_in_order() {
        let m = meta();
        let data = vec![1u8; 16];
        let set = WriteSet::new().array(&m, "a", &data).array(&m, "b", &data);
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
        assert_eq!(set.items[0].tag, "a");
        assert_eq!(set.items[1].tag, "b");
        assert!(WriteSet::new().is_empty());

        let mut whole = vec![0u8; 16];
        let mut sect = vec![0u8; 4];
        let region = Region::new(&[0, 0], &[1, 4]).unwrap();
        let set =
            ReadSet::new()
                .array(&m, "a", &mut whole)
                .section(&m, "b", region.clone(), &mut sect);
        assert_eq!(set.len(), 2);
        assert!(set.items[0].section.is_none());
        assert_eq!(set.items[1].section, Some(region));
    }

    #[test]
    fn tuned_attaches_the_operating_point() {
        let m = meta();
        let data = vec![1u8; 16];
        let tuned = TunedConfig::new(4096, 2, 2);
        let set = WriteSet::new().array(&m, "a", &data).tuned(&tuned);
        assert_eq!(set.tuning, Some(tuned));
        assert!(WriteSet::new().tuning.is_none());

        let mut buf = vec![0u8; 16];
        let set = ReadSet::new().array(&m, "a", &mut buf).tuned(&tuned);
        assert_eq!(set.tuning, Some(tuned));
    }
}
