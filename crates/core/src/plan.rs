//! The server-directed planner.
//!
//! When a collective request arrives, each Panda server independently
//! computes its *plan* from the array's two schemas (paper §2):
//!
//! 1. disk chunks are implicitly assigned round-robin across the servers
//!    — chunk `i` belongs to server `i mod S` (striping at the *chunk*
//!    level, in contrast to the disk-block striping of other systems);
//! 2. each assigned chunk occupies the next contiguous byte range of the
//!    server's file for that array, in assignment order, so processing
//!    chunks in order yields strictly sequential file access;
//! 3. chunks larger than the subchunk cap (1 MB in all the paper's
//!    experiments) are subdivided on the fly into file-contiguous
//!    subchunks;
//! 4. for each subchunk, the server computes which clients' memory
//!    chunks intersect it; those intersections are the logical
//!    sub-chunk requests exchanged with clients.
//!
//! The same functions serve both the real runtime (`server`/`client`)
//! and the performance model (`panda-model`), which is what makes the
//! simulated experiments faithful to the implementation.

use panda_fs::SyncPolicy;
use panda_schema::{split_into_subchunks, Region};

use crate::array::ArrayMeta;
use crate::protocol::{ArrayOp, OpKind};

/// One client's share of a subchunk: the intersection of the subchunk
/// with that client's memory chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanPiece {
    /// Client rank (0-based compute-node index).
    pub client: usize,
    /// Global-array region of the piece (nonempty).
    pub region: Region,
    /// True iff the piece occupies a contiguous byte range of the
    /// client's memory-chunk buffer (the natural-chunking fast path; a
    /// strided gather/scatter otherwise).
    pub contiguous_in_client: bool,
    /// True iff the piece occupies a contiguous byte range of the
    /// server's subchunk buffer. Under natural chunking both flags are
    /// true and the piece *is* the subchunk; under reorganization the
    /// server-side scatter is usually strided.
    pub contiguous_in_subchunk: bool,
}

/// One ≤ cap piece of a disk chunk, with its placement in the server's
/// file and the client pieces that compose it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanSubchunk {
    /// Global-array region of the subchunk.
    pub region: Region,
    /// Absolute byte offset in the server's per-array file.
    pub file_offset: u64,
    /// Subchunk size in bytes.
    pub bytes: usize,
    /// Client intersections, ordered by client rank. Their regions tile
    /// the subchunk exactly.
    pub pieces: Vec<PlanPiece>,
}

/// One disk chunk assigned to a server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanChunk {
    /// Linear index of the chunk in the disk chunk grid.
    pub chunk_idx: usize,
    /// Global-array region of the chunk.
    pub region: Region,
    /// Absolute byte offset of the chunk in the server's file.
    pub file_offset: u64,
    /// The chunk's subchunks, in file order.
    pub subchunks: Vec<PlanSubchunk>,
}

/// A server's complete schedule for one array in one collective op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerPlan {
    /// This server's index (0-based among the I/O nodes).
    pub server: usize,
    /// Total number of I/O nodes.
    pub num_servers: usize,
    /// Assigned chunks in file order.
    pub chunks: Vec<PlanChunk>,
    /// Total bytes this server reads/writes for the array.
    pub total_bytes: u64,
}

impl ServerPlan {
    /// Iterate all subchunks in file order.
    pub fn subchunks(&self) -> impl Iterator<Item = &PlanSubchunk> {
        self.chunks.iter().flat_map(|c| c.subchunks.iter())
    }

    /// Total number of client pieces (== messages each direction).
    pub fn num_pieces(&self) -> usize {
        self.subchunks().map(|s| s.pieces.len()).sum()
    }
}

/// The disk-chunk indices assigned to `server` out of `num_servers`, in
/// assignment (round-robin) order.
pub fn assigned_chunks(
    num_chunks: usize,
    server: usize,
    num_servers: usize,
) -> impl Iterator<Item = usize> {
    assert!(server < num_servers, "server index out of range");
    (server..num_chunks).step_by(num_servers)
}

/// Build `server`'s plan for `array`.
///
/// `subchunk_bytes` is the on-the-fly subdivision cap
/// ([`panda_schema::DEFAULT_SUBCHUNK_BYTES`] reproduces the paper).
///
/// ```
/// use panda_core::{build_server_plan, ArrayMeta};
/// use panda_schema::{DataSchema, ElementType, Mesh, Shape};
/// let shape = Shape::new(&[16, 16]).unwrap();
/// let memory = DataSchema::block_all(shape.clone(), ElementType::F64,
///     Mesh::new(&[2, 2]).unwrap()).unwrap();
/// let disk = DataSchema::traditional_order(shape, ElementType::F64, 2).unwrap();
/// let meta = ArrayMeta::new("t", memory, disk).unwrap();
/// let plan = build_server_plan(&meta, 0, 2, 1 << 20);
/// // Server 0 owns the first row-slab: one chunk, one subchunk,
/// // assembled from the two clients owning its columns.
/// assert_eq!(plan.chunks.len(), 1);
/// assert_eq!(plan.total_bytes, 8 * 16 * 8);
/// assert_eq!(plan.subchunks().next().unwrap().pieces.len(), 2);
/// ```
pub fn build_server_plan(
    array: &ArrayMeta,
    server: usize,
    num_servers: usize,
    subchunk_bytes: usize,
) -> ServerPlan {
    let subchunk_bytes = array.effective_subchunk(subchunk_bytes);
    let disk_grid = array.disk_grid();
    let mem_grid = array.memory_grid();
    let elem = array.elem_size();

    let mut chunks = Vec::new();
    let mut file_offset = 0u64;
    for chunk_idx in assigned_chunks(disk_grid.num_chunks(), server, num_servers) {
        let region = disk_grid.chunk_region(chunk_idx);
        if region.is_empty() {
            continue;
        }
        let pieces =
            split_into_subchunks(&region, elem, subchunk_bytes).expect("nonzero subchunk cap");
        let mut subchunks = Vec::with_capacity(pieces.len());
        for sub in pieces {
            let mut plan_pieces = Vec::new();
            for client in mem_grid.chunks_intersecting(&sub.region) {
                let client_region = mem_grid.chunk_region(client);
                let isect = client_region
                    .intersect(&sub.region)
                    .expect("intersecting chunk must intersect");
                let contiguous_in_client =
                    panda_schema::copy::is_contiguous_in(&client_region, &isect);
                let contiguous_in_subchunk =
                    panda_schema::copy::is_contiguous_in(&sub.region, &isect);
                plan_pieces.push(PlanPiece {
                    client,
                    region: isect,
                    contiguous_in_client,
                    contiguous_in_subchunk,
                });
            }
            subchunks.push(PlanSubchunk {
                file_offset: file_offset + sub.offset_in_chunk as u64,
                bytes: sub.bytes,
                region: sub.region,
                pieces: plan_pieces,
            });
        }
        let chunk_bytes = region.num_bytes(elem) as u64;
        chunks.push(PlanChunk {
            chunk_idx,
            region,
            file_offset,
            subchunks,
        });
        file_offset += chunk_bytes;
    }
    ServerPlan {
        server,
        num_servers,
        chunks,
        total_bytes: file_offset,
    }
}

/// One subchunk step of a lowered [`CollectiveSchedule`].
///
/// A step is the unit the collective executor's window operates on: the
/// exchange stage fetches (write) or pushes (read) the step's pieces,
/// the reorganization stage copies them, and the pinned disk stage
/// writes or reads `sub.bytes` at `sub.file_offset` of file
/// [`ScheduleStep::file`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleStep {
    /// Array index within the collective request (the wire's `array`
    /// field and the [`panda_obs::SubchunkKey::array`] component).
    pub array: u32,
    /// Subchunk index within the array's selected subchunks (the
    /// [`panda_obs::SubchunkKey::subchunk`] component).
    pub subchunk: usize,
    /// Index into [`CollectiveSchedule::files`].
    pub file: usize,
    /// The array's element size in bytes.
    pub elem: usize,
    /// The planned subchunk: region, file offset, size, client pieces.
    pub sub: PlanSubchunk,
    /// Read-section trim: pieces are intersected with this region
    /// before being pushed. Always `None` on the write direction.
    pub section: Option<Region>,
}

/// One per-array file of a [`CollectiveSchedule`], in first-use order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleFile {
    /// The request's file tag (the server derives its per-server file
    /// name from it).
    pub tag: String,
    /// Number of steps targeting this file — the disk stage fsyncs a
    /// written file as soon as its last step lands (under the per-file
    /// sync policy).
    pub steps: usize,
    /// Final file length: the largest `file_offset + bytes` over the
    /// file's steps. Known before the first byte moves, so the disk
    /// stage preallocates the whole extent up front on writes.
    pub bytes: u64,
}

/// A server's lowered schedule for one whole collective request.
///
/// [`build_server_plan`] output for one or many arrays is flattened
/// array-major into a single stream of [`ScheduleStep`]s; a single
/// array is simply a group of one. The executor runs the stream through
/// one depth-`d` window regardless of direction or array count, which
/// is what keeps every file byte-identical across depths: per-file FIFO
/// order is the flat order restricted to one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectiveSchedule {
    /// The flat step stream, array-major, file-sequential per array.
    pub steps: Vec<ScheduleStep>,
    /// Files referenced by the steps, in first-use order.
    pub files: Vec<ScheduleFile>,
    /// Write direction only: file tags of arrays with no data on this
    /// server, which still get an empty file created and synced.
    pub empty_files: Vec<String>,
    /// When the disk stage flushes written data (from the request).
    pub sync_policy: SyncPolicy,
}

impl CollectiveSchedule {
    /// Lower one collective request into this server's schedule.
    ///
    /// For writes every array contributes a file (empty plans land in
    /// [`CollectiveSchedule::empty_files`]); for reads arrays without
    /// selected subchunks are skipped entirely, and a step's subchunks
    /// are filtered to those overlapping the array's section up front
    /// so the prefetcher and the scatter loop stay in lockstep.
    pub fn build(
        arrays: &[ArrayOp],
        op: OpKind,
        server: usize,
        num_servers: usize,
        subchunk_bytes: usize,
        sync_policy: SyncPolicy,
    ) -> Self {
        let mut schedule = CollectiveSchedule {
            steps: Vec::new(),
            files: Vec::new(),
            empty_files: Vec::new(),
            sync_policy,
        };
        for (idx, array_op) in arrays.iter().enumerate() {
            let plan = build_server_plan(&array_op.meta, server, num_servers, subchunk_bytes);
            let section = match op {
                // Section writes are rejected at the protocol layer.
                OpKind::Write => None,
                OpKind::Read => array_op.section.clone(),
            };
            let selected: Vec<&PlanSubchunk> = plan
                .subchunks()
                .filter(|sub| match &section {
                    None => true,
                    Some(section) => sub.region.overlaps(section),
                })
                .collect();
            if selected.is_empty() {
                if matches!(op, OpKind::Write) {
                    schedule.empty_files.push(array_op.file_tag.clone());
                }
                continue;
            }
            let file = schedule.files.len();
            schedule.files.push(ScheduleFile {
                tag: array_op.file_tag.clone(),
                steps: selected.len(),
                bytes: selected
                    .iter()
                    .map(|sub| sub.file_offset + sub.bytes as u64)
                    .max()
                    .unwrap_or(0),
            });
            let elem = array_op.meta.elem_size();
            for (si, sub) in selected.into_iter().enumerate() {
                schedule.steps.push(ScheduleStep {
                    array: idx as u32,
                    subchunk: si,
                    file,
                    elem,
                    sub: sub.clone(),
                    section: section.clone(),
                });
            }
        }
        schedule
    }

    /// True when no step moves any data (files in
    /// [`CollectiveSchedule::empty_files`] may still need creating).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Total bytes the disk stage moves for this schedule.
    pub fn total_bytes(&self) -> u64 {
        self.steps.iter().map(|s| s.sub.bytes as u64).sum()
    }
}

/// What one client will exchange during a collective on `array`: piece
/// count and byte total. Clients use this on the read path to know when
/// they have received everything; it is derived from the same planning
/// functions the servers run, so the two sides always agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClientManifest {
    /// Number of pieces this client sends (write) or receives (read).
    pub pieces: usize,
    /// Total payload bytes across those pieces.
    pub bytes: u64,
}

/// Compute the manifest of `client` for one collective on `array`.
pub fn client_manifest(
    array: &ArrayMeta,
    client: usize,
    num_servers: usize,
    subchunk_bytes: usize,
) -> ClientManifest {
    client_manifest_section(array, client, num_servers, subchunk_bytes, None)
}

/// As [`client_manifest`], restricted to an array section: only pieces
/// overlapping `section` are counted (the section-read collective).
pub fn client_manifest_section(
    array: &ArrayMeta,
    client: usize,
    num_servers: usize,
    subchunk_bytes: usize,
    section: Option<&Region>,
) -> ClientManifest {
    let subchunk_bytes = array.effective_subchunk(subchunk_bytes);
    let disk_grid = array.disk_grid();
    let elem = array.elem_size();
    let my_region = array.client_region(client);
    // The region this client actually receives into.
    let target = match section {
        None => my_region.clone(),
        Some(sec) => match my_region.intersect(sec) {
            Some(t) => t,
            None => return ClientManifest::default(),
        },
    };
    if target.is_empty() {
        return ClientManifest::default();
    }
    let mut manifest = ClientManifest::default();
    // Walk only the disk chunks that overlap the target; the
    // round-robin owner is irrelevant to the count.
    let _ = num_servers; // ownership does not affect the piece set
    for chunk_idx in disk_grid.chunks_intersecting(&target) {
        let region = disk_grid.chunk_region(chunk_idx);
        for sub in
            split_into_subchunks(&region, elem, subchunk_bytes).expect("nonzero subchunk cap")
        {
            if let Some(isect) = sub.region.intersect(&target) {
                manifest.pieces += 1;
                manifest.bytes += isect.num_bytes(elem) as u64;
            }
        }
    }
    manifest
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_schema::{DataSchema, ElementType, Mesh, Shape};

    fn natural_array(dims: &[usize], mesh: &[usize]) -> ArrayMeta {
        let mem = DataSchema::block_all(
            Shape::new(dims).unwrap(),
            ElementType::F64,
            Mesh::new(mesh).unwrap(),
        )
        .unwrap();
        ArrayMeta::natural("a", mem).unwrap()
    }

    fn traditional_array(dims: &[usize], mesh: &[usize], servers: usize) -> ArrayMeta {
        let shape = Shape::new(dims).unwrap();
        let mem = DataSchema::block_all(shape.clone(), ElementType::F64, Mesh::new(mesh).unwrap())
            .unwrap();
        let disk = DataSchema::traditional_order(shape, ElementType::F64, servers).unwrap();
        ArrayMeta::new("a", mem, disk).unwrap()
    }

    #[test]
    fn round_robin_assignment() {
        assert_eq!(assigned_chunks(8, 0, 3).collect::<Vec<_>>(), vec![0, 3, 6]);
        assert_eq!(assigned_chunks(8, 2, 3).collect::<Vec<_>>(), vec![2, 5]);
        assert_eq!(assigned_chunks(2, 1, 4).collect::<Vec<_>>(), vec![1]);
        assert_eq!(assigned_chunks(2, 3, 4).count(), 0);
    }

    #[test]
    fn plans_cover_array_exactly_once() {
        for (array, servers) in [
            (natural_array(&[16, 16], &[2, 2]), 2usize),
            (natural_array(&[16, 16], &[2, 2]), 3),
            (traditional_array(&[16, 12, 8], &[2, 2, 2], 3), 3),
            (traditional_array(&[17, 13], &[3, 2], 4), 4),
        ] {
            let elem = array.elem_size();
            let total: u64 = (0..servers)
                .map(|s| build_server_plan(&array, s, servers, 128).total_bytes)
                .sum();
            assert_eq!(total, array.total_bytes() as u64);

            // Every array index must be covered exactly once by pieces.
            let mut counts = vec![0u32; array.shape().num_elements()];
            for s in 0..servers {
                let plan = build_server_plan(&array, s, servers, 128);
                for sub in plan.subchunks() {
                    // Pieces tile the subchunk.
                    let piece_elems: usize =
                        sub.pieces.iter().map(|p| p.region.num_elements()).sum();
                    assert_eq!(piece_elems * elem, sub.bytes);
                    for p in &sub.pieces {
                        let shape = p.region.shape().unwrap();
                        for local in shape.iter_indices() {
                            let global: Vec<usize> = local
                                .iter()
                                .zip(p.region.lo())
                                .map(|(&l, &o)| l + o)
                                .collect();
                            counts[array.shape().linearize(&global)] += 1;
                        }
                    }
                }
            }
            assert!(counts.iter().all(|&c| c == 1), "each index exactly once");
        }
    }

    #[test]
    fn file_offsets_are_sequential() {
        let array = traditional_array(&[32, 8], &[2, 2], 3);
        for s in 0..3 {
            let plan = build_server_plan(&array, s, 3, 64);
            let mut expected = 0u64;
            for sub in plan.subchunks() {
                assert_eq!(sub.file_offset, expected, "strictly sequential file layout");
                expected += sub.bytes as u64;
            }
            assert_eq!(expected, plan.total_bytes);
        }
    }

    #[test]
    fn natural_chunking_has_single_contiguous_pieces() {
        // Memory schema == disk schema: every subchunk lies inside
        // exactly one client chunk and is contiguous there.
        let array = natural_array(&[16, 16], &[2, 2]);
        for s in 0..2 {
            let plan = build_server_plan(&array, s, 2, 256);
            assert!(!plan.chunks.is_empty());
            for sub in plan.subchunks() {
                assert_eq!(sub.pieces.len(), 1, "one client per subchunk");
                assert!(sub.pieces[0].contiguous_in_client);
                // And under natural chunking chunk_idx == client rank.
            }
            for chunk in &plan.chunks {
                for sub in &chunk.subchunks {
                    assert_eq!(sub.pieces[0].client, chunk.chunk_idx);
                }
            }
        }
    }

    #[test]
    fn reorganization_has_multiple_strided_pieces() {
        // 8x8 BLOCK,BLOCK memory over 2x2, disk BLOCK,* over 2 servers:
        // a disk slab spans both columns of clients.
        let array = traditional_array(&[8, 8], &[2, 2], 2);
        let plan = build_server_plan(&array, 0, 2, 1 << 20);
        let sub = plan.subchunks().next().unwrap();
        assert_eq!(sub.pieces.len(), 2, "slab crosses two memory chunks");
        // With a row-slab disk schema the pieces are contiguous on the
        // client side but strided inside the server's subchunk buffer.
        assert!(sub.pieces.iter().all(|p| p.contiguous_in_client));
        assert!(sub.pieces.iter().any(|p| !p.contiguous_in_subchunk));

        // A column-slab (`*,BLOCK`) disk schema strides the CLIENT side:
        // each piece is a half-width sub-box of the client's chunk.
        let shape = Shape::new(&[8, 8]).unwrap();
        let mem =
            DataSchema::block_all(shape.clone(), ElementType::F64, Mesh::new(&[2, 2]).unwrap())
                .unwrap();
        let disk = DataSchema::new(
            shape,
            ElementType::F64,
            &[panda_schema::Dist::Star, panda_schema::Dist::Block],
            Mesh::line(4).unwrap(),
        )
        .unwrap();
        let array = ArrayMeta::new("a", mem, disk).unwrap();
        // Disk chunk 0 = all rows x cols [0,2): a half-width stripe of
        // the clients' 4x4 chunks.
        let plan = build_server_plan(&array, 0, 4, 1 << 20);
        let sub = plan.subchunks().next().unwrap();
        assert_eq!(sub.pieces.len(), 2);
        assert!(sub.pieces.iter().all(|p| !p.contiguous_in_client));
    }

    #[test]
    fn empty_trailing_chunks_are_skipped() {
        // 3 rows over 5 mesh cells: chunks 3,4 empty.
        let mem = DataSchema::new(
            Shape::new(&[3, 4]).unwrap(),
            ElementType::U8,
            &[panda_schema::Dist::Block, panda_schema::Dist::Star],
            Mesh::line(5).unwrap(),
        )
        .unwrap();
        let array = ArrayMeta::natural("e", mem).unwrap();
        let mut seen = 0usize;
        for s in 0..2 {
            let plan = build_server_plan(&array, s, 2, 1024);
            for c in &plan.chunks {
                assert!(!c.region.is_empty());
                seen += 1;
            }
        }
        assert_eq!(seen, 3);
    }

    #[test]
    fn client_manifest_matches_server_plans() {
        for (array, servers, cap) in [
            (natural_array(&[16, 16], &[2, 2]), 2usize, 128usize),
            (traditional_array(&[16, 12, 8], &[2, 2, 2], 3), 3, 256),
            (traditional_array(&[9, 7], &[4, 2], 3), 3, 64),
        ] {
            let num_clients = array.num_clients();
            let mut pieces = vec![0usize; num_clients];
            let mut bytes = vec![0u64; num_clients];
            for s in 0..servers {
                let plan = build_server_plan(&array, s, servers, cap);
                for sub in plan.subchunks() {
                    for p in &sub.pieces {
                        pieces[p.client] += 1;
                        bytes[p.client] += p.region.num_bytes(array.elem_size()) as u64;
                    }
                }
            }
            for c in 0..num_clients {
                let m = client_manifest(&array, c, servers, cap);
                assert_eq!(m.pieces, pieces[c], "client {c}");
                assert_eq!(m.bytes, bytes[c], "client {c}");
            }
        }
    }

    #[test]
    fn schedule_lowering_is_array_major_and_file_sequential() {
        let arrays = vec![
            ArrayOp {
                meta: traditional_array(&[16, 16], &[2, 2], 2),
                file_tag: "a".to_string(),
                section: None,
            },
            ArrayOp {
                meta: natural_array(&[8, 8], &[2, 2]),
                file_tag: "b".to_string(),
                section: None,
            },
        ];
        for server in 0..2 {
            let sched = CollectiveSchedule::build(
                &arrays,
                OpKind::Write,
                server,
                2,
                128,
                SyncPolicy::PerFile,
            );
            assert!(!sched.is_empty());
            assert_eq!(sched.files.len(), 2);
            // Array-major: array indices never decrease along the stream.
            let mut last_array = 0;
            for step in &sched.steps {
                assert!(step.array >= last_array, "steps must be array-major");
                last_array = step.array;
            }
            // Per-file FIFO: each file's offsets are strictly sequential,
            // and the per-file step counts match the file table.
            for (fidx, file) in sched.files.iter().enumerate() {
                let steps: Vec<&ScheduleStep> =
                    sched.steps.iter().filter(|s| s.file == fidx).collect();
                assert_eq!(steps.len(), file.steps);
                let mut expected = 0u64;
                for step in steps {
                    assert_eq!(step.sub.file_offset, expected);
                    expected += step.sub.bytes as u64;
                }
            }
            // The schedule moves exactly what the per-array plans move.
            let planned: u64 = arrays
                .iter()
                .map(|op| build_server_plan(&op.meta, server, 2, 128).total_bytes)
                .sum();
            assert_eq!(sched.total_bytes(), planned);
        }
    }

    #[test]
    fn schedule_of_one_array_is_a_group_of_one() {
        // Lowering a single array must equal that array's slice of a
        // multi-array schedule (modulo the array/file indices).
        let a = ArrayOp {
            meta: traditional_array(&[16, 16], &[2, 2], 2),
            file_tag: "a".to_string(),
            section: None,
        };
        let b = ArrayOp {
            meta: natural_array(&[8, 8], &[2, 2]),
            file_tag: "b".to_string(),
            section: None,
        };
        let solo = CollectiveSchedule::build(
            std::slice::from_ref(&b),
            OpKind::Write,
            0,
            2,
            128,
            SyncPolicy::PerFile,
        );
        let pair =
            CollectiveSchedule::build(&[a, b], OpKind::Write, 0, 2, 128, SyncPolicy::PerFile);
        let tail: Vec<&ScheduleStep> = pair.steps.iter().filter(|s| s.array == 1).collect();
        assert_eq!(solo.steps.len(), tail.len());
        for (s, t) in solo.steps.iter().zip(tail) {
            assert_eq!(s.sub, t.sub);
            assert_eq!(s.subchunk, t.subchunk);
            assert_eq!(s.elem, t.elem);
        }
    }

    #[test]
    fn schedule_read_sections_filter_subchunks() {
        let meta = traditional_array(&[16, 16], &[2, 2], 2);
        let section = Region::new(&[0, 0], &[4, 16]).unwrap();
        let op = ArrayOp {
            meta,
            file_tag: "a".to_string(),
            section: Some(section.clone()),
        };
        let full = CollectiveSchedule::build(
            &[ArrayOp {
                section: None,
                ..op.clone()
            }],
            OpKind::Read,
            0,
            2,
            128,
            SyncPolicy::PerFile,
        );
        let trimmed =
            CollectiveSchedule::build(&[op], OpKind::Read, 0, 2, 128, SyncPolicy::PerFile);
        assert!(trimmed.steps.len() < full.steps.len());
        for step in &trimmed.steps {
            assert!(step.sub.region.overlaps(&section));
            assert_eq!(step.section.as_ref(), Some(&section));
        }
        // Server 1 owns only the bottom slab, disjoint from the section:
        // it contributes no file at all.
        let other = CollectiveSchedule::build(
            &[ArrayOp {
                meta: traditional_array(&[16, 16], &[2, 2], 2),
                file_tag: "a".to_string(),
                section: Some(section),
            }],
            OpKind::Read,
            1,
            2,
            128,
            SyncPolicy::PerFile,
        );
        assert!(other.is_empty());
        assert!(other.files.is_empty());
        assert!(other.empty_files.is_empty(), "reads never create files");
    }

    #[test]
    fn schedule_write_records_empty_files() {
        // 2 chunks over 3 servers: server 2 gets nothing but must still
        // create its (empty) file on the write direction.
        let op = ArrayOp {
            meta: traditional_array(&[16, 16], &[2, 2], 2),
            file_tag: "a".to_string(),
            section: None,
        };
        let sched = CollectiveSchedule::build(
            std::slice::from_ref(&op),
            OpKind::Write,
            2,
            3,
            128,
            SyncPolicy::PerFile,
        );
        assert!(sched.is_empty());
        assert_eq!(sched.empty_files, vec!["a".to_string()]);
        let read = CollectiveSchedule::build(&[op], OpKind::Read, 2, 3, 128, SyncPolicy::PerFile);
        assert!(read.empty_files.is_empty());
    }

    #[test]
    fn paper_example_traditional_order_concat() {
        // Paper §3: 512 MB array 512^3 f64... scaled down: BLOCK,*,*
        // over n servers means server i holds plane-slab i, so
        // concatenating files 0..n yields traditional order. Verify the
        // plan's chunk regions are exactly the ordered slabs.
        let array = traditional_array(&[16, 8, 8], &[2, 2, 2], 4);
        for s in 0..4 {
            let plan = build_server_plan(&array, s, 4, 1 << 20);
            assert_eq!(plan.chunks.len(), 1);
            let r = &plan.chunks[0].region;
            assert_eq!(r.lo(), &[4 * s, 0, 0]);
            assert_eq!(r.hi(), &[4 * (s + 1), 8, 8]);
        }
    }
}
