//! The library error type.

use std::fmt;

use panda_fs::FsError;
use panda_msg::MsgError;
use panda_schema::SchemaError;

/// Errors surfaced by Panda collective operations.
#[derive(Debug)]
pub enum PandaError {
    /// Geometry/schema validation failed.
    Schema(SchemaError),
    /// The message layer failed (timeout, disconnect).
    Msg(MsgError),
    /// A file-system backend failed.
    Fs(FsError),
    /// The memory and disk schemas of an array disagree on shape or
    /// element type.
    SchemaMismatch {
        /// The array name.
        array: String,
    },
    /// The caller's buffer does not match its memory-chunk size.
    BadClientBuffer {
        /// The array name.
        array: String,
        /// Expected size in bytes for this client's chunk.
        expected: usize,
        /// Size actually provided.
        actual: usize,
    },
    /// A protocol message could not be decoded (corrupt or mismatched
    /// versions).
    Decode {
        /// What was being decoded.
        context: &'static str,
    },
    /// The protocol saw a message it did not expect in this state.
    Protocol {
        /// Human-readable description.
        detail: String,
    },
    /// A configuration value is invalid (zero nodes, mesh/client count
    /// mismatch, ...).
    Config {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for PandaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PandaError::Schema(e) => write!(f, "schema error: {e}"),
            PandaError::Msg(e) => write!(f, "message layer error: {e}"),
            PandaError::Fs(e) => write!(f, "file system error: {e}"),
            PandaError::SchemaMismatch { array } => {
                write!(f, "memory/disk schema mismatch for array '{array}'")
            }
            PandaError::BadClientBuffer {
                array,
                expected,
                actual,
            } => write!(
                f,
                "client buffer for array '{array}' has {actual} bytes, expected {expected}"
            ),
            PandaError::Decode { context } => write!(f, "failed to decode {context}"),
            PandaError::Protocol { detail } => write!(f, "protocol error: {detail}"),
            PandaError::Config { detail } => write!(f, "configuration error: {detail}"),
        }
    }
}

impl std::error::Error for PandaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PandaError::Schema(e) => Some(e),
            PandaError::Msg(e) => Some(e),
            PandaError::Fs(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SchemaError> for PandaError {
    fn from(e: SchemaError) -> Self {
        PandaError::Schema(e)
    }
}

impl From<MsgError> for PandaError {
    fn from(e: MsgError) -> Self {
        PandaError::Msg(e)
    }
}

impl From<FsError> for PandaError {
    fn from(e: FsError) -> Self {
        PandaError::Fs(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: PandaError = SchemaError::ZeroExtent { dim: 0 }.into();
        assert!(e.to_string().contains("schema"));
        let e: PandaError = MsgError::Disconnected.into();
        assert!(e.to_string().contains("message layer"));
        let e = PandaError::BadClientBuffer {
            array: "t".into(),
            expected: 8,
            actual: 4,
        };
        assert!(e.to_string().contains('8'));
    }
}
