//! The library error type.

use std::fmt;

use panda_fs::FsError;
use panda_msg::MsgError;
use panda_schema::SchemaError;

/// Errors surfaced by Panda collective operations.
#[derive(Debug)]
pub enum PandaError {
    /// Geometry/schema validation failed.
    Schema(SchemaError),
    /// The message layer failed (timeout, disconnect).
    Msg(MsgError),
    /// A file-system backend failed.
    Fs(FsError),
    /// The memory and disk schemas of an array disagree on shape or
    /// element type.
    SchemaMismatch {
        /// The array name.
        array: String,
    },
    /// The caller's buffer does not match its memory-chunk size.
    BadClientBuffer {
        /// The array name.
        array: String,
        /// Expected size in bytes for this client's chunk.
        expected: usize,
        /// Size actually provided.
        actual: usize,
    },
    /// A protocol message could not be decoded (corrupt or mismatched
    /// versions).
    Decode {
        /// What was being decoded.
        context: &'static str,
    },
    /// The protocol saw a message it did not expect in this state.
    Protocol {
        /// Human-readable description.
        detail: String,
    },
    /// A configuration value or usage precondition is invalid. The
    /// typed [`ConfigIssue`] carries the offending values so callers
    /// can branch on the exact problem instead of parsing a message.
    Config {
        /// What exactly was wrong.
        issue: ConfigIssue,
    },
    /// A server refused to admit a collective request because the node
    /// is at capacity. This is a *flow-control* outcome, not a failure
    /// of the request itself: the submitter may retry later, shed load,
    /// or route elsewhere. The typed [`AdmissionIssue`] distinguishes a
    /// full wait queue from a node configured to never queue.
    Admission {
        /// Why the request was turned away.
        issue: AdmissionIssue,
    },
}

/// The precise reason a [`PandaError::Admission`] rejection was sent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionIssue {
    /// Every concurrent-collective slot is busy and the server is
    /// configured with no wait queue (`max_queued_collectives == 0`).
    Saturated {
        /// Collectives currently live on the server.
        live: usize,
        /// The configured `max_concurrent_collectives`.
        max: usize,
    },
    /// Every concurrent-collective slot is busy *and* the wait queue is
    /// full.
    QueueFull {
        /// Requests already waiting.
        queued: usize,
        /// The configured `max_queued_collectives`.
        max: usize,
    },
}

impl fmt::Display for AdmissionIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionIssue::Saturated { live, max } => write!(
                f,
                "server saturated: {live} live collectives of {max} allowed and no wait queue"
            ),
            AdmissionIssue::QueueFull { queued, max } => write!(
                f,
                "admission queue full: {queued} requests already waiting of {max} allowed"
            ),
        }
    }
}

/// The precise reason a [`PandaError::Config`] was raised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigIssue {
    /// `num_clients` or `num_servers` is zero; Panda needs at least one
    /// of each.
    NoNodes {
        /// Configured compute-node count.
        num_clients: usize,
        /// Configured I/O-node count.
        num_servers: usize,
    },
    /// The subchunk subdivision cap is zero.
    ZeroSubchunkBytes,
    /// The pipeline depth is zero (depth 1 means "unpipelined").
    ZeroPipelineDepth,
    /// The builder's `transports` launch was handed the wrong number of
    /// transports.
    TransportCount {
        /// Required count (`num_clients + num_servers`).
        expected: usize,
        /// Count actually supplied.
        actual: usize,
    },
    /// `shutdown` was called with an empty client list.
    NoClientHandles,
    /// The I/O worker-pool size is zero (each server needs at least one
    /// reorganization/disk worker).
    ZeroIoWorkers,
    /// `restart` was called on a group with no completed checkpoint.
    NoCheckpoint {
        /// The group's name.
        group: String,
    },
    /// `restart` found checkpoint files but no generation marker that
    /// records a *completed* checkpoint — the run crashed mid-write and
    /// neither `ckpt-a` nor `ckpt-b` can be trusted.
    CheckpointIncomplete {
        /// The group's name.
        group: String,
    },
    /// A group operation was given the wrong number of buffers.
    GroupArity {
        /// The group's name.
        group: String,
        /// Arrays in the group.
        arrays: usize,
        /// Buffers supplied by the caller.
        buffers: usize,
    },
    /// The submission-queue completion-thread count is zero (the
    /// `SubmitFs` backend needs at least one completion thread).
    ZeroCompletionThreads,
    /// `SyncPolicy::PerWrite` demands an fsync between consecutive
    /// subchunk writes, which serializes the disk stage; combining it
    /// with a pipeline depth above 1 contradicts itself.
    SyncPolicyConflict {
        /// The configured pipeline depth.
        pipeline_depth: usize,
    },
    /// The concurrent-collective cap is zero (a server must be able to
    /// run at least one collective; use `max_queued_collectives: 0` to
    /// disable queueing instead).
    ZeroConcurrentCollectives,
    /// A session submitted an array whose memory schema spans more than
    /// one compute node. Session collectives are single-submitter: the
    /// session's own buffers must cover the whole array.
    SessionMesh {
        /// The array name.
        array: String,
        /// Compute nodes the array's memory schema is distributed over.
        clients: usize,
    },
    /// Calibration needs the per-subchunk phase decomposition, which
    /// only a timeline-keeping recorder provides. Launch with
    /// `PandaConfig::with_recorder(Arc::new(TimelineRecorder::new()))`
    /// (or any recorder whose `timeline()` is `Some`).
    CalibrationNeedsTimeline,
}

impl fmt::Display for ConfigIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigIssue::NoNodes {
                num_clients,
                num_servers,
            } => write!(
                f,
                "need at least one client and one server (got {num_clients} clients, \
                 {num_servers} servers)"
            ),
            ConfigIssue::ZeroSubchunkBytes => write!(f, "subchunk cap must be nonzero"),
            ConfigIssue::ZeroPipelineDepth => write!(f, "pipeline depth must be at least 1"),
            ConfigIssue::TransportCount { expected, actual } => write!(
                f,
                "need {expected} transports (clients then servers), got {actual}"
            ),
            ConfigIssue::NoClientHandles => write!(f, "shutdown requires the client handles"),
            ConfigIssue::ZeroIoWorkers => write!(f, "io worker count must be at least 1"),
            ConfigIssue::NoCheckpoint { group } => {
                write!(f, "group '{group}' has no completed checkpoint")
            }
            ConfigIssue::CheckpointIncomplete { group } => write!(
                f,
                "group '{group}' has checkpoint files but no completed generation marker"
            ),
            ConfigIssue::GroupArity {
                group,
                arrays,
                buffers,
            } => write!(
                f,
                "group '{group}' has {arrays} arrays but {buffers} buffers were supplied"
            ),
            ConfigIssue::ZeroCompletionThreads => {
                write!(f, "disk completion thread count must be at least 1")
            }
            ConfigIssue::SyncPolicyConflict { pipeline_depth } => write!(
                f,
                "per-write fsync serializes the disk stage and cannot be combined with \
                 pipeline depth {pipeline_depth} (use depth 1 or a coarser sync policy)"
            ),
            ConfigIssue::ZeroConcurrentCollectives => {
                write!(f, "max concurrent collectives must be at least 1")
            }
            ConfigIssue::SessionMesh { array, clients } => write!(
                f,
                "session collectives are single-submitter but array '{array}' is \
                 distributed over {clients} compute nodes"
            ),
            ConfigIssue::CalibrationNeedsTimeline => write!(
                f,
                "calibration requires a timeline-keeping recorder (launch with \
                 PandaConfig::with_recorder(TimelineRecorder) so per-subchunk \
                 phase durations are available)"
            ),
        }
    }
}

impl fmt::Display for PandaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PandaError::Schema(e) => write!(f, "schema error: {e}"),
            PandaError::Msg(e) => write!(f, "message layer error: {e}"),
            PandaError::Fs(e) => write!(f, "file system error: {e}"),
            PandaError::SchemaMismatch { array } => {
                write!(f, "memory/disk schema mismatch for array '{array}'")
            }
            PandaError::BadClientBuffer {
                array,
                expected,
                actual,
            } => write!(
                f,
                "client buffer for array '{array}' has {actual} bytes, expected {expected}"
            ),
            PandaError::Decode { context } => write!(f, "failed to decode {context}"),
            PandaError::Protocol { detail } => write!(f, "protocol error: {detail}"),
            PandaError::Config { issue } => write!(f, "configuration error: {issue}"),
            PandaError::Admission { issue } => write!(f, "admission rejected: {issue}"),
        }
    }
}

impl std::error::Error for PandaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PandaError::Schema(e) => Some(e),
            PandaError::Msg(e) => Some(e),
            PandaError::Fs(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SchemaError> for PandaError {
    fn from(e: SchemaError) -> Self {
        PandaError::Schema(e)
    }
}

impl From<MsgError> for PandaError {
    fn from(e: MsgError) -> Self {
        PandaError::Msg(e)
    }
}

impl From<FsError> for PandaError {
    fn from(e: FsError) -> Self {
        PandaError::Fs(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: PandaError = SchemaError::ZeroExtent { dim: 0 }.into();
        assert!(e.to_string().contains("schema"));
        let e: PandaError = MsgError::Disconnected.into();
        assert!(e.to_string().contains("message layer"));
        let e = PandaError::BadClientBuffer {
            array: "t".into(),
            expected: 8,
            actual: 4,
        };
        assert!(e.to_string().contains('8'));
    }

    #[test]
    fn config_issue_is_typed_and_displayed() {
        let e = PandaError::Config {
            issue: ConfigIssue::TransportCount {
                expected: 3,
                actual: 2,
            },
        };
        assert!(e.to_string().contains("configuration error"));
        assert!(e.to_string().contains("3 transports"));
        match e {
            PandaError::Config {
                issue: ConfigIssue::TransportCount { expected, actual },
            } => assert_eq!((expected, actual), (3, 2)),
            other => panic!("wrong issue: {other}"),
        }
        let e = PandaError::Config {
            issue: ConfigIssue::GroupArity {
                group: "g".into(),
                arrays: 2,
                buffers: 1,
            },
        };
        assert!(e.to_string().contains("2 arrays"));
    }

    #[test]
    fn admission_issue_is_typed_and_displayed() {
        let e = PandaError::Admission {
            issue: AdmissionIssue::Saturated { live: 4, max: 4 },
        };
        assert!(e.to_string().contains("admission rejected"));
        assert!(e.to_string().contains("4 live collectives"));
        match e {
            PandaError::Admission {
                issue: AdmissionIssue::Saturated { live, max },
            } => assert_eq!((live, max), (4, 4)),
            other => panic!("wrong issue: {other}"),
        }
        let e = PandaError::Admission {
            issue: AdmissionIssue::QueueFull {
                queued: 16,
                max: 16,
            },
        };
        assert!(e.to_string().contains("queue full"));
    }
}
