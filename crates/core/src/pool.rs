//! A small shared worker pool for server-side I/O and reorganization.
//!
//! The pipelined schedules in [`crate::server`] need two kinds of help:
//! long-lived disk loops (one writer or prefetcher per collective) and
//! short fork-join bursts of `copy_region`/`pack_region_into` work when
//! several subchunks are ready to be reorganized at once. Spawning a
//! fresh OS thread per subchunk would swamp the actual copy cost, so a
//! [`ServerNode`](crate::server::ServerNode) owns one [`IoPool`] sized
//! from [`PandaConfig::io_workers`](crate::PandaConfig::io_workers) and
//! routes both kinds of work through it.
//!
//! Two properties keep the pool deadlock-free:
//!
//! * work is only queued against a *reservation* of an idle worker
//!   ([`IoPool::spawn_pinned`] falls back to a plain OS thread and
//!   [`IoPool::run_scoped`] to inline execution on the caller when no
//!   worker is free), so a queued job can never wait behind a disk loop
//!   that will not finish until that very job runs;
//! * [`IoPool::run_scoped`] never returns before every dispatched job
//!   has finished — including when a job panics — which is what makes
//!   lending non-`'static` borrows to the workers sound.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

use panda_schema::{copy, Region, SchemaError};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Only split a pack into per-worker bands once it is big enough that
/// the copy dwarfs the dispatch overhead (two mutex hops per band).
const PAR_PACK_MIN_BYTES: usize = 128 * 1024;

struct State {
    jobs: VecDeque<Job>,
    /// Workers neither running a job nor holding one in the queue. Every
    /// enqueue consumes one unit ("reservation") before pushing, so
    /// `jobs.len() + running == workers - idle` is an invariant.
    idle: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    available: Condvar,
}

/// The shared worker pool. See the module docs for the dispatch rules.
pub struct IoPool {
    shared: Arc<Shared>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl IoPool {
    /// A pool with `workers` threads (clamped to at least one), named
    /// `panda-io-N`.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                jobs: VecDeque::new(),
                idle: workers,
                shutdown: false,
            }),
            available: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("panda-io-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn io pool worker")
            })
            .collect();
        IoPool {
            shared,
            workers: handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Claim one idle worker, if any. A successful reservation must be
    /// followed by exactly one `dispatch`.
    fn try_reserve(&self) -> bool {
        let mut st = self.shared.state.lock().unwrap();
        if st.idle > 0 {
            st.idle -= 1;
            true
        } else {
            false
        }
    }

    /// Queue a job against a reservation made by `try_reserve`.
    fn dispatch(&self, job: Job) {
        let mut st = self.shared.state.lock().unwrap();
        st.jobs.push_back(job);
        drop(st);
        self.shared.available.notify_one();
    }

    /// Run a long-lived task — typically a disk loop that lives for one
    /// collective — on a reserved worker, or on a fresh OS thread when
    /// every worker is busy. Either way the task starts immediately;
    /// it never queues behind other work, so two concurrent disk loops
    /// on a one-worker pool cannot deadlock each other.
    pub fn spawn_pinned<T, F>(&self, f: F) -> PinnedTask<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        if self.try_reserve() {
            let (tx, rx) = mpsc::channel();
            self.dispatch(Box::new(move || {
                let _ = tx.send(catch_unwind(AssertUnwindSafe(f)));
            }));
            PinnedTask(PinnedInner::Pooled(rx))
        } else {
            let handle = thread::Builder::new()
                .name("panda-io-overflow".to_string())
                .spawn(f)
                .expect("spawn overflow io thread");
            PinnedTask(PinnedInner::Thread(handle))
        }
    }

    /// Fork-join: run every job, spreading them over currently idle
    /// workers and executing the rest inline on the caller, and return
    /// only when all of them have finished. If any job panicked the
    /// first panic is re-raised here — after the barrier, so borrowed
    /// data never outlives a still-running worker.
    pub fn run_scoped<'scope>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        if jobs.is_empty() {
            return;
        }
        let latch = Arc::new((Mutex::new(0usize), Condvar::new()));
        let first_panic: Arc<Mutex<Option<Box<dyn std::any::Any + Send>>>> =
            Arc::new(Mutex::new(None));
        let mut inline = Vec::new();
        for job in jobs {
            if !self.try_reserve() {
                inline.push(job);
                continue;
            }
            // SAFETY: the transmute only erases the `'scope` bound on
            // the closure's captures. The job is observed through the
            // latch: it increments before dispatch, decrements as its
            // last action, and this function blocks below until the
            // count returns to zero — so every borrow the closure holds
            // is live for as long as the worker can touch it.
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job) };
            *latch.0.lock().unwrap() += 1;
            let latch = Arc::clone(&latch);
            let first_panic = Arc::clone(&first_panic);
            self.dispatch(Box::new(move || {
                if let Err(p) = catch_unwind(AssertUnwindSafe(job)) {
                    first_panic.lock().unwrap().get_or_insert(p);
                }
                let mut n = latch.0.lock().unwrap();
                *n -= 1;
                if *n == 0 {
                    latch.1.notify_all();
                }
            }));
        }
        for job in inline {
            if let Err(p) = catch_unwind(AssertUnwindSafe(job)) {
                first_panic.lock().unwrap().get_or_insert(p);
            }
        }
        let mut n = latch.0.lock().unwrap();
        while *n > 0 {
            n = latch.1.wait(n).unwrap();
        }
        drop(n);
        let panic = first_panic.lock().unwrap().take();
        if let Some(p) = panic {
            resume_unwind(p);
        }
    }

    /// [`IoPool::run_scoped`] for fallible jobs: runs every job to
    /// completion (the barrier still holds) and returns the first error
    /// any of them reported. The collective executor's reorganization
    /// stages all funnel their copy bursts through here.
    pub fn run_scoped_result<'scope, E: Send + 'scope>(
        &self,
        jobs: Vec<Box<dyn FnOnce() -> Result<(), E> + Send + 'scope>>,
    ) -> Result<(), E> {
        let error: Mutex<Option<E>> = Mutex::new(None);
        let wrapped: Vec<Box<dyn FnOnce() + Send + '_>> = jobs
            .into_iter()
            .map(|job| {
                let error = &error;
                Box::new(move || {
                    if let Err(e) = job() {
                        error.lock().unwrap().get_or_insert(e);
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        self.run_scoped(wrapped);
        match error.into_inner().unwrap() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// [`copy::pack_region_into`] with the copy split over the pool:
    /// `sub` is cut into bands along its outermost dimension and each
    /// band packs into its own disjoint slice of `out`. Splitting along
    /// dim 0 is what makes the slices contiguous — the packed layout is
    /// row-major over `sub`, so all bytes of rows `a..b` precede those
    /// of rows `b..`. Small packs (or rank-0 regions) take the serial
    /// path unchanged.
    pub fn pack_region_par(
        &self,
        out: &mut Vec<u8>,
        src: &[u8],
        src_region: &Region,
        sub: &Region,
        elem_size: usize,
    ) -> Result<(), SchemaError> {
        let total = sub.num_bytes(elem_size);
        let rows = if sub.rank() == 0 { 1 } else { sub.extent(0) };
        let bands = self.workers().min(rows);
        if total < PAR_PACK_MIN_BYTES || bands < 2 {
            return copy::pack_region_into(out, src, src_region, sub, elem_size);
        }
        out.clear();
        out.resize(total, 0);
        let row_bytes = total / rows;
        let mut jobs: Vec<Box<dyn FnOnce() -> Result<(), SchemaError> + Send + '_>> =
            Vec::with_capacity(bands);
        let mut rest: &mut [u8] = out;
        let lo0 = sub.lo()[0];
        for b in 0..bands {
            // Rows are dealt out as evenly as possible: the first
            // `rows % bands` bands take one extra row.
            let begin = lo0 + b * rows / bands;
            let end = lo0 + (b + 1) * rows / bands;
            let (slab, tail) = rest.split_at_mut((end - begin) * row_bytes);
            rest = tail;
            let mut lo = sub.lo().to_vec();
            let mut hi = sub.hi().to_vec();
            lo[0] = begin;
            hi[0] = end;
            let band = Region::new(&lo, &hi).expect("band of a valid region is valid");
            jobs.push(Box::new(move || {
                copy::copy_region(src, src_region, slab, &band, &band, elem_size).map(|_| ())
            }));
        }
        self.run_scoped_result(jobs)
    }
}

impl Drop for IoPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for IoPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IoPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if let Some(job) = st.jobs.pop_front() {
                    break job;
                }
                if st.shutdown {
                    return;
                }
                st = shared.available.wait(st).unwrap();
            }
        };
        job();
        shared.state.lock().unwrap().idle += 1;
    }
}

enum PinnedInner<T> {
    Pooled(mpsc::Receiver<thread::Result<T>>),
    Thread(thread::JoinHandle<T>),
}

/// Handle to a task started with [`IoPool::spawn_pinned`]. Mirrors
/// [`std::thread::JoinHandle`]: joining yields `Err` with the panic
/// payload if the task panicked.
pub struct PinnedTask<T>(PinnedInner<T>);

impl<T> PinnedTask<T> {
    /// Block until the task finishes and return its result.
    pub fn join(self) -> thread::Result<T> {
        match self.0 {
            PinnedInner::Pooled(rx) => rx
                .recv()
                .unwrap_or_else(|_| Err(Box::new("io pool worker lost"))),
            PinnedInner::Thread(handle) => handle.join(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_scoped_runs_every_job_and_waits() {
        let pool = IoPool::new(3);
        let hits = AtomicUsize::new(0);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..20)
            .map(|_| {
                let hits = &hits;
                Box::new(move || {
                    hits.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_scoped(jobs);
        assert_eq!(hits.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn run_scoped_falls_back_inline_when_workers_are_busy() {
        let pool = IoPool::new(1);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        // Occupy the only worker so the scoped jobs must run inline.
        let pinned = pool.spawn_pinned(move || {
            gate_rx.recv().unwrap();
            7usize
        });
        let me = thread::current().id();
        let ran_on = Mutex::new(Vec::new());
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
            .map(|_| {
                let ran_on = &ran_on;
                Box::new(move || {
                    ran_on.lock().unwrap().push(thread::current().id());
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_scoped(jobs);
        let ids = ran_on.lock().unwrap();
        assert_eq!(ids.len(), 4);
        assert!(ids.iter().all(|&id| id == me), "expected inline fallback");
        drop(ids);
        gate_tx.send(()).unwrap();
        assert_eq!(pinned.join().unwrap(), 7);
    }

    #[test]
    fn spawn_pinned_overflows_to_a_fresh_thread() {
        let pool = IoPool::new(1);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let first = pool.spawn_pinned(move || gate_rx.recv().unwrap());
        // The worker is taken; this must start anyway (fallback thread),
        // and it is the one that releases the first task — a queued-
        // behind-the-loop dispatch would deadlock right here.
        let second = pool.spawn_pinned(move || gate_tx.send(()).unwrap());
        second.join().unwrap();
        first.join().unwrap();
    }

    #[test]
    fn run_scoped_propagates_panics_after_the_barrier() {
        let pool = IoPool::new(2);
        let finished = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..6)
                .map(|i| {
                    let finished = &finished;
                    Box::new(move || {
                        if i == 3 {
                            panic!("boom");
                        }
                        finished.fetch_add(1, Ordering::SeqCst);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_scoped(jobs);
        }));
        assert!(result.is_err());
        assert_eq!(finished.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn run_scoped_result_reports_the_first_error_after_all_jobs() {
        let pool = IoPool::new(2);
        let finished = AtomicUsize::new(0);
        let jobs: Vec<Box<dyn FnOnce() -> Result<(), i32> + Send + '_>> = (0..6)
            .map(|i| {
                let finished = &finished;
                Box::new(move || {
                    finished.fetch_add(1, Ordering::SeqCst);
                    if i == 3 {
                        Err(3)
                    } else {
                        Ok(())
                    }
                }) as Box<dyn FnOnce() -> Result<(), i32> + Send + '_>
            })
            .collect();
        assert_eq!(pool.run_scoped_result(jobs), Err(3));
        // The barrier holds for fallible jobs too: an error does not
        // cancel the rest of the burst.
        assert_eq!(finished.load(Ordering::SeqCst), 6);
        let ok: Vec<Box<dyn FnOnce() -> Result<(), i32> + Send + '_>> = (0..2)
            .map(|_| Box::new(|| Ok(())) as Box<dyn FnOnce() -> Result<(), i32> + Send + '_>)
            .collect();
        assert_eq!(pool.run_scoped_result(ok), Ok(()));
    }

    #[test]
    fn pack_region_par_matches_serial_pack() {
        let pool = IoPool::new(4);
        let elem = 8usize;
        let enclosing = Region::new(&[0, 0], &[200, 120]).unwrap();
        let mut src = vec![0u8; enclosing.num_bytes(elem)];
        for (i, b) in src.iter_mut().enumerate() {
            *b = (i * 31 % 251) as u8;
        }
        // Big enough to split (> PAR_PACK_MIN_BYTES) and deliberately
        // not row-aligned with the band count.
        let sub = Region::new(&[3, 5], &[197, 117]).unwrap();
        let expect = copy::pack_region(&src, &enclosing, &sub, elem).unwrap();
        assert!(expect.len() >= PAR_PACK_MIN_BYTES);
        let mut got = Vec::new();
        pool.pack_region_par(&mut got, &src, &enclosing, &sub, elem)
            .unwrap();
        assert_eq!(got, expect);

        // Small packs take the serial path but must agree too.
        let tiny = Region::new(&[0, 0], &[2, 3]).unwrap();
        let expect = copy::pack_region(&src, &enclosing, &tiny, elem).unwrap();
        pool.pack_region_par(&mut got, &src, &enclosing, &tiny, elem)
            .unwrap();
        assert_eq!(got, expect);
    }
}
