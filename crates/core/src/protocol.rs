//! The typed Panda message set and its tags.
//!
//! One collective operation exchanges these messages (paper §2):
//!
//! ```text
//! master client ── Collective ──► master server
//! master server ── Collective ──► every other server      (broadcast)
//! server        ── Fetch ───────► client                  (write path)
//! client        ── Data ────────► server                  (write path)
//! server        ── Data ────────► client                  (read path)
//! server        ── ServerDone ──► master server
//! master server ── Complete ────► master client
//! master client ── Release ─────► every other client
//! ```
//!
//! The `Raw*` messages implement the comparison baselines (naive
//! client-directed I/O and two-phase I/O), where compute nodes — not
//! servers — decide where in each file data lands.

use panda_fs::SyncPolicy;
use panda_msg::{Bytes, Envelope, MatchSpec, NodeId, Payload, Transport};
use panda_schema::Region;

use crate::array::ArrayMeta;
use crate::encode::{Reader, Writer};
use crate::error::{AdmissionIssue, PandaError};

/// Message tags, one per message kind (used for selective receive).
///
/// # Tag namespace
///
/// The space is split into two planes:
///
/// * **1–7, collective plane** — the server-directed protocol. Since
///   array groups became the unit of scheduling, one [`COLLECTIVE`](tags::COLLECTIVE)
///   request carries *every* array of a group (its body holds a
///   `Vec<ArrayOp>`), and the per-piece traffic ([`FETCH`](tags::FETCH), [`DATA`](tags::DATA))
///   disambiguates arrays by the `array` index plus a request-global
///   `seq` — batching added **no** new tags, which is what keeps
///   in-flight collectives from different arrays safely interleavable
///   on one pairwise-FIFO transport.
/// * **8–14, raw plane** — positioned-I/O messages used by the
///   comparison baselines and by out-of-band metadata (schema
///   manifests, checkpoint markers).
///
/// [`DATA`](tags::DATA) payloads may additionally travel *framed* (a protocol head
/// plus an uncopied data body via `Transport::send_vectored`); framing
/// never changes the logical bytes, so tags stay a complete routing key.
///
/// Every tag must be unique — receivers match on `(src, tag)` only.
/// [`ALL`](tags::ALL) enumerates the namespace; a unit test asserts uniqueness.
pub mod tags {
    /// Collective request broadcast.
    pub const COLLECTIVE: u32 = 1;
    /// Server asks a client for a region (write path).
    pub const FETCH: u32 = 2;
    /// Region payload (either direction).
    pub const DATA: u32 = 3;
    /// Server reports completion to the master server.
    pub const SERVER_DONE: u32 = 4;
    /// Master server reports completion to the master client.
    pub const COMPLETE: u32 = 5;
    /// Master client releases the other clients.
    pub const RELEASE: u32 = 6;
    /// Orderly server shutdown.
    pub const SHUTDOWN: u32 = 7;
    /// Baselines: positioned write request.
    pub const RAW_WRITE: u32 = 8;
    /// Baselines: positioned read request.
    pub const RAW_READ: u32 = 9;
    /// Baselines: read reply payload.
    pub const RAW_DATA: u32 = 10;
    /// Baselines: client finished issuing raw operations.
    pub const RAW_DONE: u32 = 11;
    /// Baselines: acknowledgement / barrier reply.
    pub const RAW_ACK: u32 = 12;
    /// File length query (schema manifests, tools).
    pub const RAW_STAT: u32 = 13;
    /// Reply to [`RAW_STAT`].
    pub const RAW_STAT_REPLY: u32 = 14;
    /// Master server → submitter: collective request refused admission.
    pub const REJECT: u32 = 15;

    /// The complete tag namespace, with stable names (reports, tests).
    pub const ALL: [(u32, &str); 15] = [
        (COLLECTIVE, "collective"),
        (FETCH, "fetch"),
        (DATA, "data"),
        (SERVER_DONE, "server_done"),
        (COMPLETE, "complete"),
        (RELEASE, "release"),
        (SHUTDOWN, "shutdown"),
        (RAW_WRITE, "raw_write"),
        (RAW_READ, "raw_read"),
        (RAW_DATA, "raw_data"),
        (RAW_DONE, "raw_done"),
        (RAW_ACK, "raw_ack"),
        (RAW_STAT, "raw_stat"),
        (RAW_STAT_REPLY, "raw_stat_reply"),
        (REJECT, "reject"),
    ];
}

/// Direction of a collective operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Write arrays from compute-node memory to disk.
    Write,
    /// Read arrays from disk into compute-node memory.
    Read,
}

/// One array inside a collective request, with the file tag its per-
/// server files are derived from (`"<tag>.s<server>"`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayOp {
    /// Array metadata (both schemas).
    pub meta: ArrayMeta,
    /// Base file name for this operation.
    pub file_tag: String,
    /// For section reads: restrict the collective to this global-array
    /// region. `None` moves the whole array. Only valid for reads.
    pub section: Option<Region>,
}

/// The single high-level request that starts a collective operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectiveRequest {
    /// Submitter-unique request id. Every per-request message (`Fetch`,
    /// `Data`, `ServerDone`, `Complete`, `Release`, `Reject`) echoes it,
    /// which is what lets concurrent collectives demultiplex on shared
    /// pairwise-FIFO transports.
    pub request: u64,
    /// Fabric ranks of the compute nodes holding the data, in mesh
    /// order: a plan piece's `client` index selects
    /// `participants[piece.client]`. A fleet-wide collective lists
    /// `0..num_clients`; a session collective lists just the
    /// submitter's own rank.
    pub participants: Vec<u32>,
    /// Scheduling priority on the servers (higher runs first; equal
    /// priorities round-robin).
    pub priority: u8,
    /// Write or read.
    pub op: OpKind,
    /// The arrays, in execution order.
    pub arrays: Vec<ArrayOp>,
    /// Subchunk subdivision cap in bytes.
    pub subchunk_bytes: usize,
    /// Number of subchunks each server keeps in flight (1 = the
    /// unpipelined transfer order; ≥ 2 overlaps client exchange with
    /// disk I/O).
    pub pipeline_depth: usize,
    /// When the disk stage flushes written data to stable storage.
    pub sync_policy: SyncPolicy,
}

/// A protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    /// Start a collective operation.
    Collective(CollectiveRequest),
    /// Server → client: send me this region of array `array`.
    Fetch {
        /// The collective request this fetch serves; the client echoes
        /// it in the matching [`Msg::Data`] so servers running several
        /// collectives can route the reply.
        request: u64,
        /// Index of the array within the collective request.
        array: u32,
        /// Fetch sequence number, echoed back in the matching
        /// [`Msg::Data`] (unique within one request on one server).
        seq: u64,
        /// Requested global-array region.
        region: Region,
    },
    /// Region payload, client → server (write) or server → client
    /// (read). The payload is the region packed in row-major order.
    Data {
        /// The collective request the payload belongs to (0 on the raw
        /// two-phase exchange plane, which has no request ids).
        request: u64,
        /// Index of the array within the collective request.
        array: u32,
        /// Fetch sequence number (write path) or chunk id (two-phase
        /// exchange).
        seq: u64,
        /// The region carried.
        region: Region,
        /// Packed row-major bytes of the region. A [`Bytes`] so a
        /// framed arrival (or a shared disk buffer on the send side)
        /// reaches the consumer without a copy.
        payload: Bytes,
    },
    /// Server → master server: my share of one collective is complete.
    ServerDone {
        /// Which collective.
        request: u64,
    },
    /// Master server → submitter: the collective is complete.
    Complete {
        /// Which collective.
        request: u64,
    },
    /// Master client → other clients: resume computation.
    Release {
        /// Which collective.
        request: u64,
    },
    /// Master server → submitter: the collective was refused admission
    /// (the node is at capacity). Surfaced to the caller as
    /// [`PandaError::Admission`].
    Reject {
        /// Which collective.
        request: u64,
        /// Why it was turned away.
        reason: AdmissionIssue,
    },
    /// Terminate a server thread.
    Shutdown,
    /// Baselines: write `payload` at `offset` of `file`.
    RawWrite {
        /// Server-local file name.
        file: String,
        /// Byte offset.
        offset: u64,
        /// Data to write.
        payload: Vec<u8>,
    },
    /// Baselines: read `len` bytes at `offset` of `file`.
    RawRead {
        /// Server-local file name.
        file: String,
        /// Byte offset.
        offset: u64,
        /// Bytes to read.
        len: u64,
        /// Request id echoed in the [`Msg::RawData`] reply.
        seq: u64,
    },
    /// Baselines: reply to [`Msg::RawRead`].
    RawData {
        /// Echoed request id.
        seq: u64,
        /// The bytes read.
        payload: Vec<u8>,
    },
    /// Baselines: this client has issued all its raw operations for the
    /// current logical op; the server replies [`Msg::RawAck`] once all
    /// clients have done so and files are synced.
    RawDone,
    /// Baselines: completion barrier reply.
    RawAck,
    /// Query a file's length (used for schema manifests whose size the
    /// reader does not know in advance).
    RawStat {
        /// Server-local file name.
        file: String,
        /// Request id echoed in the reply.
        seq: u64,
    },
    /// Reply to [`Msg::RawStat`].
    RawStatReply {
        /// Echoed request id.
        seq: u64,
        /// File length in bytes, or `u64::MAX` if the file does not
        /// exist.
        len: u64,
    },
}

impl Msg {
    /// The transport tag for this message kind.
    pub fn tag(&self) -> u32 {
        match self {
            Msg::Collective(_) => tags::COLLECTIVE,
            Msg::Fetch { .. } => tags::FETCH,
            Msg::Data { .. } => tags::DATA,
            Msg::ServerDone { .. } => tags::SERVER_DONE,
            Msg::Complete { .. } => tags::COMPLETE,
            Msg::Release { .. } => tags::RELEASE,
            Msg::Reject { .. } => tags::REJECT,
            Msg::Shutdown => tags::SHUTDOWN,
            Msg::RawWrite { .. } => tags::RAW_WRITE,
            Msg::RawRead { .. } => tags::RAW_READ,
            Msg::RawData { .. } => tags::RAW_DATA,
            Msg::RawDone => tags::RAW_DONE,
            Msg::RawAck => tags::RAW_ACK,
            Msg::RawStat { .. } => tags::RAW_STAT,
            Msg::RawStatReply { .. } => tags::RAW_STAT_REPLY,
        }
    }

    /// Encode the message body (the tag travels separately).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Msg::Collective(req) => {
                w.u64(req.request);
                w.u8(req.priority);
                w.size(req.participants.len());
                for &p in &req.participants {
                    w.u32(p);
                }
                w.u8(match req.op {
                    OpKind::Write => 0,
                    OpKind::Read => 1,
                });
                w.size(req.subchunk_bytes);
                w.size(req.pipeline_depth);
                w.u8(match req.sync_policy {
                    SyncPolicy::PerWrite => 0,
                    SyncPolicy::PerFile => 1,
                    SyncPolicy::PerCollective => 2,
                });
                w.size(req.arrays.len());
                for a in &req.arrays {
                    w.array_meta(&a.meta);
                    w.str(&a.file_tag);
                    match &a.section {
                        None => w.u8(0),
                        Some(sec) => {
                            w.u8(1);
                            w.region(sec);
                        }
                    }
                }
            }
            Msg::Fetch {
                request,
                array,
                seq,
                region,
            } => {
                w.u64(*request);
                w.u32(*array);
                w.u64(*seq);
                w.region(region);
            }
            Msg::Data {
                request,
                array,
                seq,
                region,
                payload,
            } => {
                w.u64(*request);
                w.u32(*array);
                w.u64(*seq);
                w.region(region);
                w.bytes(payload);
            }
            Msg::ServerDone { request } | Msg::Complete { request } | Msg::Release { request } => {
                w.u64(*request);
            }
            Msg::Reject { request, reason } => {
                w.u64(*request);
                match reason {
                    AdmissionIssue::Saturated { live, max } => {
                        w.u8(0);
                        w.size(*live);
                        w.size(*max);
                    }
                    AdmissionIssue::QueueFull { queued, max } => {
                        w.u8(1);
                        w.size(*queued);
                        w.size(*max);
                    }
                }
            }
            Msg::Shutdown | Msg::RawDone | Msg::RawAck => {}
            Msg::RawWrite {
                file,
                offset,
                payload,
            } => {
                w.str(file);
                w.u64(*offset);
                w.bytes(payload);
            }
            Msg::RawRead {
                file,
                offset,
                len,
                seq,
            } => {
                w.str(file);
                w.u64(*offset);
                w.u64(*len);
                w.u64(*seq);
            }
            Msg::RawData { seq, payload } => {
                w.u64(*seq);
                w.bytes(payload);
            }
            Msg::RawStat { file, seq } => {
                w.str(file);
                w.u64(*seq);
            }
            Msg::RawStatReply { seq, len } => {
                w.u64(*seq);
                w.u64(*len);
            }
        }
        w.finish()
    }

    /// Decode a message from its tag and body.
    pub fn decode(tag: u32, payload: &[u8]) -> Result<Msg, PandaError> {
        let mut r = Reader::new(payload);
        let msg = match tag {
            tags::COLLECTIVE => {
                let request = r.u64()?;
                let priority = r.u8()?;
                let np = r.size()?;
                if np > 4096 {
                    return Err(PandaError::Decode {
                        context: "participant count",
                    });
                }
                let mut participants = Vec::with_capacity(np);
                for _ in 0..np {
                    participants.push(r.u32()?);
                }
                let op = match r.u8()? {
                    0 => OpKind::Write,
                    1 => OpKind::Read,
                    _ => return Err(PandaError::Decode { context: "op kind" }),
                };
                let subchunk_bytes = r.size()?;
                let pipeline_depth = r.size()?;
                let sync_policy = match r.u8()? {
                    0 => SyncPolicy::PerWrite,
                    1 => SyncPolicy::PerFile,
                    2 => SyncPolicy::PerCollective,
                    _ => {
                        return Err(PandaError::Decode {
                            context: "sync policy",
                        })
                    }
                };
                let n = r.size()?;
                if n > 4096 {
                    return Err(PandaError::Decode {
                        context: "array count",
                    });
                }
                let mut arrays = Vec::with_capacity(n);
                for _ in 0..n {
                    let meta = r.array_meta()?;
                    let file_tag = r.str()?;
                    let section = match r.u8()? {
                        0 => None,
                        1 => Some(r.region()?),
                        _ => {
                            return Err(PandaError::Decode {
                                context: "section flag",
                            })
                        }
                    };
                    arrays.push(ArrayOp {
                        meta,
                        file_tag,
                        section,
                    });
                }
                Msg::Collective(CollectiveRequest {
                    request,
                    participants,
                    priority,
                    op,
                    arrays,
                    subchunk_bytes,
                    pipeline_depth,
                    sync_policy,
                })
            }
            tags::FETCH => Msg::Fetch {
                request: r.u64()?,
                array: r.u32()?,
                seq: r.u64()?,
                region: r.region()?,
            },
            tags::DATA => Msg::Data {
                request: r.u64()?,
                array: r.u32()?,
                seq: r.u64()?,
                region: r.region()?,
                payload: r.bytes()?.into(),
            },
            tags::SERVER_DONE => Msg::ServerDone { request: r.u64()? },
            tags::COMPLETE => Msg::Complete { request: r.u64()? },
            tags::RELEASE => Msg::Release { request: r.u64()? },
            tags::REJECT => {
                let request = r.u64()?;
                let reason = match r.u8()? {
                    0 => AdmissionIssue::Saturated {
                        live: r.size()?,
                        max: r.size()?,
                    },
                    1 => AdmissionIssue::QueueFull {
                        queued: r.size()?,
                        max: r.size()?,
                    },
                    _ => {
                        return Err(PandaError::Decode {
                            context: "admission reason",
                        })
                    }
                };
                Msg::Reject { request, reason }
            }
            tags::SHUTDOWN => Msg::Shutdown,
            tags::RAW_WRITE => Msg::RawWrite {
                file: r.str()?,
                offset: r.u64()?,
                payload: r.bytes()?,
            },
            tags::RAW_READ => Msg::RawRead {
                file: r.str()?,
                offset: r.u64()?,
                len: r.u64()?,
                seq: r.u64()?,
            },
            tags::RAW_DATA => Msg::RawData {
                seq: r.u64()?,
                payload: r.bytes()?,
            },
            tags::RAW_DONE => Msg::RawDone,
            tags::RAW_ACK => Msg::RawAck,
            tags::RAW_STAT => Msg::RawStat {
                file: r.str()?,
                seq: r.u64()?,
            },
            tags::RAW_STAT_REPLY => Msg::RawStatReply {
                seq: r.u64()?,
                len: r.u64()?,
            },
            _ => {
                return Err(PandaError::Decode {
                    context: "unknown tag",
                })
            }
        };
        Ok(msg)
    }

    /// Decode a delivered envelope, consuming it.
    ///
    /// A framed [`tags::DATA`] arrival (head = the fixed fields + byte
    /// length, body = the packed region) is decoded without touching
    /// the body: the `Bytes` moves straight into [`Msg::Data`]. Every
    /// other payload form falls back to [`Msg::decode`] over the
    /// contiguous bytes.
    pub fn decode_envelope(env: Envelope) -> Result<Msg, PandaError> {
        match env.payload {
            Payload::Framed { head, body } if env.tag == tags::DATA => {
                let mut r = Reader::new(&head);
                let request = r.u64()?;
                let array = r.u32()?;
                let seq = r.u64()?;
                let region = r.region()?;
                let len = r.size()?;
                if len != body.len() || r.remaining() != 0 {
                    return Err(PandaError::Decode {
                        context: "framed data length",
                    });
                }
                Ok(Msg::Data {
                    request,
                    array,
                    seq,
                    region,
                    payload: body,
                })
            }
            payload => Msg::decode(env.tag, &payload.into_contiguous()),
        }
    }
}

/// Send a typed message.
pub fn send_msg<T: Transport + ?Sized>(
    t: &mut T,
    dst: NodeId,
    msg: &Msg,
) -> Result<(), PandaError> {
    t.send(dst, msg.tag(), msg.encode())?;
    Ok(())
}

/// Send a [`Msg::Data`] without building the owned message or copying
/// the payload into an envelope buffer: the fixed fields and the byte
/// length-prefix are encoded into a small head, and the payload rides
/// behind it through the transport's vectored path. This is the hot
/// path of both transfer directions; a shared (`Arc`) payload reaches
/// an in-process receiver as the same allocation.
///
/// The logical message is byte-identical to sending an owned
/// [`Msg::Data`] — framing never changes the wire format.
pub fn send_data<T: Transport + ?Sized>(
    t: &mut T,
    dst: NodeId,
    request: u64,
    array: u32,
    seq: u64,
    region: &Region,
    payload: impl Into<Bytes>,
) -> Result<(), PandaError> {
    let payload = payload.into();
    let mut w = Writer::new();
    w.u64(request);
    w.u32(array);
    w.u64(seq);
    w.region(region);
    w.size(payload.len());
    t.send_vectored(dst, tags::DATA, w.finish(), payload)?;
    Ok(())
}

/// Receive and decode the next message matching `spec`.
pub fn recv_msg<T: Transport + ?Sized>(
    t: &mut T,
    spec: MatchSpec,
) -> Result<(NodeId, Msg), PandaError> {
    let env = t.recv_matching(spec)?;
    let src = env.src;
    let msg = Msg::decode_envelope(env)?;
    Ok((src, msg))
}

/// Non-blocking [`recv_msg`]: `Ok(None)` when no matching message has
/// arrived yet. The group-concurrent server drains bursts of `Data`
/// replies with this so a whole batch can be reorganized in one parallel
/// pass.
pub fn try_recv_msg<T: Transport + ?Sized>(
    t: &mut T,
    spec: MatchSpec,
) -> Result<Option<(NodeId, Msg)>, PandaError> {
    match t.try_recv_matching(spec)? {
        None => Ok(None),
        Some(env) => {
            let src = env.src;
            let msg = Msg::decode_envelope(env)?;
            Ok(Some((src, msg)))
        }
    }
}

/// The one reply-burst framing of the collective executor: block for
/// one message matching `spec`, then sweep every further match that has
/// already arrived. A burst of replies becomes one parallel
/// reorganization pass instead of `d` serial ones; only the first
/// message of the batch actually waited.
pub fn recv_burst<T: Transport + ?Sized>(
    t: &mut T,
    spec: MatchSpec,
) -> Result<Vec<Msg>, PandaError> {
    let mut batch = vec![recv_msg(t, spec)?.1];
    while let Some((_, more)) = try_recv_msg(t, spec)? {
        batch.push(more);
    }
    Ok(batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_schema::{DataSchema, ElementType, Mesh, Shape};

    fn sample_meta() -> ArrayMeta {
        let shape = Shape::new(&[8, 8]).unwrap();
        let mem =
            DataSchema::block_all(shape.clone(), ElementType::F64, Mesh::new(&[2, 2]).unwrap())
                .unwrap();
        let disk = DataSchema::traditional_order(shape, ElementType::F64, 2).unwrap();
        ArrayMeta::new("t", mem, disk).unwrap()
    }

    fn roundtrip(msg: Msg) {
        let tag = msg.tag();
        let bytes = msg.encode();
        let back = Msg::decode(tag, &bytes).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(Msg::Collective(CollectiveRequest {
            request: (1 << 32) | 7,
            participants: vec![0, 1, 2, 3],
            priority: 3,
            op: OpKind::Write,
            arrays: vec![
                ArrayOp {
                    meta: sample_meta(),
                    file_tag: "t.ts0".into(),
                    section: None,
                },
                ArrayOp {
                    meta: sample_meta(),
                    file_tag: "t.ckpt".into(),
                    section: Some(Region::new(&[0, 2], &[4, 6]).unwrap()),
                },
            ],
            subchunk_bytes: 1 << 20,
            pipeline_depth: 1,
            sync_policy: SyncPolicy::PerWrite,
        }));
        roundtrip(Msg::Collective(CollectiveRequest {
            request: 0,
            participants: vec![],
            priority: 0,
            op: OpKind::Read,
            arrays: vec![],
            subchunk_bytes: 4096,
            pipeline_depth: 4,
            sync_policy: SyncPolicy::PerCollective,
        }));
        roundtrip(Msg::Fetch {
            request: 42,
            array: 3,
            seq: 99,
            region: Region::new(&[0, 1], &[4, 5]).unwrap(),
        });
        roundtrip(Msg::Data {
            request: 42,
            array: 0,
            seq: 7,
            region: Region::new(&[2], &[6]).unwrap(),
            payload: vec![1, 2, 3, 4].into(),
        });
        roundtrip(Msg::ServerDone { request: 42 });
        roundtrip(Msg::Complete { request: 42 });
        roundtrip(Msg::Release { request: 42 });
        roundtrip(Msg::Reject {
            request: 42,
            reason: AdmissionIssue::Saturated { live: 4, max: 4 },
        });
        roundtrip(Msg::Reject {
            request: 43,
            reason: AdmissionIssue::QueueFull {
                queued: 16,
                max: 16,
            },
        });
        roundtrip(Msg::Shutdown);
        roundtrip(Msg::RawWrite {
            file: "a.s0".into(),
            offset: 512,
            payload: vec![9; 16],
        });
        roundtrip(Msg::RawRead {
            file: "a.s0".into(),
            offset: 0,
            len: 64,
            seq: 5,
        });
        roundtrip(Msg::RawData {
            seq: 5,
            payload: vec![0; 64],
        });
        roundtrip(Msg::RawDone);
        roundtrip(Msg::RawAck);
        roundtrip(Msg::RawStat {
            file: "g/g.schema".into(),
            seq: 11,
        });
        roundtrip(Msg::RawStatReply { seq: 11, len: 42 });
    }

    #[test]
    fn tag_namespace_is_complete_and_distinct() {
        // Every tag in the namespace is unique ...
        let mut sorted: Vec<u32> = tags::ALL.iter().map(|&(t, _)| t).collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), tags::ALL.len());
        // ... names are unique too ...
        let mut names: Vec<&str> = tags::ALL.iter().map(|&(_, n)| n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), tags::ALL.len());
        // ... and every Msg variant's tag appears in the namespace.
        let variants = [
            Msg::Collective(CollectiveRequest {
                request: 0,
                participants: vec![],
                priority: 0,
                op: OpKind::Write,
                arrays: vec![],
                subchunk_bytes: 1,
                pipeline_depth: 1,
                sync_policy: SyncPolicy::PerFile,
            }),
            Msg::Fetch {
                request: 0,
                array: 0,
                seq: 0,
                region: Region::new(&[0], &[1]).unwrap(),
            },
            Msg::Data {
                request: 0,
                array: 0,
                seq: 0,
                region: Region::new(&[0], &[1]).unwrap(),
                payload: vec![].into(),
            },
            Msg::ServerDone { request: 0 },
            Msg::Complete { request: 0 },
            Msg::Release { request: 0 },
            Msg::Reject {
                request: 0,
                reason: AdmissionIssue::Saturated { live: 0, max: 0 },
            },
            Msg::Shutdown,
            Msg::RawWrite {
                file: String::new(),
                offset: 0,
                payload: vec![],
            },
            Msg::RawRead {
                file: String::new(),
                offset: 0,
                len: 0,
                seq: 0,
            },
            Msg::RawData {
                seq: 0,
                payload: vec![],
            },
            Msg::RawDone,
            Msg::RawAck,
            Msg::RawStat {
                file: String::new(),
                seq: 0,
            },
            Msg::RawStatReply { seq: 0, len: 0 },
        ];
        assert_eq!(variants.len(), tags::ALL.len());
        for v in &variants {
            assert!(
                tags::ALL.iter().any(|&(t, _)| t == v.tag()),
                "variant {v:?} has a tag outside the documented namespace"
            );
        }
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        assert!(matches!(
            Msg::decode(999, &[]),
            Err(PandaError::Decode { .. })
        ));
    }

    #[test]
    fn send_recv_over_fabric() {
        use panda_msg::InProcFabric;
        let (mut eps, _) = InProcFabric::new(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let msg = Msg::Fetch {
            request: 6,
            array: 1,
            seq: 2,
            region: Region::new(&[0], &[3]).unwrap(),
        };
        send_msg(&mut a, NodeId(1), &msg).unwrap();
        let (src, got) = recv_msg(&mut b, MatchSpec::tag(tags::FETCH)).unwrap();
        assert_eq!(src, NodeId(0));
        assert_eq!(got, msg);
    }

    #[test]
    fn recv_burst_blocks_once_then_drains() {
        use panda_msg::InProcFabric;
        let (mut eps, _) = InProcFabric::new(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let region = Region::new(&[0], &[2]).unwrap();
        for seq in 0..3u64 {
            send_data(&mut a, NodeId(1), 1, 0, seq, &region, vec![seq as u8; 4]).unwrap();
        }
        // Interleave a non-matching message: the burst must skip it.
        send_msg(&mut a, NodeId(1), &Msg::ServerDone { request: 1 }).unwrap();
        let batch = recv_burst(&mut b, MatchSpec::tag(tags::DATA)).unwrap();
        assert_eq!(batch.len(), 3);
        for (seq, msg) in batch.into_iter().enumerate() {
            assert!(matches!(msg, Msg::Data { seq: s, .. } if s == seq as u64));
        }
        let (_, done) = recv_msg(&mut b, MatchSpec::tag(tags::SERVER_DONE)).unwrap();
        assert_eq!(done, Msg::ServerDone { request: 1 });
    }

    #[test]
    fn send_data_is_wire_identical_to_owned_data() {
        use panda_msg::InProcFabric;
        let (mut eps, _) = InProcFabric::new(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let region = Region::new(&[1, 0], &[3, 4]).unwrap();
        send_data(&mut a, NodeId(1), 8, 2, 9, &region, vec![5u8; 16]).unwrap();
        let (_, got) = recv_msg(&mut b, MatchSpec::tag(tags::DATA)).unwrap();
        assert_eq!(
            got,
            Msg::Data {
                request: 8,
                array: 2,
                seq: 9,
                region,
                payload: vec![5u8; 16].into(),
            }
        );
    }

    #[test]
    fn framed_data_decodes_without_copying_the_body() {
        use panda_msg::InProcFabric;
        use std::sync::Arc;
        let (mut eps, _) = InProcFabric::new(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let region = Region::new(&[0], &[8]).unwrap();
        let body: Arc<[u8]> = Arc::from(vec![3u8; 8]);
        send_data(
            &mut a,
            NodeId(1),
            12,
            1,
            4,
            &region,
            Bytes::Shared(body.clone()),
        )
        .unwrap();
        let env = b.recv_matching(MatchSpec::tag(tags::DATA)).unwrap();
        let msg = Msg::decode_envelope(env).unwrap();
        match msg {
            Msg::Data {
                payload: Bytes::Shared(arc),
                request,
                array,
                seq,
                region: r,
            } => {
                assert!(Arc::ptr_eq(&arc, &body), "payload was copied");
                assert_eq!((request, array, seq), (12, 1, 4));
                assert_eq!(r, region);
            }
            other => panic!("expected shared Data payload, got {other:?}"),
        }
    }

    #[test]
    fn framed_data_with_bad_length_is_rejected() {
        use panda_msg::{Envelope, Payload};
        let region = Region::new(&[0], &[4]).unwrap();
        let mut w = Writer::new();
        w.u64(0); // request id
        w.u32(0);
        w.u64(1);
        w.region(&region);
        w.size(99); // lies about the body length
        let env = Envelope {
            src: NodeId(0),
            tag: tags::DATA,
            payload: Payload::Framed {
                head: w.finish(),
                body: vec![1, 2, 3, 4].into(),
            },
        };
        assert!(matches!(
            Msg::decode_envelope(env),
            Err(PandaError::Decode { .. })
        ));
    }
}
