//! Live service health: the gauges behind `/healthz`.
//!
//! Each server publishes three gauges after every scheduler pass —
//! admission-queue depth, live-request count, and disk-stage backlog —
//! plus a rejection counter bumped on every [`panda_obs::Event::AdmissionReject`].
//! A [`HealthSnapshot`] folds them into the three-state
//! [`HealthStatus`] the front door reports: `ok` when nothing waits,
//! `degraded` while any server's FIFO queue is non-empty, `unhealthy`
//! once a server's queue is at the configured cap — the point where the
//! next session request would be refused with
//! `AdmissionIssue::QueueFull`.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// One server's published gauges.
#[derive(Debug, Default)]
struct ServerGauges {
    queued: AtomicUsize,
    live: AtomicUsize,
    disk_backlog: AtomicUsize,
    rejected: AtomicU64,
}

/// Shared gauge registry: servers write, the scrape surface reads.
#[derive(Debug)]
pub struct ServiceHealth {
    max_concurrent: usize,
    max_queued: usize,
    servers: Box<[ServerGauges]>,
}

impl ServiceHealth {
    /// Zeroed gauges for `num_servers` servers under the deployment's
    /// admission caps.
    pub(crate) fn new(num_servers: usize, max_concurrent: usize, max_queued: usize) -> Self {
        ServiceHealth {
            max_concurrent,
            max_queued,
            servers: (0..num_servers).map(|_| ServerGauges::default()).collect(),
        }
    }

    /// Publish one server's current scheduler state (relaxed stores —
    /// this runs on every serve-loop pass).
    pub(crate) fn publish(&self, server: usize, queued: usize, live: usize, disk_backlog: usize) {
        let g = &self.servers[server];
        g.queued.store(queued, Ordering::Relaxed);
        g.live.store(live, Ordering::Relaxed);
        g.disk_backlog.store(disk_backlog, Ordering::Relaxed);
    }

    /// Count one admission rejection on `server`.
    pub(crate) fn note_reject(&self, server: usize) {
        self.servers[server]
            .rejected
            .fetch_add(1, Ordering::Relaxed);
    }

    /// The configured live-collective cap.
    pub fn max_concurrent(&self) -> usize {
        self.max_concurrent
    }

    /// The configured admission-queue cap.
    pub fn max_queued(&self) -> usize {
        self.max_queued
    }

    /// Read every gauge and derive the service status.
    pub fn snapshot(&self) -> HealthSnapshot {
        let per_server: Vec<ServerHealth> = self
            .servers
            .iter()
            .enumerate()
            .map(|(i, g)| ServerHealth {
                server: i,
                queued: g.queued.load(Ordering::Relaxed),
                live: g.live.load(Ordering::Relaxed),
                disk_backlog: g.disk_backlog.load(Ordering::Relaxed),
                rejected: g.rejected.load(Ordering::Relaxed),
            })
            .collect();
        let queued = per_server.iter().map(|s| s.queued).max().unwrap_or(0);
        let status = if self.max_queued > 0 && queued >= self.max_queued {
            HealthStatus::Unhealthy
        } else if queued > 0 {
            HealthStatus::Degraded
        } else {
            HealthStatus::Ok
        };
        HealthSnapshot {
            status,
            queued,
            live: per_server.iter().map(|s| s.live).sum(),
            disk_backlog: per_server.iter().map(|s| s.disk_backlog).sum(),
            rejected: per_server.iter().map(|s| s.rejected).sum(),
            max_concurrent: self.max_concurrent,
            max_queued: self.max_queued,
            per_server,
        }
    }
}

/// The three-state `/healthz` verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthStatus {
    /// No request is waiting anywhere.
    Ok,
    /// At least one server's admission queue is non-empty: requests are
    /// being delayed, not refused.
    Degraded,
    /// At least one server's queue has reached the configured cap: the
    /// next session request there is refused (`QueueFull`).
    Unhealthy,
}

impl HealthStatus {
    /// Stable lower-case name, used in the `/healthz` JSON body.
    pub fn name(self) -> &'static str {
        match self {
            HealthStatus::Ok => "ok",
            HealthStatus::Degraded => "degraded",
            HealthStatus::Unhealthy => "unhealthy",
        }
    }
}

/// One server's gauges at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerHealth {
    /// Server index.
    pub server: usize,
    /// Requests waiting in the admission queue.
    pub queued: usize,
    /// Collectives currently live.
    pub live: usize,
    /// Subchunks in flight in the pinned disk stage.
    pub disk_backlog: usize,
    /// Admission rejections since launch.
    pub rejected: u64,
}

/// The whole deployment's health at one instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// Derived service status.
    pub status: HealthStatus,
    /// Deepest admission queue across servers.
    pub queued: usize,
    /// Live collectives summed over servers.
    pub live: usize,
    /// Disk-stage backlog summed over servers.
    pub disk_backlog: usize,
    /// Admission rejections summed over servers.
    pub rejected: u64,
    /// The configured live-collective cap.
    pub max_concurrent: usize,
    /// The configured admission-queue cap.
    pub max_queued: usize,
    /// Per-server gauges.
    pub per_server: Vec<ServerHealth>,
}

impl HealthSnapshot {
    /// Render as the `/healthz` JSON body.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"status\":\"{}\",\"queued\":{},\"live\":{},\"disk_backlog\":{},\"rejected\":{},\"max_concurrent\":{},\"max_queued\":{},\"servers\":[",
            self.status.name(),
            self.queued,
            self.live,
            self.disk_backlog,
            self.rejected,
            self.max_concurrent,
            self.max_queued,
        );
        for (i, s) in self.per_server.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"server\":{},\"queued\":{},\"live\":{},\"disk_backlog\":{},\"rejected\":{}}}",
                s.server, s.queued, s.live, s.disk_backlog, s.rejected
            );
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_tracks_queue_depth() {
        let health = ServiceHealth::new(2, 4, 3);
        assert_eq!(health.snapshot().status, HealthStatus::Ok);

        health.publish(0, 1, 4, 2);
        let snap = health.snapshot();
        assert_eq!(snap.status, HealthStatus::Degraded);
        assert_eq!(snap.queued, 1);
        assert_eq!(snap.live, 4);
        assert_eq!(snap.disk_backlog, 2);

        health.publish(1, 3, 4, 0);
        assert_eq!(health.snapshot().status, HealthStatus::Unhealthy);

        health.publish(0, 0, 0, 0);
        health.publish(1, 0, 1, 0);
        assert_eq!(health.snapshot().status, HealthStatus::Ok);
    }

    #[test]
    fn zero_queue_cap_never_reports_unhealthy_from_queueing() {
        // With max_queued = 0 session requests are rejected rather than
        // queued, so the queue-depth rule cannot fire; fleet requests
        // (which always queue) still surface as degraded.
        let health = ServiceHealth::new(1, 1, 0);
        health.publish(0, 2, 1, 0);
        assert_eq!(health.snapshot().status, HealthStatus::Degraded);
    }

    #[test]
    fn rejections_accumulate_and_render() {
        let health = ServiceHealth::new(2, 4, 3);
        health.note_reject(1);
        health.note_reject(1);
        let snap = health.snapshot();
        assert_eq!(snap.rejected, 2);
        assert_eq!(snap.per_server[1].rejected, 2);
        let body = snap.to_json();
        panda_obs::json::validate(&body).expect("healthz body is valid JSON");
        assert!(body.contains("\"status\":\"ok\""));
        assert!(body.contains("\"rejected\":2"));
    }
}
