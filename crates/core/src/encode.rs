//! Wire encoding for the Panda protocol.
//!
//! Messages cross the `panda-msg` transport as bytes (as they would with
//! real MPI), so the protocol types need a serialization. The format is
//! a simple little-endian TLV-free layout: fixed-width integers,
//! length-prefixed byte strings, and composite types written field by
//! field. It is not a public interchange format — both ends are always
//! the same library version.

use panda_schema::{DataSchema, Dist, ElementType, Mesh, Region, Shape};

use crate::array::ArrayMeta;
use crate::error::PandaError;

/// Append-only byte writer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Consume the writer, returning the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Write a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a usize as u64.
    pub fn size(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Write a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.size(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Write a slice of usizes (length-prefixed).
    pub fn sizes(&mut self, v: &[usize]) {
        self.size(v.len());
        for &x in v {
            self.size(x);
        }
    }

    /// Write a region (lo then hi corners).
    pub fn region(&mut self, r: &Region) {
        self.sizes(r.lo());
        self.sizes(r.hi());
    }

    /// Write an element type.
    pub fn elem(&mut self, e: ElementType) {
        match e {
            ElementType::U8 => self.u8(0),
            ElementType::I32 => self.u8(1),
            ElementType::I64 => self.u8(2),
            ElementType::F32 => self.u8(3),
            ElementType::F64 => self.u8(4),
            ElementType::Opaque(n) => {
                self.u8(5);
                self.u32(n);
            }
        }
    }

    /// Write a distribution directive.
    pub fn dist(&mut self, d: Dist) {
        match d {
            Dist::Block => self.u8(0),
            Dist::Star => self.u8(1),
            Dist::Cyclic(b) => {
                self.u8(2);
                self.size(b);
            }
        }
    }

    /// Write a complete data schema.
    pub fn schema(&mut self, s: &DataSchema) {
        self.sizes(s.shape().dims());
        self.elem(s.elem());
        self.size(s.dists().len());
        for &d in s.dists() {
            self.dist(d);
        }
        self.sizes(s.mesh().dims());
    }

    /// Write array metadata (name + both schemas + subchunk override).
    pub fn array_meta(&mut self, a: &ArrayMeta) {
        self.str(a.name());
        self.schema(a.memory());
        self.schema(a.disk());
        self.u64(a.subchunk_override().map(|b| b as u64).unwrap_or(0));
    }
}

/// Sequential byte reader over an encoded message.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], PandaError> {
        if self.remaining() < n {
            return Err(PandaError::Decode { context });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, PandaError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Read a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, PandaError> {
        Ok(u32::from_le_bytes(self.take(4, "u32")?.try_into().unwrap()))
    }

    /// Read a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, PandaError> {
        Ok(u64::from_le_bytes(self.take(8, "u64")?.try_into().unwrap()))
    }

    /// Read a usize (encoded as u64).
    pub fn size(&mut self) -> Result<usize, PandaError> {
        Ok(self.u64()? as usize)
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<Vec<u8>, PandaError> {
        let n = self.size()?;
        Ok(self.take(n, "bytes")?.to_vec())
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, PandaError> {
        String::from_utf8(self.bytes()?).map_err(|_| PandaError::Decode { context: "utf8" })
    }

    /// Read a slice of usizes.
    pub fn sizes(&mut self) -> Result<Vec<usize>, PandaError> {
        let n = self.size()?;
        // Sanity-bound: each element takes 8 bytes.
        if n > self.remaining() / 8 {
            return Err(PandaError::Decode {
                context: "sizes length",
            });
        }
        (0..n).map(|_| self.size()).collect()
    }

    /// Read a region.
    pub fn region(&mut self) -> Result<Region, PandaError> {
        let lo = self.sizes()?;
        let hi = self.sizes()?;
        Region::new(&lo, &hi).map_err(|_| PandaError::Decode { context: "region" })
    }

    /// Read an element type.
    pub fn elem(&mut self) -> Result<ElementType, PandaError> {
        Ok(match self.u8()? {
            0 => ElementType::U8,
            1 => ElementType::I32,
            2 => ElementType::I64,
            3 => ElementType::F32,
            4 => ElementType::F64,
            5 => ElementType::Opaque(self.u32()?),
            _ => {
                return Err(PandaError::Decode {
                    context: "elem tag",
                })
            }
        })
    }

    /// Read a distribution directive.
    pub fn dist(&mut self) -> Result<Dist, PandaError> {
        Ok(match self.u8()? {
            0 => Dist::Block,
            1 => Dist::Star,
            2 => Dist::Cyclic(self.size()?),
            _ => {
                return Err(PandaError::Decode {
                    context: "dist tag",
                })
            }
        })
    }

    /// Read a complete data schema.
    pub fn schema(&mut self) -> Result<DataSchema, PandaError> {
        let dims = self.sizes()?;
        let elem = self.elem()?;
        let ndists = self.size()?;
        if ndists > 64 {
            return Err(PandaError::Decode {
                context: "dists length",
            });
        }
        let dists: Vec<Dist> = (0..ndists).map(|_| self.dist()).collect::<Result<_, _>>()?;
        let mesh_dims = self.sizes()?;
        let shape = Shape::new(&dims).map_err(|_| PandaError::Decode { context: "shape" })?;
        let mesh = Mesh::new(&mesh_dims).map_err(|_| PandaError::Decode { context: "mesh" })?;
        DataSchema::new(shape, elem, &dists, mesh)
            .map_err(|_| PandaError::Decode { context: "schema" })
    }

    /// Read array metadata.
    pub fn array_meta(&mut self) -> Result<ArrayMeta, PandaError> {
        let name = self.str()?;
        let memory = self.schema()?;
        let disk = self.schema()?;
        let override_bytes = self.u64()?;
        let mut meta = ArrayMeta::new(name, memory, disk).map_err(|_| PandaError::Decode {
            context: "array meta",
        })?;
        if override_bytes > 0 {
            meta = meta.with_subchunk_bytes(override_bytes as usize);
        }
        Ok(meta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 1);
        w.size(12345);
        w.str("panda");
        w.bytes(&[1, 2, 3]);
        w.sizes(&[9, 8, 7]);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.size().unwrap(), 12345);
        assert_eq!(r.str().unwrap(), "panda");
        assert_eq!(r.bytes().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.sizes().unwrap(), vec![9, 8, 7]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn region_roundtrip() {
        let reg = Region::new(&[1, 2, 3], &[4, 5, 6]).unwrap();
        let mut w = Writer::new();
        w.region(&reg);
        let buf = w.finish();
        assert_eq!(Reader::new(&buf).region().unwrap(), reg);
    }

    #[test]
    fn schema_and_meta_roundtrip() {
        let shape = Shape::new(&[16, 8, 4]).unwrap();
        let mem = DataSchema::new(
            shape.clone(),
            ElementType::F64,
            &[Dist::Block, Dist::Block, Dist::Star],
            Mesh::new(&[2, 2]).unwrap(),
        )
        .unwrap();
        let disk = DataSchema::traditional_order(shape, ElementType::F64, 3).unwrap();
        let meta = ArrayMeta::new("density", mem, disk).unwrap();
        let mut w = Writer::new();
        w.array_meta(&meta);
        let buf = w.finish();
        let got = Reader::new(&buf).array_meta().unwrap();
        assert_eq!(got, meta);
    }

    #[test]
    fn elem_variants_roundtrip() {
        for e in [
            ElementType::U8,
            ElementType::I32,
            ElementType::I64,
            ElementType::F32,
            ElementType::F64,
            ElementType::Opaque(24),
        ] {
            let mut w = Writer::new();
            w.elem(e);
            let buf = w.finish();
            assert_eq!(Reader::new(&buf).elem().unwrap(), e);
        }
    }

    #[test]
    fn truncated_input_errors() {
        let mut w = Writer::new();
        w.u64(42);
        let buf = w.finish();
        let mut r = Reader::new(&buf[..4]);
        assert!(matches!(r.u64(), Err(PandaError::Decode { .. })));
    }

    #[test]
    fn bogus_tags_error() {
        let buf = [9u8];
        assert!(Reader::new(&buf).elem().is_err());
        assert!(Reader::new(&buf).dist().is_err());
    }

    #[test]
    fn hostile_length_prefix_is_rejected() {
        // A length prefix far larger than the buffer must not allocate.
        let mut w = Writer::new();
        w.size(usize::MAX / 2);
        let buf = w.finish();
        assert!(Reader::new(&buf).sizes().is_err());
        assert!(Reader::new(&buf).bytes().is_err());
    }
}
