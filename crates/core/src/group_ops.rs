//! Array groups and the paper's application-facing operations.
//!
//! Figure 2 of the paper shows the intended programming model: the
//! application declares `Array` objects, collects them into an
//! `ArrayGroup`, and then issues whole-group collective operations —
//! `timestep()` inside the simulation loop, `checkpoint()` periodically,
//! and `restart()` to resume from the last checkpoint. This module
//! reproduces that API on top of [`PandaClient`].

use panda_msg::{MatchSpec, NodeId, Transport};

use crate::array::ArrayMeta;
use crate::client::PandaClient;
use crate::encode::{Reader, Writer};
use crate::error::PandaError;
use crate::protocol::{recv_msg, send_msg, tags, Msg};
use crate::request::{ReadSet, WriteSet};

/// Anything a group operation can submit collectives through: the
/// one-shot fleet path ([`PandaClient`]) or a multi-tenant service
/// session ([`crate::Session`]). The group operations are generic over
/// this trait, so the same `timestep`/`checkpoint`/`restart` loop runs
/// unchanged in either deployment.
pub trait CollectiveHandle {
    /// Perform a collective write of the prepared set.
    fn collective_write(&mut self, set: &WriteSet<'_>) -> Result<(), PandaError>;

    /// Perform a collective read into the prepared set.
    fn collective_read(&mut self, set: &mut ReadSet<'_>) -> Result<(), PandaError>;

    /// The raw control plane: the handle's transport and the NodeId of
    /// I/O node 0 (where group manifests and markers live).
    #[doc(hidden)]
    fn control(&mut self) -> (&mut dyn Transport, NodeId);
}

impl CollectiveHandle for PandaClient {
    fn collective_write(&mut self, set: &WriteSet<'_>) -> Result<(), PandaError> {
        self.write_set(set)
    }

    fn collective_read(&mut self, set: &mut ReadSet<'_>) -> Result<(), PandaError> {
        self.read_set(set)
    }

    fn control(&mut self) -> (&mut dyn Transport, NodeId) {
        let server0 = NodeId(self.num_clients());
        (self.transport_mut(), server0)
    }
}

/// A named group of arrays written and read together.
///
/// All compute nodes must hold identical group definitions (same name,
/// same arrays, same order) and call the collective methods together —
/// Panda "assumes all clients will participate in the collective i/o at
/// approximately the same time" (paper §2). The timestep counter
/// advances identically on every node because every node calls
/// [`ArrayGroup::timestep`].
#[derive(Debug, Clone)]
pub struct ArrayGroup {
    name: String,
    arrays: Vec<ArrayMeta>,
    timesteps_taken: usize,
    /// Number of checkpoints taken. Checkpoints alternate between two
    /// file generations (`ckpt-a`/`ckpt-b`) so that a crash *during* a
    /// checkpoint can never destroy the previous good one; `restart`
    /// reads the generation of the last completed checkpoint.
    checkpoints_taken: usize,
}

impl ArrayGroup {
    /// Create an empty group.
    pub fn new(name: impl Into<String>) -> Self {
        ArrayGroup {
            name: name.into(),
            arrays: Vec::new(),
            timesteps_taken: 0,
            checkpoints_taken: 0,
        }
    }

    /// Add an array to the group (paper: `simulation->include(...)`).
    pub fn include(&mut self, meta: ArrayMeta) -> &mut Self {
        self.arrays.push(meta);
        self
    }

    /// The group name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The arrays in inclusion order.
    pub fn arrays(&self) -> &[ArrayMeta] {
        &self.arrays
    }

    /// How many timesteps have been written so far.
    pub fn timesteps_taken(&self) -> usize {
        self.timesteps_taken
    }

    /// File tag for array `idx` at timestep `t`.
    pub fn timestep_tag(&self, idx: usize, t: usize) -> String {
        format!("{}/{}.ts{}", self.name, self.arrays[idx].name(), t)
    }

    /// How many checkpoints have been written so far.
    pub fn checkpoints_taken(&self) -> usize {
        self.checkpoints_taken
    }

    /// File tag for array `idx` in checkpoint generation `generation`
    /// (generations alternate between `a` and `b`).
    pub fn checkpoint_tag(&self, idx: usize, generation: usize) -> String {
        let g = if generation.is_multiple_of(2) {
            'a'
        } else {
            'b'
        };
        format!("{}/{}.ckpt-{}", self.name, self.arrays[idx].name(), g)
    }

    /// Lower the group's buffers into one [`WriteSet`], in group order.
    fn write_set<'a>(&'a self, tags: &'a [String], datas: &[&'a [u8]]) -> WriteSet<'a> {
        let mut set = WriteSet::new();
        for ((meta, tag), &data) in self.arrays.iter().zip(tags).zip(datas) {
            set = set.array(meta, tag.clone(), data);
        }
        set
    }

    /// File tags of every array at timestep `t`, in group order.
    fn timestep_tags(&self, t: usize) -> Vec<String> {
        (0..self.arrays.len())
            .map(|i| self.timestep_tag(i, t))
            .collect()
    }

    /// File tags of every array in checkpoint generation `generation`,
    /// in group order.
    fn checkpoint_tags(&self, generation: usize) -> Vec<String> {
        (0..self.arrays.len())
            .map(|i| self.checkpoint_tag(i, generation))
            .collect()
    }

    /// Collective read of every array from the given file tags — the
    /// shared tail of [`ArrayGroup::restart`] and
    /// [`ArrayGroup::read_timestep`].
    fn read_with_tags<H: CollectiveHandle + ?Sized>(
        &self,
        handle: &mut H,
        tags: &[String],
        datas: &mut [&mut [u8]],
    ) -> Result<(), PandaError> {
        let mut set = ReadSet::new();
        for ((meta, tag), data) in self.arrays.iter().zip(tags).zip(datas.iter_mut()) {
            set = set.array(meta, tag.clone(), data);
        }
        handle.collective_read(&mut set)
    }

    /// Collective: output all arrays for the current timestep and
    /// advance the timestep counter. `datas[i]` is this node's chunk of
    /// `arrays()[i]`.
    pub fn timestep<H: CollectiveHandle + ?Sized>(
        &mut self,
        handle: &mut H,
        datas: &[&[u8]],
    ) -> Result<(), PandaError> {
        self.check_arity(datas.len())?;
        let tags = self.timestep_tags(self.timesteps_taken);
        handle.collective_write(&self.write_set(&tags, datas))?;
        self.timesteps_taken += 1;
        Ok(())
    }

    /// Name of the group's checkpoint generation marker on the first
    /// I/O node. The marker records the count of *completed*
    /// checkpoints; it is written only after a checkpoint's data files
    /// have been written and synced, so its presence certifies that the
    /// generation it names is intact on disk.
    pub fn marker_file(&self) -> String {
        format!("{}/{}.ckpt", self.name, self.name)
    }

    /// Collective: write a checkpoint of all arrays.
    ///
    /// Generations alternate between two file sets, so the previous
    /// checkpoint stays intact until this one has completed on every
    /// I/O node; only then does the generation counter advance and the
    /// clients commit the generation marker. A crash
    /// mid-checkpoint therefore loses nothing: [`ArrayGroup::restart`]
    /// trusts the marker, which still names the previous generation.
    pub fn checkpoint<H: CollectiveHandle + ?Sized>(
        &mut self,
        handle: &mut H,
        datas: &[&[u8]],
    ) -> Result<(), PandaError> {
        self.check_arity(datas.len())?;
        let tags = self.checkpoint_tags(self.checkpoints_taken);
        handle.collective_write(&self.write_set(&tags, datas))?;
        // The collective has completed (files written and synced) —
        // commit the generation. Every client writes the identical
        // marker: the writes are idempotent, and going through each
        // client's own in-order connection guarantees the marker is
        // visible to that client's later operations (a master-only
        // write could race with another client's restart). The write is
        // deliberately unacknowledged — blocking here would deadlock
        // with a peer that has already entered the next collective and
        // is waiting on this client's pieces; per-source FIFO ordering
        // means any later stat/read from this client observes it.
        self.checkpoints_taken += 1;
        let mut w = Writer::new();
        w.str(&self.name);
        w.size(self.checkpoints_taken);
        w.size(self.timesteps_taken);
        w.size(self.arrays.len());
        let (transport, server0) = handle.control();
        send_msg(
            transport,
            server0,
            &Msg::RawWrite {
                file: self.marker_file(),
                offset: 0,
                payload: w.finish(),
            },
        )?;
        Ok(())
    }

    /// Collective: restore all arrays from the last completed
    /// checkpoint, as certified by the on-disk generation marker.
    ///
    /// Returns [`ConfigIssue::NoCheckpoint`](crate::error::ConfigIssue)
    /// when the group has never checkpointed, and
    /// [`ConfigIssue::CheckpointIncomplete`](crate::error::ConfigIssue)
    /// when checkpoint files may exist but no marker records a
    /// *completed* generation — i.e. a previous run crashed before
    /// finishing its first checkpoint, so neither `ckpt-a` nor `ckpt-b`
    /// can be trusted.
    pub fn restart<H: CollectiveHandle + ?Sized>(
        &self,
        handle: &mut H,
        datas: &mut [&mut [u8]],
    ) -> Result<(), PandaError> {
        self.check_arity(datas.len())?;
        if self.checkpoints_taken == 0 {
            return Err(PandaError::Config {
                issue: crate::error::ConfigIssue::NoCheckpoint {
                    group: self.name.clone(),
                },
            });
        }
        // The marker, not the in-memory counter, is authoritative for
        // which generation actually completed: after a crash the counter
        // comes from a manifest that may be newer than the last
        // completed checkpoint.
        let completed = self.read_marker(handle)?;
        let tags = self.checkpoint_tags(completed - 1);
        self.read_with_tags(handle, &tags, datas)
    }

    /// Collective: read back the arrays written at timestep `t` (e.g.
    /// for post-processing or visualization).
    pub fn read_timestep<H: CollectiveHandle + ?Sized>(
        &self,
        handle: &mut H,
        t: usize,
        datas: &mut [&mut [u8]],
    ) -> Result<(), PandaError> {
        self.check_arity(datas.len())?;
        let tags = self.timestep_tags(t);
        self.read_with_tags(handle, &tags, datas)
    }

    /// Collective: read a rectangular section of one array of timestep
    /// `t` — the visualization/post-processing access pattern ("give me
    /// plane 40 of the temperature field at step 7"). The buffer must
    /// be sized per [`PandaClient::section_bytes`].
    pub fn read_timestep_section<H: CollectiveHandle + ?Sized>(
        &self,
        handle: &mut H,
        t: usize,
        array_idx: usize,
        section: &panda_schema::Region,
        data: &mut [u8],
    ) -> Result<(), PandaError> {
        let tag = self.timestep_tag(array_idx, t);
        let mut set = ReadSet::new().section(&self.arrays[array_idx], tag, section.clone(), data);
        handle.collective_read(&mut set)
    }

    /// Name of the group's schema manifest file on the first I/O node
    /// (the paper's `ArrayGroup("Sim2", "simulation2.schema")`).
    pub fn manifest_file(&self) -> String {
        format!("{}/{}.schema", self.name, self.name)
    }

    /// Persist the group definition — name, arrays, both schemas, and
    /// the timestep counter — to the manifest file on I/O node 0, so a
    /// fresh process can [`ArrayGroup::load`] it and restart without
    /// re-declaring anything. Any single client may call this; it is
    /// idempotent.
    pub fn save_schema<H: CollectiveHandle + ?Sized>(
        &self,
        handle: &mut H,
    ) -> Result<(), PandaError> {
        let file = self.manifest_file();
        let (transport, server0) = handle.control();
        send_msg(
            transport,
            server0,
            &Msg::RawWrite {
                file: file.clone(),
                offset: 0,
                payload: self.encode_manifest(),
            },
        )?;
        // The follow-up stat doubles as an acknowledgement: the server
        // processes our messages in order, so a reply means the write
        // has been applied.
        let len = stat_file(handle, &file)?;
        if len == u64::MAX {
            return Err(PandaError::Protocol {
                detail: "manifest write was not applied".to_string(),
            });
        }
        Ok(())
    }

    /// Reconstruct a group from its manifest on I/O node 0.
    pub fn load<H: CollectiveHandle + ?Sized>(
        handle: &mut H,
        group_name: &str,
    ) -> Result<ArrayGroup, PandaError> {
        let file = format!("{group_name}/{group_name}.schema");
        let Some(payload) = fetch_file(handle, &file)? else {
            return Err(PandaError::Fs(panda_fs::FsError::NotFound { path: file }));
        };
        Self::decode_manifest(&payload)
    }

    /// Serialize the group definition to manifest bytes (name, both
    /// counters, every array's schemas). Offline tools use this pair to
    /// read/write `.schema` files without a running deployment.
    pub fn encode_manifest(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.str(&self.name);
        w.size(self.timesteps_taken);
        w.size(self.checkpoints_taken);
        w.size(self.arrays.len());
        for meta in &self.arrays {
            w.array_meta(meta);
        }
        w.finish()
    }

    /// Inverse of [`ArrayGroup::encode_manifest`].
    pub fn decode_manifest(payload: &[u8]) -> Result<ArrayGroup, PandaError> {
        let mut r = Reader::new(payload);
        let name = r.str()?;
        let timesteps_taken = r.size()?;
        let checkpoints_taken = r.size()?;
        let count = r.size()?;
        if count > 4096 {
            return Err(PandaError::Decode {
                context: "manifest array count",
            });
        }
        let arrays: Vec<ArrayMeta> = (0..count)
            .map(|_| r.array_meta())
            .collect::<Result<_, _>>()?;
        Ok(ArrayGroup {
            name,
            arrays,
            timesteps_taken,
            checkpoints_taken,
        })
    }

    /// Fetch and validate the generation marker from I/O node 0,
    /// returning the count of completed checkpoints (always ≥ 1).
    fn read_marker<H: CollectiveHandle + ?Sized>(
        &self,
        handle: &mut H,
    ) -> Result<usize, PandaError> {
        let incomplete = || PandaError::Config {
            issue: crate::error::ConfigIssue::CheckpointIncomplete {
                group: self.name.clone(),
            },
        };
        let Some(payload) = fetch_file(handle, &self.marker_file())? else {
            // Data files were (maybe partially) written but the marker
            // never landed: no generation is known-complete.
            return Err(incomplete());
        };
        let mut r = Reader::new(&payload);
        let name = r.str()?;
        let completed = r.size()?;
        if name != self.name || completed == 0 {
            return Err(incomplete());
        }
        Ok(completed)
    }

    fn check_arity(&self, n: usize) -> Result<(), PandaError> {
        if n != self.arrays.len() {
            return Err(PandaError::Config {
                issue: crate::error::ConfigIssue::GroupArity {
                    group: self.name.clone(),
                    arrays: self.arrays.len(),
                    buffers: n,
                },
            });
        }
        Ok(())
    }
}

/// Fetch a whole control file (manifest or marker) from I/O node 0 over
/// the raw plane: stat, then read its full length. `None` means the
/// file does not exist.
fn fetch_file<H: CollectiveHandle + ?Sized>(
    handle: &mut H,
    file: &str,
) -> Result<Option<Vec<u8>>, PandaError> {
    let len = stat_file(handle, file)?;
    if len == u64::MAX {
        return Ok(None);
    }
    let (transport, server0) = handle.control();
    send_msg(
        transport,
        server0,
        &Msg::RawRead {
            file: file.to_string(),
            offset: 0,
            len,
            seq: 0,
        },
    )?;
    let (_, msg) = recv_msg(transport, MatchSpec::tag(tags::RAW_DATA))?;
    let Msg::RawData { payload, .. } = msg else {
        unreachable!("matched RAW_DATA tag");
    };
    Ok(Some(payload))
}

/// Query a file's length on I/O node 0; `u64::MAX` means "not found".
fn stat_file<H: CollectiveHandle + ?Sized>(handle: &mut H, file: &str) -> Result<u64, PandaError> {
    let (transport, server0) = handle.control();
    send_msg(
        transport,
        server0,
        &Msg::RawStat {
            file: file.to_string(),
            seq: 0,
        },
    )?;
    let (_, msg) = recv_msg(transport, MatchSpec::tag(tags::RAW_STAT_REPLY))?;
    let Msg::RawStatReply { len, .. } = msg else {
        unreachable!("matched RAW_STAT_REPLY tag");
    };
    Ok(len)
}

/// Per-client storage for a group: one correctly-sized buffer per array.
///
/// Convenience for applications and examples; `GroupData::slices` /
/// `GroupData::slices_mut` adapt to the collective-call signatures.
#[derive(Debug, Clone)]
pub struct GroupData {
    buffers: Vec<Vec<u8>>,
}

impl GroupData {
    /// Allocate zeroed chunk buffers for compute node `rank`.
    pub fn zeroed(group: &ArrayGroup, rank: usize) -> Self {
        GroupData {
            buffers: group
                .arrays()
                .iter()
                .map(|meta| vec![0u8; meta.client_bytes(rank)])
                .collect(),
        }
    }

    /// Immutable views, in group order.
    pub fn slices(&self) -> Vec<&[u8]> {
        self.buffers.iter().map(|b| b.as_slice()).collect()
    }

    /// Mutable views, in group order.
    pub fn slices_mut(&mut self) -> Vec<&mut [u8]> {
        self.buffers.iter_mut().map(|b| b.as_mut_slice()).collect()
    }

    /// The buffer for array `idx`.
    pub fn buffer(&self, idx: usize) -> &[u8] {
        &self.buffers[idx]
    }

    /// Mutable buffer for array `idx`.
    pub fn buffer_mut(&mut self, idx: usize) -> &mut Vec<u8> {
        &mut self.buffers[idx]
    }

    /// Number of arrays.
    pub fn len(&self) -> usize {
        self.buffers.len()
    }

    /// True iff the group holds no arrays.
    pub fn is_empty(&self) -> bool {
        self.buffers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_schema::{DataSchema, ElementType, Mesh, Shape};

    fn meta(name: &str) -> ArrayMeta {
        let mem = DataSchema::block_all(
            Shape::new(&[8, 8]).unwrap(),
            ElementType::F64,
            Mesh::new(&[2, 2]).unwrap(),
        )
        .unwrap();
        ArrayMeta::natural(name, mem).unwrap()
    }

    #[test]
    fn group_bookkeeping() {
        let mut g = ArrayGroup::new("sim2");
        g.include(meta("temperature")).include(meta("pressure"));
        assert_eq!(g.name(), "sim2");
        assert_eq!(g.arrays().len(), 2);
        assert_eq!(g.timestep_tag(0, 3), "sim2/temperature.ts3");
        assert_eq!(g.checkpoint_tag(1, 0), "sim2/pressure.ckpt-a");
        assert_eq!(g.checkpoint_tag(1, 1), "sim2/pressure.ckpt-b");
        assert_eq!(g.checkpoints_taken(), 0);
        assert_eq!(g.timesteps_taken(), 0);
    }

    #[test]
    fn group_data_allocates_chunk_sizes() {
        let mut g = ArrayGroup::new("g");
        g.include(meta("a"));
        let d = GroupData::zeroed(&g, 0);
        assert_eq!(d.len(), 1);
        assert!(!d.is_empty());
        // 8x8 f64 over 4 clients → 16 elements × 8 bytes each.
        assert_eq!(d.buffer(0).len(), 16 * 8);
        assert_eq!(d.slices()[0].len(), 128);
    }
}
