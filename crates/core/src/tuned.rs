//! Tuned operating points: the knobs the auto-tuner picks.
//!
//! A [`TunedConfig`] bundles the three performance knobs the paper's §5
//! cost-model future work would choose for the application — subchunk
//! size, pipeline depth, and I/O worker-pool size — together with the
//! model's predicted wall time for the chosen point. It is produced by
//! the calibration pass in `panda_model::tuner` and consumed two ways:
//!
//! * **offline** — [`TunedConfig::apply`] folds the knobs into a
//!   [`PandaConfig`] before launch;
//! * **online** — [`WriteSet::tuned`](crate::WriteSet::tuned) /
//!   [`ReadSet::tuned`](crate::ReadSet::tuned) attach the knobs to one
//!   request, riding the wire's per-request `subchunk_bytes` /
//!   `pipeline_depth` fields, so different tenants of one
//!   [`PandaService`](crate::PandaService) run at different operating
//!   points without relaunching. `io_workers` is launch-scoped (the
//!   worker pool is shared by all requests), so the online path applies
//!   only the first two; the field still participates in validation.
//!
//! Either way the values go through the same typed checks as
//! [`PandaConfig`] itself — a tuned request is
//! validated at submit time ([`TunedConfig::validate`]) instead of
//! being trusted on the wire.

use panda_fs::SyncPolicy;

use crate::error::{ConfigIssue, PandaError};
use crate::runtime::PandaConfig;

/// One tuned operating point: the knobs plus the model's prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunedConfig {
    /// Subchunk subdivision cap in bytes.
    pub subchunk_bytes: usize,
    /// Server pipeline depth (1 = unpipelined).
    pub pipeline_depth: usize,
    /// Per-server I/O worker-pool size. Launch-scoped: per-request
    /// submission validates it but cannot resize a running pool.
    pub io_workers: usize,
    /// The model's predicted wall time for this point, seconds (0 when
    /// hand-built rather than produced by a calibration pass).
    pub predicted_s: f64,
}

impl TunedConfig {
    /// A hand-built operating point (no prediction attached).
    pub fn new(subchunk_bytes: usize, pipeline_depth: usize, io_workers: usize) -> Self {
        TunedConfig {
            subchunk_bytes,
            pipeline_depth,
            io_workers,
            predicted_s: 0.0,
        }
    }

    /// Check this point against the same invariants
    /// [`PandaConfig`] enforces at launch, under the
    /// submitting session's `sync_policy`: nonzero subchunk cap, depth,
    /// and worker count, and no per-write fsync combined with depth > 1.
    /// Returns the same typed [`ConfigIssue`]s.
    pub fn validate(&self, sync_policy: SyncPolicy) -> Result<(), PandaError> {
        if self.subchunk_bytes == 0 {
            return Err(PandaError::Config {
                issue: ConfigIssue::ZeroSubchunkBytes,
            });
        }
        if self.pipeline_depth == 0 {
            return Err(PandaError::Config {
                issue: ConfigIssue::ZeroPipelineDepth,
            });
        }
        if self.io_workers == 0 {
            return Err(PandaError::Config {
                issue: ConfigIssue::ZeroIoWorkers,
            });
        }
        if sync_policy == SyncPolicy::PerWrite && self.pipeline_depth > 1 {
            return Err(PandaError::Config {
                issue: ConfigIssue::SyncPolicyConflict {
                    pipeline_depth: self.pipeline_depth,
                },
            });
        }
        Ok(())
    }

    /// Fold this point into a launch configuration (the offline path):
    /// sets `subchunk_bytes`, `pipeline_depth`, and `io_workers`.
    pub fn apply(&self, config: PandaConfig) -> PandaConfig {
        config
            .with_subchunk_bytes(self.subchunk_bytes)
            .with_pipeline_depth(self.pipeline_depth)
            .with_io_workers(self.io_workers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_mirrors_launch_checks() {
        let ok = TunedConfig::new(1 << 15, 2, 2);
        ok.validate(SyncPolicy::PerFile).unwrap();

        let err = TunedConfig::new(0, 2, 2)
            .validate(SyncPolicy::PerFile)
            .unwrap_err();
        assert!(matches!(
            err,
            PandaError::Config {
                issue: ConfigIssue::ZeroSubchunkBytes
            }
        ));
        let err = TunedConfig::new(1, 0, 2)
            .validate(SyncPolicy::PerFile)
            .unwrap_err();
        assert!(matches!(
            err,
            PandaError::Config {
                issue: ConfigIssue::ZeroPipelineDepth
            }
        ));
        let err = TunedConfig::new(1, 1, 0)
            .validate(SyncPolicy::PerFile)
            .unwrap_err();
        assert!(matches!(
            err,
            PandaError::Config {
                issue: ConfigIssue::ZeroIoWorkers
            }
        ));
        // Per-write fsync pipelined is the same contradiction it is at
        // launch; depth 1 under per-write stays valid.
        let err = TunedConfig::new(1, 4, 1)
            .validate(SyncPolicy::PerWrite)
            .unwrap_err();
        assert!(matches!(
            err,
            PandaError::Config {
                issue: ConfigIssue::SyncPolicyConflict { pipeline_depth: 4 }
            }
        ));
        TunedConfig::new(1, 1, 1)
            .validate(SyncPolicy::PerWrite)
            .unwrap();
    }

    #[test]
    fn apply_folds_into_config() {
        let tuned = TunedConfig::new(4096, 4, 3);
        let config = tuned.apply(PandaConfig::new(2, 1));
        assert_eq!(config.subchunk_bytes, 4096);
        assert_eq!(config.pipeline_depth, 4);
        assert_eq!(config.io_workers, 3);
    }
}
