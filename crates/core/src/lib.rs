//! # panda-core — Panda 2.0: server-directed collective I/O
//!
//! A Rust reproduction of the Panda 2.0 array-I/O library described in
//! K. E. Seamons, Y. Chen, P. Jones, J. Jozwiak, M. Winslett,
//! *"Server-Directed Collective I/O in Panda"*, Supercomputing 1995.
//!
//! Panda performs collective input and output of multidimensional arrays
//! for SPMD applications. Arrays are distributed across *compute nodes*
//! (Panda clients) with HPF-style `BLOCK`/`*` memory schemas and stored
//! across *I/O nodes* (Panda servers) with independent disk schemas.
//! The key idea — **server-directed I/O** — is disk-directed I/O applied
//! at the logical level: after a single high-level request describing
//! the collective operation, the I/O nodes plan and *drive* the data
//! flow, pulling (writes) or pushing (reads) array regions from/to the
//! compute nodes in exactly the order that produces sequential file
//! access on every disk.
//!
//! ## Crate layout
//!
//! * [`mod@array`] — array metadata: shape, element type, memory & disk
//!   schemas ([`ArrayMeta`]);
//! * [`group_ops`] — the paper's application-facing API (Figure 2):
//!   [`ArrayGroup`] with `timestep` / `checkpoint` / `restart`;
//! * [`plan`] — the server-directed planner: round-robin chunk
//!   assignment, 1 MB subchunk schedules, client intersection lists,
//!   and the [`CollectiveSchedule`] lowering that flattens a whole
//!   request (one array or many) into the step stream the server's
//!   staged engine executes. Shared verbatim with the performance model
//!   in `panda-model`;
//! * [`protocol`] + [`encode`] — the typed client/server message set and
//!   its wire encoding;
//! * [`client`], [`server`], [`runtime`] — the threaded runtime over
//!   `panda-msg` transports and `panda-fs` file systems; every
//!   collective, at every pipeline depth and in both directions, runs
//!   through the server's one schedule engine (see [`server`]);
//! * [`baseline`] — comparison strategies from the paper's related-work
//!   discussion: naive client-directed I/O (traditional caching) and
//!   two-phase I/O \[Bordawekar93\].
//!
//! ## Observability
//!
//! Attach a [`panda_obs::Recorder`] with [`PandaConfig::with_recorder`]
//! and every layer reports into it: transports emit per-message events,
//! file systems per-call disk times, and the client/server runtime the
//! collective-path phases (fetch/exchange, disk, reorganization) keyed
//! by `(server, array, subchunk)`. [`PandaSystem::report`] aggregates
//! the recorder into one machine-readable [`panda_obs::RunReport`] with
//! the paper's Figure 5/6-style time decomposition. The default
//! [`panda_obs::NullRecorder`] keeps all of this strictly off the hot
//! path — no clock reads, no allocation.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use panda_core::{ArrayMeta, PandaConfig, PandaSystem, WriteSet};
//! use panda_schema::{DataSchema, ElementType, Mesh, Shape};
//! use panda_fs::MemFs;
//!
//! // A 16x16 f64 array, BLOCK,BLOCK over 4 clients, stored in
//! // traditional order across 2 I/O nodes.
//! let shape = Shape::new(&[16, 16]).unwrap();
//! let memory = DataSchema::block_all(shape.clone(), ElementType::F64,
//!     Mesh::new(&[2, 2]).unwrap()).unwrap();
//! let disk = DataSchema::traditional_order(shape, ElementType::F64, 2).unwrap();
//! let meta = ArrayMeta::new("temperature", memory, disk).unwrap();
//!
//! let (system, clients) = PandaSystem::builder()
//!     .config(PandaConfig::new(4, 2))
//!     .launch(|_| Arc::new(MemFs::new()))
//!     .unwrap();
//!
//! // Each client runs in its own thread in a real application; here we
//! // drive them from one thread via the collective helper.
//! let datas: Vec<Vec<u8>> = (0..4)
//!     .map(|r| vec![r as u8 + 1; meta.client_bytes(r)])
//!     .collect();
//! let mut handles: Vec<_> = clients.into_iter().collect();
//! std::thread::scope(|s| {
//!     for (client, data) in handles.iter_mut().zip(&datas) {
//!         let meta = &meta;
//!         s.spawn(move || {
//!             let set = WriteSet::new().array(meta, "temperature", data);
//!             client.write_set(&set).unwrap()
//!         });
//!     }
//! });
//! system.shutdown(handles).unwrap();
//! ```
//!
//! For the multi-tenant service mode — many independent sessions
//! submitting collectives that interleave on the same I/O nodes — see
//! the [`session`] module.

#![warn(missing_docs)]

pub mod array;
pub mod baseline;
pub mod client;
pub mod encode;
pub mod error;
pub mod group_ops;
pub mod health;
pub mod plan;
pub mod pool;
pub mod protocol;
pub mod request;
pub mod runtime;
pub mod scrape;
pub mod server;
pub mod session;
pub mod tuned;

pub use array::ArrayMeta;
pub use client::PandaClient;
pub use error::{AdmissionIssue, ConfigIssue, PandaError};
pub use group_ops::{ArrayGroup, CollectiveHandle, GroupData};
pub use health::{HealthSnapshot, HealthStatus, ServerHealth, ServiceHealth};
pub use plan::{
    build_server_plan, client_manifest, CollectiveSchedule, ScheduleFile, ScheduleStep, ServerPlan,
};
pub use pool::{IoPool, PinnedTask};
pub use protocol::OpKind;
pub use request::{ReadSet, WriteSet};
pub use runtime::{PandaConfig, PandaSystem, PandaSystemBuilder};
pub use scrape::MetricsServer;
pub use session::{PandaService, Session};
pub use tuned::TunedConfig;
