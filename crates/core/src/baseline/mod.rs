//! Comparison I/O strategies from the paper's related-work discussion.
//!
//! The paper (§4) contrasts server-directed I/O with two families of
//! prior approaches, both of which leave the compute nodes in charge of
//! deciding *where in each file* data lands:
//!
//! * **naive client-directed I/O** ([`naive`]) — each compute node
//!   independently issues positioned reads/writes for the strided
//!   pieces of its own memory chunk, in its own order. This is the
//!   access pattern a traditional caching file system (e.g. Intel CFS)
//!   sees: "i/o requests are served as they arrive", sequential overall
//!   but seek-ridden at each I/O node;
//! * **two-phase I/O** ([`two_phase`], after \[Bordawekar93\]) — compute
//!   nodes first permute data among themselves so that the in-memory
//!   distribution *conforms* to the on-disk layout, then ship each disk
//!   chunk to its I/O node in large contiguous pieces.
//!
//! Both baselines produce byte-identical files to the server-directed
//! path (verified by integration tests), so the differences measured by
//! the ablation bench — seek counts, request sizes, message counts —
//! are purely strategic.

pub mod naive;
pub mod two_phase;

use std::collections::HashMap;

use panda_msg::{Bytes, MatchSpec};
use panda_schema::{copy, Region};

use crate::array::ArrayMeta;
use crate::client::PandaClient;
use crate::error::PandaError;
use crate::plan::assigned_chunks;
use crate::protocol::{recv_msg, tags, Msg};

/// Where one disk chunk lives: which server's file, at which offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkPlacement {
    /// Linear disk-chunk index.
    pub chunk_idx: usize,
    /// Owning server (0-based I/O-node index).
    pub server: usize,
    /// Byte offset of the chunk inside that server's per-array file.
    pub file_offset: u64,
    /// The chunk's global-array region.
    pub region: Region,
}

/// Compute the placement of every nonempty disk chunk of `array` under
/// the round-robin assignment — the same layout the server-directed
/// planner produces, so baseline-written files are byte-identical to
/// Panda-written ones.
pub fn chunk_placements(array: &ArrayMeta, num_servers: usize) -> Vec<ChunkPlacement> {
    let grid = array.disk_grid();
    let elem = array.elem_size();
    let mut out = Vec::new();
    for server in 0..num_servers {
        let mut offset = 0u64;
        for chunk_idx in assigned_chunks(grid.num_chunks(), server, num_servers) {
            let region = grid.chunk_region(chunk_idx);
            if region.is_empty() {
                continue;
            }
            let bytes = region.num_bytes(elem) as u64;
            out.push(ChunkPlacement {
                chunk_idx,
                server,
                file_offset: offset,
                region,
            });
            offset += bytes;
        }
    }
    out.sort_by_key(|p| p.chunk_idx);
    out
}

/// Whole-chunk staging buffers on a proxy compute node, keyed by
/// disk-chunk index — the piece bookkeeping shared by both directions
/// of the two-phase strategy (assembly on writes, scattering on reads).
pub(crate) struct ChunkStage {
    chunks: HashMap<usize, (Region, Vec<u8>)>,
}

impl ChunkStage {
    /// Allocate a zeroed whole-chunk buffer per placement.
    pub(crate) fn new<'a>(
        placements: impl Iterator<Item = &'a ChunkPlacement>,
        elem: usize,
    ) -> Self {
        ChunkStage {
            chunks: placements
                .map(|p| {
                    (
                        p.chunk_idx,
                        (p.region.clone(), vec![0u8; p.region.num_bytes(elem)]),
                    )
                })
                .collect(),
        }
    }

    /// A staged chunk's global region and buffer.
    pub(crate) fn chunk(&self, chunk_idx: usize) -> (&Region, &[u8]) {
        let (region, buf) = &self.chunks[&chunk_idx];
        (region, buf)
    }

    /// Route one delivered piece into its chunk buffer, rejecting
    /// pieces for chunks this node does not proxy.
    pub(crate) fn unpack_piece(
        &mut self,
        chunk_idx: usize,
        region: &Region,
        payload: &[u8],
        elem: usize,
    ) -> Result<(), PandaError> {
        let (chunk_region, buf) =
            self.chunks
                .get_mut(&chunk_idx)
                .ok_or_else(|| PandaError::Protocol {
                    detail: format!("piece for chunk {chunk_idx} not proxied here"),
                })?;
        copy::unpack_region(buf, chunk_region, region, payload, elem)?;
        Ok(())
    }

    /// Splice raw bytes into a staged chunk at a byte offset (read
    /// direction; the caller has already validated the source).
    pub(crate) fn fill_at(&mut self, chunk_idx: usize, off: usize, payload: &[u8]) {
        let (_, buf) = self.chunks.get_mut(&chunk_idx).expect("tracked chunk");
        buf[off..off + payload.len()].copy_from_slice(payload);
    }
}

/// Drain exactly `count` `Data` pieces from the fabric, handing each to
/// `sink` as `(seq, region, payload)` — the one piece-collection loop
/// behind the baselines' exchange phases.
pub(crate) fn collect_pieces(
    client: &mut PandaClient,
    count: usize,
    mut sink: impl FnMut(u64, Region, Bytes) -> Result<(), PandaError>,
) -> Result<(), PandaError> {
    for _ in 0..count {
        let (_, msg) = recv_msg(client.transport_mut(), MatchSpec::tag(tags::DATA))?;
        let Msg::Data {
            seq,
            region,
            payload,
            ..
        } = msg
        else {
            unreachable!("matched DATA tag");
        };
        sink(seq, region, payload)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::build_server_plan;
    use panda_schema::{DataSchema, ElementType, Mesh, Shape};

    fn array() -> ArrayMeta {
        let shape = Shape::new(&[12, 8]).unwrap();
        let mem =
            DataSchema::block_all(shape.clone(), ElementType::F64, Mesh::new(&[2, 2]).unwrap())
                .unwrap();
        let disk = DataSchema::new(
            shape,
            ElementType::F64,
            &[panda_schema::Dist::Block, panda_schema::Dist::Block],
            Mesh::new(&[3, 2]).unwrap(),
        )
        .unwrap();
        ArrayMeta::new("a", mem, disk).unwrap()
    }

    #[test]
    fn placements_match_server_plans() {
        let a = array();
        for servers in [1usize, 2, 3, 4] {
            let placements = chunk_placements(&a, servers);
            for s in 0..servers {
                let plan = build_server_plan(&a, s, servers, 1 << 20);
                for chunk in &plan.chunks {
                    let p = placements
                        .iter()
                        .find(|p| p.chunk_idx == chunk.chunk_idx)
                        .expect("placement for every planned chunk");
                    assert_eq!(p.server, s);
                    assert_eq!(p.file_offset, chunk.file_offset);
                    assert_eq!(p.region, chunk.region);
                }
            }
            // Every nonempty chunk is placed exactly once.
            let grid = a.disk_grid();
            let nonempty = (0..grid.num_chunks())
                .filter(|&i| !grid.chunk_region(i).is_empty())
                .count();
            assert_eq!(placements.len(), nonempty);
        }
    }
}
