//! Naive client-directed I/O (the traditional-caching access pattern).
//!
//! Each compute node walks its own memory chunk, computes where every
//! strided row of it lives on disk, and fires positioned requests at the
//! owning I/O nodes in *its own* traversal order. Since many clients do
//! this concurrently, each I/O node sees an interleaved stream of small
//! requests at scattered offsets — the paper's "random-seeming pattern
//! of read and write requests arriving at i/o nodes" that defeats file-
//! system prefetching. Contrast with the server-directed path, which
//! issues the same bytes as large strictly-sequential accesses.

use std::collections::HashMap;

use panda_msg::{MatchSpec, NodeId};
use panda_schema::copy::offset_in_region;

use crate::array::ArrayMeta;
use crate::baseline::chunk_placements;
use crate::client::PandaClient;
use crate::error::PandaError;
use crate::protocol::{recv_msg, send_msg, tags, Msg};
use crate::server::ServerNode;

/// One strided run: `len` bytes at `file_offset` of server `server`'s
/// file, mirroring bytes at `buf_offset` of the client's chunk buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Run {
    /// Owning I/O node.
    pub server: usize,
    /// Byte offset in that server's per-array file.
    pub file_offset: u64,
    /// Byte offset in the client's chunk buffer.
    pub buf_offset: usize,
    /// Run length in bytes.
    pub len: usize,
}

/// Enumerate the runs of `client`'s memory chunk of `array`, in the
/// client's natural (row-major) traversal order. Public so the
/// performance model can cost the same access pattern the baseline
/// executes.
pub fn client_runs(array: &ArrayMeta, client: usize, num_servers: usize) -> Vec<Run> {
    let elem = array.elem_size();
    let my_region = array.client_region(client);
    if my_region.is_empty() {
        return Vec::new();
    }
    let placements = chunk_placements(array, num_servers);
    let by_chunk: HashMap<usize, &_> = placements.iter().map(|p| (p.chunk_idx, p)).collect();
    let disk_grid = array.disk_grid();

    let mut runs = Vec::new();
    for chunk_idx in disk_grid.chunks_intersecting(&my_region) {
        let placement = by_chunk[&chunk_idx];
        let isect = placement
            .region
            .intersect(&my_region)
            .expect("intersecting chunk");
        let rank = isect.rank();
        let row_elems = if rank == 0 { 1 } else { isect.extent(rank - 1) };
        for row_start in isect.iter_rows() {
            let file_offset = placement.file_offset
                + offset_in_region(&placement.region, &row_start, elem) as u64;
            let buf_offset = offset_in_region(&my_region, &row_start, elem);
            runs.push(Run {
                server: placement.server,
                file_offset,
                buf_offset,
                len: row_elems * elem,
            });
        }
    }
    runs
}

/// Completion barrier shared by both baselines: tell every server we are
/// done, wait for every acknowledgement.
pub(crate) fn raw_barrier(client: &mut PandaClient) -> Result<(), PandaError> {
    let num_clients = client.num_clients();
    let num_servers = client.num_servers();
    for s in 0..num_servers {
        send_msg(
            client.transport_mut(),
            NodeId(num_clients + s),
            &Msg::RawDone,
        )?;
    }
    for _ in 0..num_servers {
        let (_, msg) = recv_msg(client.transport_mut(), MatchSpec::tag(tags::RAW_ACK))?;
        debug_assert_eq!(msg, Msg::RawAck);
    }
    Ok(())
}

/// Collective write under the naive strategy. Every client must call
/// this; files produced are byte-identical to the server-directed path.
pub fn naive_write(
    client: &mut PandaClient,
    array: &ArrayMeta,
    file_tag: &str,
    data: &[u8],
) -> Result<(), PandaError> {
    let expected = array.client_bytes(client.rank());
    if data.len() != expected {
        return Err(PandaError::BadClientBuffer {
            array: array.name().to_string(),
            expected,
            actual: data.len(),
        });
    }
    let num_clients = client.num_clients();
    for run in client_runs(array, client.rank(), client.num_servers()) {
        let payload = data[run.buf_offset..run.buf_offset + run.len].to_vec();
        send_msg(
            client.transport_mut(),
            NodeId(num_clients + run.server),
            &Msg::RawWrite {
                file: ServerNode::file_name(file_tag, run.server),
                offset: run.file_offset,
                payload,
            },
        )?;
    }
    raw_barrier(client)
}

/// Collective read under the naive strategy.
pub fn naive_read(
    client: &mut PandaClient,
    array: &ArrayMeta,
    file_tag: &str,
    data: &mut [u8],
) -> Result<(), PandaError> {
    let expected = array.client_bytes(client.rank());
    if data.len() != expected {
        return Err(PandaError::BadClientBuffer {
            array: array.name().to_string(),
            expected,
            actual: data.len(),
        });
    }
    let num_clients = client.num_clients();
    let runs = client_runs(array, client.rank(), client.num_servers());
    // Issue everything, then collect replies by sequence number.
    let mut by_seq: HashMap<u64, (usize, usize)> = HashMap::new();
    for (seq, run) in runs.iter().enumerate() {
        send_msg(
            client.transport_mut(),
            NodeId(num_clients + run.server),
            &Msg::RawRead {
                file: ServerNode::file_name(file_tag, run.server),
                offset: run.file_offset,
                len: run.len as u64,
                seq: seq as u64,
            },
        )?;
        by_seq.insert(seq as u64, (run.buf_offset, run.len));
    }
    while !by_seq.is_empty() {
        let (_, msg) = recv_msg(client.transport_mut(), MatchSpec::tag(tags::RAW_DATA))?;
        let Msg::RawData { seq, payload } = msg else {
            unreachable!("matched RAW_DATA tag");
        };
        let (buf_offset, len) = by_seq.remove(&seq).ok_or_else(|| PandaError::Protocol {
            detail: format!("unexpected raw data seq {seq}"),
        })?;
        if payload.len() != len {
            return Err(PandaError::Protocol {
                detail: format!("raw data length {} != requested {len}", payload.len()),
            });
        }
        data[buf_offset..buf_offset + len].copy_from_slice(&payload);
    }
    raw_barrier(client)
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_schema::{DataSchema, ElementType, Mesh, Shape};

    fn traditional(dims: &[usize], mesh: &[usize], servers: usize) -> ArrayMeta {
        let shape = Shape::new(dims).unwrap();
        let mem = DataSchema::block_all(shape.clone(), ElementType::U8, Mesh::new(mesh).unwrap())
            .unwrap();
        let disk = DataSchema::traditional_order(shape, ElementType::U8, servers).unwrap();
        ArrayMeta::new("a", mem, disk).unwrap()
    }

    #[test]
    fn runs_cover_client_chunk_exactly() {
        let a = traditional(&[8, 8], &[2, 2], 2);
        for c in 0..4 {
            let runs = client_runs(&a, c, 2);
            let total: usize = runs.iter().map(|r| r.len).sum();
            assert_eq!(total, a.client_bytes(c));
            // Buffer offsets are disjoint.
            let mut covered = vec![false; a.client_bytes(c)];
            for r in &runs {
                for flag in &mut covered[r.buf_offset..r.buf_offset + r.len] {
                    assert!(!*flag);
                    *flag = true;
                }
            }
            assert!(covered.iter().all(|&x| x));
        }
    }

    #[test]
    fn runs_are_strided_under_reorganization() {
        // 8x8 u8, memory 2x2 blocks (4x4 per client), disk BLOCK,* over
        // 2 servers (4 rows per server). Client 0 (rows 0-3, cols 0-3)
        // maps to server 0 as 4 runs of 4 bytes — strided, not one run.
        let a = traditional(&[8, 8], &[2, 2], 2);
        let runs = client_runs(&a, 0, 2);
        assert_eq!(runs.len(), 4);
        assert!(runs.iter().all(|r| r.len == 4));
        assert!(runs.iter().all(|r| r.server == 0));
        // File offsets jump by a full row (8 bytes) between runs.
        assert_eq!(runs[1].file_offset - runs[0].file_offset, 8);
    }

    #[test]
    fn natural_chunking_runs_coalesce() {
        // Memory == disk schema: the client's whole chunk is one
        // contiguous range of one server's file... per chunk row-major
        // iteration the whole intersection is the full chunk, and rows
        // coalesce only if the region spans full width; with natural
        // chunking intersection == chunk == full region of the chunk
        // layout → iter_rows gives extent-0 rows but offsets are
        // consecutive.
        let shape = Shape::new(&[8, 8]).unwrap();
        let mem =
            DataSchema::block_all(shape.clone(), ElementType::U8, Mesh::new(&[2, 2]).unwrap())
                .unwrap();
        let a = ArrayMeta::natural("n", mem).unwrap();
        let runs = client_runs(&a, 1, 2);
        // 4x4 chunk → 4 rows of 4 bytes, consecutive in the file.
        assert_eq!(runs.len(), 4);
        for w in runs.windows(2) {
            assert_eq!(w[1].file_offset, w[0].file_offset + w[0].len as u64);
        }
    }
}
