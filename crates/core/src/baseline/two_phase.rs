//! Two-phase collective I/O \[Bordawekar93\].
//!
//! Phase 1: the compute nodes permute data among themselves so that the
//! in-memory distribution *conforms* to the on-disk layout — each disk
//! chunk is assembled, whole and in traditional order, on a designated
//! *proxy* compute node (`chunk mod num_clients`). Phase 2: each proxy
//! ships its assembled chunks to the owning I/O node as large
//! consecutive positioned writes. Reads run the two phases in reverse.
//!
//! Compared with the naive strategy this trades extra client↔client
//! network volume for far better disk access; compared with server-
//! directed I/O it needs whole-chunk staging buffers on compute nodes
//! and still interleaves requests from different proxies at each I/O
//! node.

use std::collections::HashMap;

use panda_msg::{MatchSpec, NodeId};
use panda_schema::copy;

use crate::array::ArrayMeta;
use crate::baseline::naive::raw_barrier;
use crate::baseline::{chunk_placements, collect_pieces, ChunkPlacement, ChunkStage};
use crate::client::PandaClient;
use crate::error::PandaError;
use crate::protocol::{recv_msg, send_msg, tags, Msg};
use crate::server::ServerNode;

/// The proxy compute node responsible for assembling a disk chunk.
fn proxy_of(chunk_idx: usize, num_clients: usize) -> usize {
    chunk_idx % num_clients
}

/// The chunks `client` proxies, with how many pieces each receives in
/// phase 1.
fn proxied_chunks<'a>(
    array: &ArrayMeta,
    placements: &'a [ChunkPlacement],
    client: usize,
    num_clients: usize,
) -> Vec<(&'a ChunkPlacement, usize)> {
    let mem_grid = array.memory_grid();
    placements
        .iter()
        .filter(|p| proxy_of(p.chunk_idx, num_clients) == client)
        .map(|p| (p, mem_grid.chunks_intersecting(&p.region).len()))
        .collect()
}

/// Collective write under the two-phase strategy. Every client calls
/// this; files are byte-identical to the server-directed path.
pub fn two_phase_write(
    client: &mut PandaClient,
    array: &ArrayMeta,
    file_tag: &str,
    data: &[u8],
    stage_bytes: usize,
) -> Result<(), PandaError> {
    let rank = client.rank();
    let num_clients = client.num_clients();
    let num_servers = client.num_servers();
    let elem = array.elem_size();
    let expected = array.client_bytes(rank);
    if data.len() != expected {
        return Err(PandaError::BadClientBuffer {
            array: array.name().to_string(),
            expected,
            actual: data.len(),
        });
    }
    let placements = chunk_placements(array, num_servers);
    let my_region = array.client_region(rank);

    // Phase 1a: scatter my pieces to the chunk proxies.
    if !my_region.is_empty() {
        for p in &placements {
            if let Some(isect) = p.region.intersect(&my_region) {
                let payload = copy::pack_region(data, &my_region, &isect, elem)?;
                send_msg(
                    client.transport_mut(),
                    NodeId(proxy_of(p.chunk_idx, num_clients)),
                    &Msg::Data {
                        request: 0,
                        array: 0,
                        seq: p.chunk_idx as u64,
                        region: isect,
                        payload: payload.into(),
                    },
                )?;
            }
        }
    }

    // Phase 1b: assemble the chunks I proxy.
    let mine = proxied_chunks(array, &placements, rank, num_clients);
    let mut stage = ChunkStage::new(mine.iter().map(|(p, _)| *p), elem);
    let outstanding: usize = mine.iter().map(|(_, n)| n).sum();
    collect_pieces(client, outstanding, |seq, region, payload| {
        stage.unpack_piece(seq as usize, &region, &payload, elem)
    })?;

    // Phase 2: ship each assembled chunk to its I/O node in large
    // consecutive pieces.
    for (p, _) in &mine {
        let (_, buf) = stage.chunk(p.chunk_idx);
        let file = ServerNode::file_name(file_tag, p.server);
        let mut off = 0usize;
        while off < buf.len() {
            let len = stage_bytes.min(buf.len() - off);
            send_msg(
                client.transport_mut(),
                NodeId(num_clients + p.server),
                &Msg::RawWrite {
                    file: file.clone(),
                    offset: p.file_offset + off as u64,
                    payload: buf[off..off + len].to_vec(),
                },
            )?;
            off += len;
        }
    }
    raw_barrier(client)
}

/// Collective read under the two-phase strategy.
pub fn two_phase_read(
    client: &mut PandaClient,
    array: &ArrayMeta,
    file_tag: &str,
    data: &mut [u8],
    stage_bytes: usize,
) -> Result<(), PandaError> {
    let rank = client.rank();
    let num_clients = client.num_clients();
    let num_servers = client.num_servers();
    let elem = array.elem_size();
    let expected = array.client_bytes(rank);
    if data.len() != expected {
        return Err(PandaError::BadClientBuffer {
            array: array.name().to_string(),
            expected,
            actual: data.len(),
        });
    }
    let placements = chunk_placements(array, num_servers);
    let my_region = array.client_region(rank);
    let mem_grid = array.memory_grid();

    // Phase 1: proxies pull their chunks off disk in large consecutive
    // reads.
    let mine = proxied_chunks(array, &placements, rank, num_clients);
    let mut reads: HashMap<u64, (usize, usize, usize)> = HashMap::new(); // seq → (chunk, off, len)
    let mut next_seq = 0u64;
    for (p, _) in &mine {
        let bytes = p.region.num_bytes(elem);
        let file = ServerNode::file_name(file_tag, p.server);
        let mut off = 0usize;
        while off < bytes {
            let len = stage_bytes.min(bytes - off);
            send_msg(
                client.transport_mut(),
                NodeId(num_clients + p.server),
                &Msg::RawRead {
                    file: file.clone(),
                    offset: p.file_offset + off as u64,
                    len: len as u64,
                    seq: next_seq,
                },
            )?;
            reads.insert(next_seq, (p.chunk_idx, off, len));
            next_seq += 1;
            off += len;
        }
    }
    let mut stage = ChunkStage::new(mine.iter().map(|(p, _)| *p), elem);
    while !reads.is_empty() {
        let (_, msg) = recv_msg(client.transport_mut(), MatchSpec::tag(tags::RAW_DATA))?;
        let Msg::RawData { seq, payload } = msg else {
            unreachable!("matched RAW_DATA tag");
        };
        let (chunk_idx, off, len) = reads.remove(&seq).ok_or_else(|| PandaError::Protocol {
            detail: format!("unexpected raw data seq {seq}"),
        })?;
        if payload.len() != len {
            return Err(PandaError::Protocol {
                detail: "short raw read".to_string(),
            });
        }
        stage.fill_at(chunk_idx, off, &payload);
    }

    // Phase 2: proxies scatter pieces to the owning compute nodes.
    for (p, _) in &mine {
        let (chunk_region, buf) = stage.chunk(p.chunk_idx);
        for owner in mem_grid.chunks_intersecting(&p.region) {
            let owner_region = mem_grid.chunk_region(owner);
            let isect = owner_region
                .intersect(&p.region)
                .expect("intersecting chunk");
            let payload = copy::pack_region(buf, chunk_region, &isect, elem)?;
            send_msg(
                client.transport_mut(),
                NodeId(owner),
                &Msg::Data {
                    request: 0,
                    array: 0,
                    seq: p.chunk_idx as u64,
                    region: isect,
                    payload: payload.into(),
                },
            )?;
        }
    }

    // Collect my pieces: one per disk chunk overlapping my region.
    let expected_pieces = if my_region.is_empty() {
        0
    } else {
        array.disk_grid().chunks_intersecting(&my_region).len()
    };
    collect_pieces(client, expected_pieces, |_seq, region, payload| {
        copy::unpack_region(data, &my_region, &region, &payload, elem)?;
        Ok(())
    })?;
    raw_barrier(client)
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_schema::{DataSchema, ElementType, Mesh, Shape};

    #[test]
    fn proxy_assignment_is_balanced() {
        let counts: Vec<usize> = (0..8)
            .map(|c| (0..16).filter(|&i| proxy_of(i, 8) == c).count())
            .collect();
        assert!(counts.iter().all(|&c| c == 2));
    }

    #[test]
    fn proxied_chunks_cover_all_chunks_once() {
        let shape = Shape::new(&[12, 8]).unwrap();
        let mem =
            DataSchema::block_all(shape.clone(), ElementType::U8, Mesh::new(&[2, 2]).unwrap())
                .unwrap();
        let disk = DataSchema::traditional_order(shape, ElementType::U8, 3).unwrap();
        let a = ArrayMeta::new("a", mem, disk).unwrap();
        let placements = chunk_placements(&a, 3);
        let mut seen = 0;
        for c in 0..4 {
            seen += proxied_chunks(&a, &placements, c, 4).len();
        }
        assert_eq!(seen, placements.len());
    }
}
