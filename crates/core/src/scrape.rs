//! The scrape surface: a minimal TCP listener answering `/metrics` and
//! `/healthz`.
//!
//! [`MetricsServer`] is deliberately not a web framework — it is a
//! single background thread on a non-blocking [`TcpListener`] speaking
//! just enough HTTP/1.1 for a Prometheus scraper or a load balancer's
//! health probe:
//!
//! * `GET /metrics` — the deployment recorder's
//!   [`MetricsSnapshot`](panda_obs::MetricsSnapshot) rendered as
//!   Prometheus text exposition (when a
//!   [`MetricsHub`](panda_obs::MetricsHub) is attached, directly or via
//!   a [`FanoutRecorder`](panda_obs::FanoutRecorder)), followed by the
//!   live health gauges: admission-queue depth, live-request count,
//!   disk-stage backlog, and rejection counts — both fleet-wide and per
//!   server.
//! * `GET /healthz` — the [`HealthSnapshot`](crate::HealthSnapshot)
//!   JSON body. HTTP `200` while the service is `ok` or `degraded`,
//!   `503` once a server's admission queue is at its cap (the next
//!   session request would be refused).
//!
//! Start one with [`PandaService::serve_metrics`](crate::PandaService::serve_metrics)
//! (or [`MetricsServer::start`] against any recorder + gauge pair);
//! bind to port 0 to let the OS pick and read the real address back
//! with [`MetricsServer::addr`].

use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use panda_obs::Recorder;

use crate::health::{HealthStatus, ServiceHealth};

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_IDLE: Duration = Duration::from_millis(2);

/// Per-connection read/write timeout: a stalled scraper cannot wedge
/// the accept loop for longer than this.
const CONN_TIMEOUT: Duration = Duration::from_millis(500);

/// Largest request head we are willing to buffer.
const MAX_HEAD: usize = 8 * 1024;

/// The background scrape listener. Stops (and joins its thread) on
/// [`MetricsServer::stop`] or drop.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` and serve `/metrics` from `recorder` and `/healthz`
    /// from `health` until stopped.
    pub fn start(
        addr: impl ToSocketAddrs,
        recorder: Arc<dyn Recorder>,
        health: Arc<ServiceHealth>,
    ) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("panda-scrape".to_string())
            .spawn(move || loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        // One scrape at a time: probes are tiny and a
                        // broken client is bounded by CONN_TIMEOUT.
                        let _ = serve_conn(stream, recorder.as_ref(), &health);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        if stop_flag.load(Ordering::Relaxed) {
                            return;
                        }
                        std::thread::sleep(ACCEPT_IDLE);
                    }
                    Err(_) => {
                        if stop_flag.load(Ordering::Relaxed) {
                            return;
                        }
                        std::thread::sleep(ACCEPT_IDLE);
                    }
                }
            })?;
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the listener and join its thread.
    pub fn stop(mut self) {
        self.shut();
    }

    fn shut(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shut();
    }
}

/// Serve one connection: read the request head, answer, close.
fn serve_conn(
    mut stream: TcpStream,
    recorder: &dyn Recorder,
    health: &ServiceHealth,
) -> io::Result<()> {
    stream.set_read_timeout(Some(CONN_TIMEOUT))?;
    stream.set_write_timeout(Some(CONN_TIMEOUT))?;
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > MAX_HEAD {
            break;
        }
    }
    let request_line = std::str::from_utf8(&head)
        .unwrap_or("")
        .lines()
        .next()
        .unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                metrics_body(recorder, health),
            ),
            "/healthz" => {
                let snap = health.snapshot();
                let status = match snap.status {
                    HealthStatus::Unhealthy => "503 Service Unavailable",
                    HealthStatus::Ok | HealthStatus::Degraded => "200 OK",
                };
                (status, "application/json", snap.to_json())
            }
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found\n".to_string(),
            ),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// The `/metrics` body: hub exposition (when a hub is attached) plus
/// the health gauges, which exist regardless of the recorder.
fn metrics_body(recorder: &dyn Recorder, health: &ServiceHealth) -> String {
    use std::fmt::Write as _;
    let mut out = match recorder.metrics() {
        Some(snapshot) => snapshot.to_prometheus(),
        None => "# no MetricsHub attached to this deployment's recorder\n".to_string(),
    };
    let snap = health.snapshot();
    let status_code = match snap.status {
        HealthStatus::Ok => 0,
        HealthStatus::Degraded => 1,
        HealthStatus::Unhealthy => 2,
    };
    let _ = write!(
        out,
        "# HELP panda_health_status Service status (0 ok, 1 degraded, 2 unhealthy).\n\
         # TYPE panda_health_status gauge\n\
         panda_health_status {status_code}\n\
         # HELP panda_admission_queue_depth Requests waiting in each server's admission queue.\n\
         # TYPE panda_admission_queue_depth gauge\n"
    );
    for s in &snap.per_server {
        let _ = writeln!(
            out,
            "panda_admission_queue_depth{{server=\"{}\"}} {}",
            s.server, s.queued
        );
    }
    let _ = write!(
        out,
        "# HELP panda_live_requests Collectives currently live on each server.\n\
         # TYPE panda_live_requests gauge\n"
    );
    for s in &snap.per_server {
        let _ = writeln!(
            out,
            "panda_live_requests{{server=\"{}\"}} {}",
            s.server, s.live
        );
    }
    let _ = write!(
        out,
        "# HELP panda_disk_backlog Subchunks in flight in each server's pinned disk stage.\n\
         # TYPE panda_disk_backlog gauge\n"
    );
    for s in &snap.per_server {
        let _ = writeln!(
            out,
            "panda_disk_backlog{{server=\"{}\"}} {}",
            s.server, s.disk_backlog
        );
    }
    let _ = write!(
        out,
        "# HELP panda_admission_rejects_total Admission rejections since launch.\n\
         # TYPE panda_admission_rejects_total counter\n\
         panda_admission_rejects_total {}\n",
        snap.rejected
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_obs::{Event, MetricsHub, OpDir};

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect scrape listener");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("response has a header/body split");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn scrapes_metrics_and_health() {
        let hub = Arc::new(MetricsHub::new());
        hub.record(
            5,
            &Event::RequestIssued {
                request: 1 << 32,
                op: OpDir::Write,
                arrays: 1,
                pipeline_depth: 2,
            },
        );
        let health = Arc::new(ServiceHealth::new(2, 4, 3));
        health.publish(0, 0, 1, 0);
        let server = MetricsServer::start("127.0.0.1:0", hub, Arc::clone(&health))
            .expect("bind scrape listener");
        let addr = server.addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "head: {head}");
        assert!(body.contains("panda_events_total"), "hub families present");
        assert!(body.contains("panda_health_status 0"));
        assert!(body.contains("panda_live_requests{server=\"0\"} 1"));

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert!(body.contains("\"status\":\"ok\""));
        panda_obs::json::validate(&body).expect("healthz body is JSON");

        // Queue at cap: unhealthy, 503.
        health.publish(1, 3, 4, 0);
        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 503"), "head: {head}");
        assert!(body.contains("\"status\":\"unhealthy\""));
        let (_, body) = get(addr, "/metrics");
        assert!(body.contains("panda_health_status 2"));

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"));

        server.stop();
    }
}
