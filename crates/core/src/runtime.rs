//! Launching and tearing down a Panda deployment.
//!
//! A [`PandaSystem`] owns the I/O-node threads; [`PandaClient`]s are
//! handed to the application, one per compute node. Ranks follow the
//! paper's architecture diagram (Figure 1): clients occupy ranks
//! `0..num_clients` on the fabric, servers `num_clients..num_clients+S`.
//!
//! [`PandaSystem::builder`] is the one entry point: set the
//! configuration, optionally substitute transports (e.g. TCP endpoints
//! for "a network of ordinary workstations"), then either
//! [`launch`](PandaSystemBuilder::launch) the SPMD fleet or
//! [`serve`](PandaSystemBuilder::serve) a multi-tenant
//! [`PandaService`] front door.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use panda_fs::{FileSystem, SyncPolicy};
use panda_msg::{FabricStats, InProcFabric, Transport};
use panda_obs::{Recorder, RunReport};

use crate::client::PandaClient;
use crate::error::{ConfigIssue, PandaError};
use crate::health::ServiceHealth;
use crate::server::ServerNode;
use crate::session::PandaService;

/// Deployment parameters.
///
/// Built with [`PandaConfig::new`] plus the `with_*` methods. Invariants
/// (checked at [`PandaSystemBuilder::launch`] /
/// [`PandaSystemBuilder::serve`], which return a typed
/// [`PandaError::Config`] rather than panicking):
///
/// * `num_clients >= 1` and `num_servers >= 1`;
/// * `subchunk_bytes >= 1`;
/// * `pipeline_depth >= 1` (`1` means unpipelined).
#[derive(Debug, Clone)]
pub struct PandaConfig {
    /// Number of compute nodes (Panda clients).
    pub num_clients: usize,
    /// Number of I/O nodes (Panda servers).
    pub num_servers: usize,
    /// Subchunk subdivision cap in bytes (1 MB in all the paper's
    /// experiments).
    pub subchunk_bytes: usize,
    /// Number of subchunks each server keeps in flight. `1` (the
    /// default) reproduces the paper's strictly serialized transfer
    /// order bit for bit; `d ≥ 2` prefetches the next `d - 1` subchunks
    /// from the clients while the current one is on its way to or from
    /// disk (double-buffered file I/O).
    pub pipeline_depth: usize,
    /// Size of each server's I/O worker pool: the threads that run the
    /// pipelined disk loops and the parallel reorganization
    /// (`copy_region`/`pack_region_into`) of independent subchunks.
    /// `1` still pipelines but reorganizes serially.
    pub io_workers: usize,
    /// When the disk stage flushes written data to stable storage:
    /// after every write (the paper's semantics), once per file as its
    /// last subchunk lands (the default, the engine's historical
    /// behavior), or once per collective in a coalesced end-of-stage
    /// barrier. Travels with each request, so every server honors it.
    pub sync_policy: SyncPolicy,
    /// Completion threads for submission-queue backends (`SubmitFs`):
    /// the knob file-system factories hand to
    /// [`panda_fs::SubmitFs::new`]. Unused by synchronous backends.
    pub disk_completion_threads: usize,
    /// How many collective requests each server runs concurrently
    /// (multi-tenant service mode). `1` serializes requests the way the
    /// original single-tenant engine did; higher values interleave that
    /// many requests' exchange/reorganization/disk steps over the
    /// shared worker pool and disk stage.
    pub max_concurrent_collectives: usize,
    /// How many admitted-but-waiting requests a server queues beyond
    /// the live ones before refusing single-submitter (session)
    /// requests with a typed [`PandaError::Admission`] rejection. `0`
    /// disables queueing: a session request past the live cap is
    /// rejected immediately. Fleet requests are never rejected — they
    /// always queue.
    pub max_queued_collectives: usize,
    /// Blocking-receive timeout; a deadlocked protocol fails loudly
    /// instead of hanging.
    pub recv_timeout: Duration,
    /// Observability recorder shared by every node, transport, and file
    /// system in the deployment. Defaults to the no-op
    /// [`panda_obs::NullRecorder`], which keeps the hot path free of
    /// clock reads and event construction.
    pub recorder: Arc<dyn Recorder>,
    /// Opt-in automatic recalibration: when set, a drift score at or
    /// above this threshold (see `panda_model::DriftDetector`) licenses
    /// the drift loop to re-run calibration through the `Calibrate`
    /// trait. `None` (the default) means drift is reported but never
    /// acted on automatically.
    pub auto_retune_threshold: Option<f64>,
}

impl PandaConfig {
    /// A configuration with the paper's defaults (1 MB subchunks,
    /// unpipelined, no instrumentation).
    pub fn new(num_clients: usize, num_servers: usize) -> Self {
        PandaConfig {
            num_clients,
            num_servers,
            subchunk_bytes: panda_schema::DEFAULT_SUBCHUNK_BYTES,
            pipeline_depth: 1,
            io_workers: 2,
            sync_policy: SyncPolicy::default(),
            disk_completion_threads: 2,
            max_concurrent_collectives: 4,
            max_queued_collectives: 16,
            recv_timeout: Duration::from_secs(60),
            recorder: panda_obs::null_recorder(),
            auto_retune_threshold: None,
        }
    }

    /// Override the subchunk cap.
    pub fn with_subchunk_bytes(mut self, bytes: usize) -> Self {
        self.subchunk_bytes = bytes;
        self
    }

    /// Override the pipeline depth (`1` disables pipelining).
    pub fn with_pipeline_depth(mut self, depth: usize) -> Self {
        self.pipeline_depth = depth;
        self
    }

    /// Override the per-server I/O worker-pool size.
    pub fn with_io_workers(mut self, workers: usize) -> Self {
        self.io_workers = workers;
        self
    }

    /// Override the disk-stage sync policy.
    pub fn with_sync_policy(mut self, policy: SyncPolicy) -> Self {
        self.sync_policy = policy;
        self
    }

    /// Override the completion-thread count for submission-queue
    /// backends.
    pub fn with_disk_completion_threads(mut self, threads: usize) -> Self {
        self.disk_completion_threads = threads;
        self
    }

    /// Override the concurrent-collective cap (`1` = serialized, the
    /// original single-tenant behavior).
    pub fn with_max_concurrent_collectives(mut self, max: usize) -> Self {
        self.max_concurrent_collectives = max;
        self
    }

    /// Override the admission wait-queue depth (`0` = reject session
    /// requests immediately once all slots are live).
    pub fn with_max_queued_collectives(mut self, max: usize) -> Self {
        self.max_queued_collectives = max;
        self
    }

    /// Override the receive timeout.
    pub fn with_recv_timeout(mut self, timeout: Duration) -> Self {
        self.recv_timeout = timeout;
        self
    }

    /// Attach an observability recorder (e.g. a
    /// [`panda_obs::CountingRecorder`] for aggregate phase totals, or a
    /// [`panda_obs::TimelineRecorder`] for per-subchunk traces). The
    /// recorder is installed on every transport and file system at
    /// launch; [`PandaSystem::report`] aggregates it afterwards.
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = recorder;
        self
    }

    /// Opt in to automatic recalibration when the live phase costs
    /// drift at least `threshold` (relative deviation; e.g. `0.5` fires
    /// when a phase's observed cost is 50% off the calibrated line).
    pub fn with_auto_retune(mut self, threshold: f64) -> Self {
        self.auto_retune_threshold = Some(threshold);
        self
    }

    fn validate(&self) -> Result<(), PandaError> {
        if self.num_clients == 0 || self.num_servers == 0 {
            return Err(PandaError::Config {
                issue: ConfigIssue::NoNodes {
                    num_clients: self.num_clients,
                    num_servers: self.num_servers,
                },
            });
        }
        if self.subchunk_bytes == 0 {
            return Err(PandaError::Config {
                issue: ConfigIssue::ZeroSubchunkBytes,
            });
        }
        if self.pipeline_depth == 0 {
            return Err(PandaError::Config {
                issue: ConfigIssue::ZeroPipelineDepth,
            });
        }
        if self.io_workers == 0 {
            return Err(PandaError::Config {
                issue: ConfigIssue::ZeroIoWorkers,
            });
        }
        if self.disk_completion_threads == 0 {
            return Err(PandaError::Config {
                issue: ConfigIssue::ZeroCompletionThreads,
            });
        }
        if self.max_concurrent_collectives == 0 {
            return Err(PandaError::Config {
                issue: ConfigIssue::ZeroConcurrentCollectives,
            });
        }
        if self.sync_policy == SyncPolicy::PerWrite && self.pipeline_depth > 1 {
            return Err(PandaError::Config {
                issue: ConfigIssue::SyncPolicyConflict {
                    pipeline_depth: self.pipeline_depth,
                },
            });
        }
        Ok(())
    }
}

/// A running Panda deployment: the server threads plus handles for
/// inspection.
pub struct PandaSystem {
    handles: Vec<JoinHandle<Result<(), PandaError>>>,
    /// Each I/O node's file system, for inspection by tests and tools.
    pub filesystems: Vec<Arc<dyn FileSystem>>,
    /// Fabric-wide message statistics.
    pub fabric_stats: Arc<FabricStats>,
    recorder: Arc<dyn Recorder>,
    health: Arc<ServiceHealth>,
    num_clients: usize,
    num_servers: usize,
    io_workers: usize,
    auto_retune_threshold: Option<f64>,
}

/// Caller-supplied fabric: one transport per node, plus the shared
/// statistics handle the transports report into.
type FabricEndpoints = (Vec<Box<dyn Transport>>, Arc<FabricStats>);

/// Configures and launches a deployment: the one entry point for both
/// the one-shot SPMD fleet and the multi-tenant service.
///
/// ```
/// use std::sync::Arc;
/// use panda_core::{PandaConfig, PandaSystem};
/// use panda_fs::MemFs;
///
/// let (system, clients) = PandaSystem::builder()
///     .config(PandaConfig::new(2, 1))
///     .launch(|_| Arc::new(MemFs::new()))
///     .unwrap();
/// system.shutdown(clients).unwrap();
/// ```
pub struct PandaSystemBuilder {
    config: PandaConfig,
    endpoints: Option<FabricEndpoints>,
}

impl PandaSystemBuilder {
    /// Use this deployment configuration (defaults to
    /// `PandaConfig::new(1, 1)`).
    pub fn config(mut self, config: PandaConfig) -> Self {
        self.config = config;
        self
    }

    /// Attach an observability recorder — shorthand for setting it on
    /// the config ([`PandaConfig::with_recorder`]).
    pub fn recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.config.recorder = recorder;
        self
    }

    /// Launch over caller-supplied transports — one per node, ordered
    /// clients first (`0..num_clients`) then servers. This is how Panda
    /// runs on "a network of ordinary workstations without changing any
    /// code" (paper §5): hand in `panda_msg::TcpFabric` endpoints (or
    /// any other [`panda_msg::Transport`]) instead of the default
    /// in-process fabric. `fabric_stats` is the shared counter handle
    /// when the transport family has one; pass a fresh handle
    /// otherwise.
    pub fn transports(
        mut self,
        endpoints: Vec<Box<dyn Transport>>,
        fabric_stats: Arc<FabricStats>,
    ) -> Self {
        self.endpoints = Some((endpoints, fabric_stats));
        self
    }

    /// Launch the deployment: spawns one thread per I/O node and
    /// returns one [`PandaClient`] per compute node (index == client
    /// rank).
    ///
    /// `fs_factory` supplies each server's file system (the paper's
    /// "each processor has its own AIX file system"); it is called with
    /// the server index.
    pub fn launch(
        self,
        mut fs_factory: impl FnMut(usize) -> Arc<dyn FileSystem>,
    ) -> Result<(PandaSystem, Vec<PandaClient>), PandaError> {
        let config = self.config;
        config.validate()?;
        let total = config.num_clients + config.num_servers;
        let (mut endpoints, fabric_stats) = match self.endpoints {
            Some((endpoints, stats)) => (endpoints, stats),
            None => {
                let (eps, stats) = InProcFabric::with_timeout(total, config.recv_timeout);
                let endpoints: Vec<Box<dyn Transport>> = eps
                    .into_iter()
                    .map(|ep| Box::new(ep) as Box<dyn Transport>)
                    .collect();
                (endpoints, stats)
            }
        };
        if endpoints.len() != total {
            return Err(PandaError::Config {
                issue: ConfigIssue::TransportCount {
                    expected: total,
                    actual: endpoints.len(),
                },
            });
        }

        // One recorder observes every layer: each transport reports its
        // own traffic, each server file system its disk calls (tagged
        // with the server's fabric rank), and the nodes themselves the
        // collective-path phases.
        for ep in endpoints.iter_mut() {
            ep.set_recorder(Arc::clone(&config.recorder));
        }

        // Servers take the high ranks.
        let health = Arc::new(ServiceHealth::new(
            config.num_servers,
            config.max_concurrent_collectives,
            config.max_queued_collectives,
        ));
        let mut filesystems = Vec::with_capacity(config.num_servers);
        let mut handles = Vec::with_capacity(config.num_servers);
        for s in (0..config.num_servers).rev() {
            let endpoint = endpoints
                .pop()
                .expect("fabric created with num_clients+num_servers endpoints");
            let fs = fs_factory(s);
            fs.set_recorder(
                Arc::clone(&config.recorder),
                (config.num_clients + s) as u32,
            );
            filesystems.push(Arc::clone(&fs));
            let node = ServerNode::new(
                endpoint,
                fs,
                s,
                config.num_clients,
                config.num_servers,
                config.io_workers,
                config.max_concurrent_collectives,
                config.max_queued_collectives,
                Arc::clone(&config.recorder),
                Arc::clone(&health),
            );
            handles.push(
                std::thread::Builder::new()
                    .name(format!("panda-server-{s}"))
                    .spawn(move || node.run())
                    .expect("spawn server thread"),
            );
        }
        // Popping from the back handed us servers in reverse order; the
        // bookkeeping vectors must be indexed by server index.
        filesystems.reverse();
        handles.reverse();

        let clients: Vec<PandaClient> = endpoints
            .into_iter()
            .enumerate()
            .map(|(rank, ep)| {
                PandaClient::new(
                    ep,
                    rank,
                    config.num_clients,
                    config.num_servers,
                    config.subchunk_bytes,
                    config.pipeline_depth,
                    config.sync_policy,
                    Arc::clone(&config.recorder),
                )
            })
            .collect();

        Ok((
            PandaSystem {
                handles,
                filesystems,
                fabric_stats,
                recorder: Arc::clone(&config.recorder),
                health,
                num_clients: config.num_clients,
                num_servers: config.num_servers,
                io_workers: config.io_workers,
                auto_retune_threshold: config.auto_retune_threshold,
            },
            clients,
        ))
    }

    /// Launch as a multi-tenant service: the configured `num_clients`
    /// endpoints become session slots on the returned
    /// [`PandaService`] instead of fleet clients. Open sessions with
    /// [`PandaService::open`]; each submits collectives independently
    /// and the servers interleave up to
    /// [`PandaConfig::max_concurrent_collectives`] of them.
    pub fn serve(
        self,
        fs_factory: impl FnMut(usize) -> Arc<dyn FileSystem>,
    ) -> Result<PandaService, PandaError> {
        let (system, clients) = self.launch(fs_factory)?;
        Ok(PandaService::new(system, clients))
    }
}

impl PandaSystem {
    /// Start configuring a deployment. See [`PandaSystemBuilder`].
    pub fn builder() -> PandaSystemBuilder {
        PandaSystemBuilder {
            config: PandaConfig::new(1, 1),
            endpoints: None,
        }
    }

    /// The deployment's observability recorder (the one passed via
    /// [`PandaConfig::with_recorder`], or the default null recorder).
    pub fn recorder(&self) -> &Arc<dyn Recorder> {
        &self.recorder
    }

    /// The live admission/health gauges every server publishes into;
    /// [`crate::HealthSnapshot`] derives the `/healthz` status from it.
    pub fn health(&self) -> &Arc<ServiceHealth> {
        &self.health
    }

    /// The configured drift threshold for automatic recalibration
    /// ([`PandaConfig::with_auto_retune`]), if opted in.
    pub fn auto_retune_threshold(&self) -> Option<f64> {
        self.auto_retune_threshold
    }

    /// Aggregate the deployment's recorder into one machine-readable
    /// [`RunReport`]: phase totals (the paper's exchange/disk/reorg
    /// decomposition), per-node and per-subchunk breakdowns when the
    /// recorder keeps a timeline, and aggregate counters. With the
    /// default null recorder the report is empty.
    pub fn report(&self) -> RunReport {
        RunReport::from_recorder(self.recorder.as_ref())
    }

    /// Number of compute nodes.
    pub fn num_clients(&self) -> usize {
        self.num_clients
    }

    /// Number of I/O nodes.
    pub fn num_servers(&self) -> usize {
        self.num_servers
    }

    /// Reorganization worker threads per I/O node (the launched
    /// [`PandaConfig::io_workers`]). Launch-scoped: a tuner can pick a
    /// different value only for the *next* deployment, not per request.
    pub fn io_workers(&self) -> usize {
        self.io_workers
    }

    /// Shut the deployment down: the master client tells every server to
    /// exit, then the server threads are joined. Any error raised by a
    /// server thread during its lifetime is surfaced here.
    pub fn shutdown(self, mut clients: Vec<PandaClient>) -> Result<(), PandaError> {
        let master = clients.first_mut().ok_or(PandaError::Config {
            issue: ConfigIssue::NoClientHandles,
        })?;
        master.send_shutdown()?;
        for handle in self.handles {
            handle.join().map_err(|_| PandaError::Protocol {
                detail: "server thread panicked".to_string(),
            })??;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_fs::MemFs;

    fn try_launch(config: PandaConfig) -> Result<(PandaSystem, Vec<PandaClient>), PandaError> {
        PandaSystem::builder()
            .config(config)
            .launch(|_| Arc::new(MemFs::new()))
    }

    #[test]
    fn launch_and_shutdown() {
        let (system, clients) = try_launch(PandaConfig::new(2, 2)).unwrap();
        assert_eq!(clients.len(), 2);
        assert_eq!(system.num_clients(), 2);
        assert_eq!(system.num_servers(), 2);
        assert_eq!(system.filesystems.len(), 2);
        system.shutdown(clients).unwrap();
    }

    #[test]
    fn builder_checks_endpoint_count() {
        use panda_msg::{InProcFabric, Transport};
        let (eps, stats) = InProcFabric::new(2); // need 3 for 2 clients + 1 server
        let transports: Vec<Box<dyn Transport>> = eps
            .into_iter()
            .map(|e| Box::new(e) as Box<dyn Transport>)
            .collect();
        let err = PandaSystem::builder()
            .config(PandaConfig::new(2, 1))
            .transports(transports, stats)
            .launch(|_| Arc::new(MemFs::new()) as Arc<dyn panda_fs::FileSystem>)
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, crate::PandaError::Config { .. }));
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(try_launch(PandaConfig::new(0, 1)).is_err());
        assert!(try_launch(PandaConfig::new(1, 0)).is_err());
        assert!(try_launch(PandaConfig::new(1, 1).with_subchunk_bytes(0)).is_err());
        assert!(try_launch(PandaConfig::new(1, 1).with_pipeline_depth(0)).is_err());
        assert!(try_launch(PandaConfig::new(1, 1).with_io_workers(0)).is_err());
        let err = try_launch(PandaConfig::new(1, 1).with_disk_completion_threads(0))
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(
            err,
            PandaError::Config {
                issue: crate::ConfigIssue::ZeroCompletionThreads
            }
        ));
        // A server must be able to run at least one collective.
        let err = try_launch(PandaConfig::new(1, 1).with_max_concurrent_collectives(0))
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(
            err,
            PandaError::Config {
                issue: crate::ConfigIssue::ZeroConcurrentCollectives
            }
        ));
        // Per-write fsync serializes the disk stage; pipelining it is a
        // contradiction and must be rejected loudly.
        let err = try_launch(
            PandaConfig::new(1, 1)
                .with_sync_policy(SyncPolicy::PerWrite)
                .with_pipeline_depth(2),
        )
        .map(|_| ())
        .unwrap_err();
        assert!(matches!(
            err,
            PandaError::Config {
                issue: crate::ConfigIssue::SyncPolicyConflict { pipeline_depth: 2 }
            }
        ));
        // Per-write at depth 1 is the paper's own configuration: valid.
        let (system, clients) =
            try_launch(PandaConfig::new(1, 1).with_sync_policy(SyncPolicy::PerWrite)).unwrap();
        system.shutdown(clients).unwrap();
    }
}
