//! The Panda server: the I/O-node side of a collective operation.
//!
//! Each server runs [`ServerNode::run`] in its own thread. On receiving
//! a collective request it builds its plan (round-robin chunks →
//! subchunks → client pieces) and *drives* the transfer so that its own
//! file access is strictly sequential: for writes it pulls pieces from
//! clients, assembles each subchunk in traditional order, and appends it
//! to the file; for reads it streams the file forward and scatters each
//! subchunk to the owning clients. The master server (index 0)
//! additionally relays the request to its peers and reports completion
//! to the master client.

use std::collections::HashMap;
use std::sync::Arc;

use panda_fs::{FileHandle, FileSystem};
use panda_msg::{MatchSpec, NodeId, Transport};
use panda_schema::copy;

use crate::error::PandaError;
use crate::plan::build_server_plan;
use crate::protocol::{recv_msg, send_msg, tags, ArrayOp, CollectiveRequest, Msg, OpKind};

/// One I/O node.
pub struct ServerNode {
    transport: Box<dyn Transport>,
    fs: Arc<dyn FileSystem>,
    /// 0-based index among the servers.
    server_idx: usize,
    num_clients: usize,
    num_servers: usize,
    /// Open handles for baseline raw operations, keyed by file name.
    raw_handles: HashMap<String, Box<dyn FileHandle>>,
    /// Clients that have sent `RawDone` for the current baseline op.
    raw_done: Vec<NodeId>,
}

impl ServerNode {
    pub(crate) fn new(
        transport: Box<dyn Transport>,
        fs: Arc<dyn FileSystem>,
        server_idx: usize,
        num_clients: usize,
        num_servers: usize,
    ) -> Self {
        ServerNode {
            transport,
            fs,
            server_idx,
            num_clients,
            num_servers,
            raw_handles: HashMap::new(),
            raw_done: Vec::new(),
        }
    }

    fn is_master(&self) -> bool {
        self.server_idx == 0
    }

    fn master_server(&self) -> NodeId {
        NodeId(self.num_clients)
    }

    fn master_client(&self) -> NodeId {
        NodeId(0)
    }

    /// The server's per-array file name for an operation.
    pub fn file_name(file_tag: &str, server_idx: usize) -> String {
        format!("{file_tag}.s{server_idx}")
    }

    /// Main loop: serve collective requests and baseline raw operations
    /// until shutdown.
    pub fn run(mut self) -> Result<(), PandaError> {
        loop {
            let (src, msg) = recv_msg(&mut *self.transport, MatchSpec::any())?;
            match msg {
                Msg::Shutdown => return Ok(()),
                Msg::Collective(req) => self.handle_collective(req)?,
                Msg::RawWrite {
                    file,
                    offset,
                    payload,
                } => self.raw_write(&file, offset, &payload)?,
                Msg::RawRead {
                    file,
                    offset,
                    len,
                    seq,
                } => self.raw_read(src, &file, offset, len as usize, seq)?,
                Msg::RawDone => self.raw_done(src)?,
                Msg::RawStat { file, seq } => {
                    let len = if self.fs.exists(&file) {
                        self.fs.open(&file)?.len()
                    } else {
                        u64::MAX
                    };
                    send_msg(&mut *self.transport, src, &Msg::RawStatReply { seq, len })?;
                }
                other => {
                    return Err(PandaError::Protocol {
                        detail: format!("server got unexpected tag {}", other.tag()),
                    })
                }
            }
        }
    }

    /// Execute one collective operation end to end.
    fn handle_collective(&mut self, req: CollectiveRequest) -> Result<(), PandaError> {
        // The master server relays the schemas to the other servers; the
        // servers never talk to each other during the transfer itself.
        if self.is_master() {
            for s in 1..self.num_servers {
                let dst = NodeId(self.num_clients + s);
                send_msg(&mut *self.transport, dst, &Msg::Collective(req.clone()))?;
            }
        }

        for (idx, array_op) in req.arrays.iter().enumerate() {
            match req.op {
                OpKind::Write => {
                    if array_op.section.is_some() {
                        return Err(PandaError::Protocol {
                            detail: "section writes are not supported".to_string(),
                        });
                    }
                    self.write_array(idx as u32, array_op, req.subchunk_bytes)?;
                }
                OpKind::Read => self.read_array(idx as u32, array_op, req.subchunk_bytes)?,
            }
        }

        // Completion: workers report to the master server; the master
        // server tells the master client once everyone (incl. itself)
        // is done.
        if self.is_master() {
            for _ in 1..self.num_servers {
                let (_, msg) =
                    recv_msg(&mut *self.transport, MatchSpec::tag(tags::SERVER_DONE))?;
                debug_assert_eq!(msg, Msg::ServerDone);
            }
            let dst = self.master_client();
            send_msg(&mut *self.transport, dst, &Msg::Complete)?;
        } else {
            let dst = self.master_server();
            send_msg(&mut *self.transport, dst, &Msg::ServerDone)?;
        }
        Ok(())
    }

    /// Write path: pull pieces from clients subchunk by subchunk,
    /// assemble in traditional order, append sequentially.
    fn write_array(
        &mut self,
        array_idx: u32,
        op: &ArrayOp,
        subchunk_bytes: usize,
    ) -> Result<(), PandaError> {
        let meta = &op.meta;
        let elem = meta.elem_size();
        let plan = build_server_plan(meta, self.server_idx, self.num_servers, subchunk_bytes);
        let mut file = self
            .fs
            .create(&Self::file_name(&op.file_tag, self.server_idx))?;
        let mut seq = 0u64;
        for chunk in &plan.chunks {
            for sub in &chunk.subchunks {
                let mut buf = vec![0u8; sub.bytes];
                // Ask every owning client for its piece...
                let mut outstanding: HashMap<u64, usize> = HashMap::new();
                for (pi, piece) in sub.pieces.iter().enumerate() {
                    send_msg(
                        &mut *self.transport,
                        NodeId(piece.client),
                        &Msg::Fetch {
                            array: array_idx,
                            seq,
                            region: piece.region.clone(),
                        },
                    )?;
                    outstanding.insert(seq, pi);
                    seq += 1;
                }
                // ... and scatter the replies into the subchunk buffer.
                while !outstanding.is_empty() {
                    let (_src, msg) =
                        recv_msg(&mut *self.transport, MatchSpec::tag(tags::DATA))?;
                    let Msg::Data {
                        seq: rseq,
                        region,
                        payload,
                        ..
                    } = msg
                    else {
                        unreachable!("matched DATA tag");
                    };
                    let pi = outstanding
                        .remove(&rseq)
                        .ok_or_else(|| PandaError::Protocol {
                            detail: format!("unexpected data seq {rseq}"),
                        })?;
                    debug_assert_eq!(region, sub.pieces[pi].region);
                    copy::copy_region(&payload, &region, &mut buf, &sub.region, &region, elem)?;
                }
                file.write_at(sub.file_offset, &buf)?;
            }
        }
        // The paper flushes to disk with fsync after each write op.
        file.sync()?;
        Ok(())
    }

    /// Read path: stream the file forward, scattering each subchunk's
    /// pieces to the owning clients.
    fn read_array(
        &mut self,
        array_idx: u32,
        op: &ArrayOp,
        subchunk_bytes: usize,
    ) -> Result<(), PandaError> {
        let meta = &op.meta;
        let elem = meta.elem_size();
        let plan = build_server_plan(meta, self.server_idx, self.num_servers, subchunk_bytes);
        if plan.total_bytes == 0 {
            return Ok(());
        }
        let mut file = self
            .fs
            .open(&Self::file_name(&op.file_tag, self.server_idx))?;
        let mut seq = 0u64;
        for chunk in &plan.chunks {
            for sub in &chunk.subchunks {
                // Section reads skip non-overlapping subchunks entirely;
                // the remaining reads still proceed in file order.
                if let Some(section) = &op.section {
                    if !sub.region.overlaps(section) {
                        continue;
                    }
                }
                let mut buf = vec![0u8; sub.bytes];
                file.read_at(sub.file_offset, &mut buf)?;
                for piece in &sub.pieces {
                    // Trim each piece to the requested section.
                    let target = match &op.section {
                        None => Some(piece.region.clone()),
                        Some(section) => piece.region.intersect(section),
                    };
                    let Some(target) = target else { continue };
                    let payload = copy::pack_region(&buf, &sub.region, &target, elem)?;
                    send_msg(
                        &mut *self.transport,
                        NodeId(piece.client),
                        &Msg::Data {
                            array: array_idx,
                            seq,
                            region: target,
                            payload,
                        },
                    )?;
                    seq += 1;
                }
            }
        }
        Ok(())
    }

    /// Baseline support: apply a positioned write in arrival order.
    fn raw_write(&mut self, file: &str, offset: u64, payload: &[u8]) -> Result<(), PandaError> {
        let handle = self.raw_handle(file)?;
        handle.write_at(offset, payload)?;
        Ok(())
    }

    /// Baseline support: serve a positioned read.
    fn raw_read(
        &mut self,
        src: NodeId,
        file: &str,
        offset: u64,
        len: usize,
        seq: u64,
    ) -> Result<(), PandaError> {
        let mut payload = vec![0u8; len];
        let handle = self.raw_handle(file)?;
        handle.read_at(offset, &mut payload)?;
        send_msg(&mut *self.transport, src, &Msg::RawData { seq, payload })?;
        Ok(())
    }

    fn raw_handle(&mut self, file: &str) -> Result<&mut Box<dyn FileHandle>, PandaError> {
        if !self.raw_handles.contains_key(file) {
            let handle = if self.fs.exists(file) {
                self.fs.open(file)?
            } else {
                self.fs.create(file)?
            };
            self.raw_handles.insert(file.to_string(), handle);
        }
        Ok(self.raw_handles.get_mut(file).expect("just inserted"))
    }

    /// Baseline support: completion barrier. Once every client has sent
    /// `RawDone`, sync all touched files and acknowledge everyone.
    fn raw_done(&mut self, src: NodeId) -> Result<(), PandaError> {
        if self.raw_done.contains(&src) {
            return Err(PandaError::Protocol {
                detail: format!("duplicate RawDone from {src}"),
            });
        }
        self.raw_done.push(src);
        if self.raw_done.len() == self.num_clients {
            for handle in self.raw_handles.values_mut() {
                handle.sync()?;
            }
            // Drop the handle cache: the logical op is over, and fresh
            // handles restart sequentiality tracking for the next op.
            self.raw_handles.clear();
            let done = std::mem::take(&mut self.raw_done);
            for client in done {
                send_msg(&mut *self.transport, client, &Msg::RawAck)?;
            }
        }
        Ok(())
    }
}
