//! The Panda server: the I/O-node side of a collective operation.
//!
//! Each server runs [`ServerNode::run`] in its own thread. On receiving
//! a collective request it builds its plan (round-robin chunks →
//! subchunks → client pieces) and *drives* the transfer so that its own
//! file access is strictly sequential: for writes it pulls pieces from
//! clients, assembles each subchunk in traditional order, and appends it
//! to the file; for reads it streams the file forward and scatters each
//! subchunk to the owning clients. The master server (index 0)
//! additionally relays the request to its peers and reports completion
//! to the master client.
//!
//! # Pipelining
//!
//! At `pipeline_depth == 1` each subchunk is exchanged and written (or
//! read and scattered) strictly one at a time — the paper's baseline
//! transfer order, preserved bit for bit. At depth `d ≥ 2` the server
//! overlaps the two halves of the work:
//!
//! * **writes** keep up to `d` subchunks' `Fetch` requests in flight
//!   (disambiguated by the per-array `seq`), assemble replies into a
//!   recycled buffer pool, and hand each completed subchunk to a
//!   dedicated disk-writer thread, so subchunk `k` hits the disk while
//!   `k+1..k+d` are still being gathered from the clients;
//! * **reads** run a disk-reader thread that prefetches the next
//!   subchunks into the same kind of recycled pool while the server
//!   packs and pushes the current one to the clients.
//!
//! Either way the file itself is still accessed strictly sequentially by
//! exactly one thread, and the message set (tags, counts, payloads) is
//! identical to the unpipelined schedule — only the overlap changes.

use std::collections::{HashMap, VecDeque};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;

use panda_fs::{FileHandle, FileSystem, FsError};
use panda_msg::{MatchSpec, NodeId, Transport};
use panda_obs::{Event, OpDir, Recorder, SubchunkKey};
use panda_schema::{copy, Region};

use crate::error::PandaError;
use crate::plan::{build_server_plan, PlanSubchunk};
use crate::protocol::{
    recv_msg, send_data, send_msg, tags, ArrayOp, CollectiveRequest, Msg, OpKind,
};

/// One I/O node.
pub struct ServerNode {
    transport: Box<dyn Transport>,
    fs: Arc<dyn FileSystem>,
    /// 0-based index among the servers.
    server_idx: usize,
    num_clients: usize,
    num_servers: usize,
    /// Session recorder; events are tagged with this server's fabric
    /// rank. Durations are measured only while it is enabled.
    recorder: Arc<dyn Recorder>,
    /// Open handles for baseline raw operations, keyed by file name.
    raw_handles: HashMap<String, Box<dyn FileHandle>>,
    /// Per-client flag: has this client sent `RawDone` for the current
    /// baseline op? Indexed by client rank.
    raw_done: Vec<bool>,
    /// Number of set flags in [`ServerNode::raw_done`].
    raw_done_count: usize,
}

fn op_dir(op: OpKind) -> OpDir {
    match op {
        OpKind::Write => OpDir::Write,
        OpKind::Read => OpDir::Read,
    }
}

/// A subchunk being assembled inside the write window.
struct InFlight {
    /// Assembly buffer (recycled through the writer's pool).
    buf: Vec<u8>,
    /// Pieces still missing.
    remaining: usize,
}

impl ServerNode {
    pub(crate) fn new(
        transport: Box<dyn Transport>,
        fs: Arc<dyn FileSystem>,
        server_idx: usize,
        num_clients: usize,
        num_servers: usize,
        recorder: Arc<dyn Recorder>,
    ) -> Self {
        ServerNode {
            transport,
            fs,
            server_idx,
            num_clients,
            num_servers,
            recorder,
            raw_handles: HashMap::new(),
            raw_done: vec![false; num_clients],
            raw_done_count: 0,
        }
    }

    fn is_master(&self) -> bool {
        self.server_idx == 0
    }

    /// This server's fabric rank (servers follow the clients).
    fn my_rank(&self) -> u32 {
        (self.num_clients + self.server_idx) as u32
    }

    /// Whether instrumentation (and therefore clock reads) is on.
    fn obs_on(&self) -> bool {
        self.recorder.enabled()
    }

    /// Record one event under this server's rank, if recording is on.
    fn emit(&self, event: &Event<'_>) {
        if self.recorder.enabled() {
            self.recorder.record(self.my_rank(), event);
        }
    }

    fn master_server(&self) -> NodeId {
        NodeId(self.num_clients)
    }

    fn master_client(&self) -> NodeId {
        NodeId(0)
    }

    /// The server's per-array file name for an operation.
    pub fn file_name(file_tag: &str, server_idx: usize) -> String {
        format!("{file_tag}.s{server_idx}")
    }

    /// Main loop: serve collective requests and baseline raw operations
    /// until shutdown.
    pub fn run(mut self) -> Result<(), PandaError> {
        loop {
            let (src, msg) = recv_msg(&mut *self.transport, MatchSpec::any())?;
            match msg {
                Msg::Shutdown => return Ok(()),
                Msg::Collective(req) => self.handle_collective(req)?,
                Msg::RawWrite {
                    file,
                    offset,
                    payload,
                } => self.raw_write(&file, offset, &payload)?,
                Msg::RawRead {
                    file,
                    offset,
                    len,
                    seq,
                } => self.raw_read(src, &file, offset, len as usize, seq)?,
                Msg::RawDone => self.raw_done(src)?,
                Msg::RawStat { file, seq } => {
                    let len = if self.fs.exists(&file) {
                        self.fs.open(&file)?.len()
                    } else {
                        u64::MAX
                    };
                    send_msg(&mut *self.transport, src, &Msg::RawStatReply { seq, len })?;
                }
                other => {
                    return Err(PandaError::Protocol {
                        detail: format!("server got unexpected tag {}", other.tag()),
                    })
                }
            }
        }
    }

    /// Execute one collective operation end to end.
    fn handle_collective(&mut self, req: CollectiveRequest) -> Result<(), PandaError> {
        // The master server relays the schemas to the other servers; the
        // servers never talk to each other during the transfer itself.
        if self.is_master() {
            for s in 1..self.num_servers {
                let dst = NodeId(self.num_clients + s);
                send_msg(&mut *self.transport, dst, &Msg::Collective(req.clone()))?;
            }
        }

        let depth = req.pipeline_depth.max(1);
        let t_op = self.obs_on().then(Instant::now);
        self.emit(&Event::RequestIssued {
            op: op_dir(req.op),
            arrays: req.arrays.len() as u32,
            pipeline_depth: depth as u32,
        });
        for (idx, array_op) in req.arrays.iter().enumerate() {
            match req.op {
                OpKind::Write => {
                    if array_op.section.is_some() {
                        return Err(PandaError::Protocol {
                            detail: "section writes are not supported".to_string(),
                        });
                    }
                    self.write_array(idx as u32, array_op, req.subchunk_bytes, depth)?;
                }
                OpKind::Read => self.read_array(idx as u32, array_op, req.subchunk_bytes, depth)?,
            }
        }
        if let Some(t) = t_op {
            self.emit(&Event::CollectiveDone {
                op: op_dir(req.op),
                dur: t.elapsed(),
            });
        }

        // Completion: workers report to the master server; the master
        // server tells the master client once everyone (incl. itself)
        // is done.
        if self.is_master() {
            for _ in 1..self.num_servers {
                let (_, msg) = recv_msg(&mut *self.transport, MatchSpec::tag(tags::SERVER_DONE))?;
                debug_assert_eq!(msg, Msg::ServerDone);
            }
            let dst = self.master_client();
            send_msg(&mut *self.transport, dst, &Msg::Complete)?;
        } else {
            let dst = self.master_server();
            send_msg(&mut *self.transport, dst, &Msg::ServerDone)?;
        }
        Ok(())
    }

    /// Write path: pull pieces from clients subchunk by subchunk,
    /// assemble in traditional order, append sequentially. `depth` is
    /// the number of subchunks kept in flight (see the module docs).
    fn write_array(
        &mut self,
        array_idx: u32,
        op: &ArrayOp,
        subchunk_bytes: usize,
        depth: usize,
    ) -> Result<(), PandaError> {
        let meta = &op.meta;
        let elem = meta.elem_size();
        let plan = build_server_plan(meta, self.server_idx, self.num_servers, subchunk_bytes);
        let subs: Vec<&PlanSubchunk> = plan.subchunks().collect();
        if self.obs_on() {
            for (si, sub) in subs.iter().enumerate() {
                self.emit(&Event::SubchunkPlanned {
                    key: SubchunkKey::new(self.server_idx, array_idx, si),
                    bytes: sub.bytes as u64,
                });
            }
        }
        let file = self
            .fs
            .create(&Self::file_name(&op.file_tag, self.server_idx))?;
        if depth <= 1 {
            self.write_subchunks_inline(array_idx, elem, &subs, file)
        } else {
            self.write_subchunks_pipelined(array_idx, elem, &subs, file, depth)
        }
    }

    /// Unpipelined write schedule: one subchunk at a time, the disk
    /// write strictly after the last piece arrives. One assembly buffer
    /// is recycled across all subchunks.
    fn write_subchunks_inline(
        &mut self,
        array_idx: u32,
        elem: usize,
        subs: &[&PlanSubchunk],
        mut file: Box<dyn FileHandle>,
    ) -> Result<(), PandaError> {
        let mut seq = 0u64;
        let mut buf = Vec::new();
        let mut outstanding: HashMap<u64, usize> = HashMap::new();
        for (si, sub) in subs.iter().enumerate() {
            let key = SubchunkKey::new(self.server_idx, array_idx, si);
            buf.clear();
            buf.resize(sub.bytes, 0);
            // Ask every owning client for its piece...
            for (pi, piece) in sub.pieces.iter().enumerate() {
                send_msg(
                    &mut *self.transport,
                    NodeId(piece.client),
                    &Msg::Fetch {
                        array: array_idx,
                        seq,
                        region: piece.region.clone(),
                    },
                )?;
                self.emit(&Event::FetchSent {
                    key,
                    piece: pi as u32,
                    client: piece.client as u32,
                });
                outstanding.insert(seq, pi);
                seq += 1;
            }
            // ... and scatter the replies into the subchunk buffer.
            while !outstanding.is_empty() {
                let t_wait = self.obs_on().then(Instant::now);
                let (_src, msg) = recv_msg(&mut *self.transport, MatchSpec::tag(tags::DATA))?;
                let Msg::Data {
                    seq: rseq,
                    region,
                    payload,
                    ..
                } = msg
                else {
                    unreachable!("matched DATA tag");
                };
                let pi = outstanding
                    .remove(&rseq)
                    .ok_or_else(|| PandaError::Protocol {
                        detail: format!("unexpected data seq {rseq}"),
                    })?;
                debug_assert_eq!(region, sub.pieces[pi].region);
                if let Some(t) = t_wait {
                    self.emit(&Event::FetchReplied {
                        key,
                        bytes: payload.len() as u64,
                        wait: t.elapsed(),
                    });
                }
                let t_pack = self.obs_on().then(Instant::now);
                copy::copy_region(&payload, &region, &mut buf, &sub.region, &region, elem)?;
                if let Some(t) = t_pack {
                    self.emit(&Event::Packed {
                        key,
                        piece: pi as u32,
                        bytes: payload.len() as u64,
                        dur: t.elapsed(),
                    });
                }
            }
            let t_disk = self.obs_on().then(Instant::now);
            file.write_at(sub.file_offset, &buf)?;
            if let Some(t) = t_disk {
                self.emit(&Event::DiskWriteDone {
                    key,
                    offset: sub.file_offset,
                    bytes: buf.len() as u64,
                    dur: t.elapsed(),
                });
            }
        }
        // The paper flushes to disk with fsync after each write op.
        file.sync()?;
        Ok(())
    }

    /// Pipelined write schedule: up to `depth` subchunks' fetches are
    /// outstanding at once, and completed subchunks are written by a
    /// dedicated disk thread while later ones are still being gathered.
    /// Buffers recycle through the writer's pool, so steady state runs
    /// allocation-free. File contents are byte-identical to the inline
    /// schedule: subchunks are still written in file order.
    fn write_subchunks_pipelined(
        &mut self,
        array_idx: u32,
        elem: usize,
        subs: &[&PlanSubchunk],
        file: Box<dyn FileHandle>,
        depth: usize,
    ) -> Result<(), PandaError> {
        // Disk jobs flow to the writer thread; drained buffers flow back
        // for reuse. The bounded job queue caps buffered-but-unwritten
        // subchunks at `depth`.
        let (job_tx, job_rx) = mpsc::sync_channel::<(SubchunkKey, u64, Vec<u8>)>(depth);
        let (pool_tx, pool_rx) = mpsc::channel::<Vec<u8>>();
        let recorder = Arc::clone(&self.recorder);
        let node = self.my_rank();
        let writer = std::thread::Builder::new()
            .name(format!("panda-writer-{}", self.server_idx))
            .spawn(move || -> Result<(), FsError> {
                let mut file = file;
                while let Ok((key, offset, buf)) = job_rx.recv() {
                    let t_disk = recorder.enabled().then(Instant::now);
                    file.write_at(offset, &buf)?;
                    if let Some(t) = t_disk {
                        recorder.record(
                            node,
                            &Event::DiskWriteDone {
                                key,
                                offset,
                                bytes: buf.len() as u64,
                                dur: t.elapsed(),
                            },
                        );
                    }
                    // The assembler may already be past its last send.
                    let _ = pool_tx.send(buf);
                }
                // The paper flushes to disk with fsync after each write
                // op; channel disconnect marks the last subchunk.
                file.sync()
            })
            .expect("spawn disk-writer thread");

        let run = (|| -> Result<(), PandaError> {
            let mut seq = 0u64;
            // seq → (subchunk index, piece index) for every in-flight
            // fetch; the global seq disambiguates replies across the
            // whole window.
            let mut seq_map: HashMap<u64, (usize, usize)> = HashMap::new();
            let mut window: VecDeque<InFlight> = VecDeque::with_capacity(depth);
            let mut front = 0usize; // oldest subchunk still in the window
            let mut next = 0usize; // next subchunk to issue fetches for
            loop {
                // Hand completed head subchunks to the disk thread: it
                // writes subchunk k while replies for k+1.. scatter here.
                while window.front().is_some_and(|s| s.remaining == 0) {
                    let done = window.pop_front().expect("checked front");
                    let key = SubchunkKey::new(self.server_idx, array_idx, front);
                    self.emit(&Event::DiskWriteQueued {
                        key,
                        bytes: done.buf.len() as u64,
                    });
                    if job_tx
                        .send((key, subs[front].file_offset, done.buf))
                        .is_err()
                    {
                        // Writer bailed; its join below has the cause.
                        return Err(PandaError::Protocol {
                            detail: "disk writer stopped early".to_string(),
                        });
                    }
                    front += 1;
                }
                if front == subs.len() {
                    return Ok(());
                }
                // Keep up to `depth` subchunks' fetches outstanding.
                while next < subs.len() && next - front < depth {
                    let sub = subs[next];
                    let mut buf = pool_rx.try_recv().unwrap_or_default();
                    buf.clear();
                    buf.resize(sub.bytes, 0);
                    for (pi, piece) in sub.pieces.iter().enumerate() {
                        send_msg(
                            &mut *self.transport,
                            NodeId(piece.client),
                            &Msg::Fetch {
                                array: array_idx,
                                seq,
                                region: piece.region.clone(),
                            },
                        )?;
                        self.emit(&Event::FetchSent {
                            key: SubchunkKey::new(self.server_idx, array_idx, next),
                            piece: pi as u32,
                            client: piece.client as u32,
                        });
                        seq_map.insert(seq, (next, pi));
                        seq += 1;
                    }
                    window.push_back(InFlight {
                        buf,
                        remaining: sub.pieces.len(),
                    });
                    next += 1;
                }
                // Scatter one reply into its window slot.
                let t_wait = self.obs_on().then(Instant::now);
                let (_src, msg) = recv_msg(&mut *self.transport, MatchSpec::tag(tags::DATA))?;
                let Msg::Data {
                    seq: rseq,
                    region,
                    payload,
                    ..
                } = msg
                else {
                    unreachable!("matched DATA tag");
                };
                let (si, pi) = seq_map.remove(&rseq).ok_or_else(|| PandaError::Protocol {
                    detail: format!("unexpected data seq {rseq}"),
                })?;
                let sub = subs[si];
                debug_assert_eq!(region, sub.pieces[pi].region);
                let key = SubchunkKey::new(self.server_idx, array_idx, si);
                if let Some(t) = t_wait {
                    self.emit(&Event::FetchReplied {
                        key,
                        bytes: payload.len() as u64,
                        wait: t.elapsed(),
                    });
                }
                let t_pack = self.obs_on().then(Instant::now);
                let slot = &mut window[si - front];
                copy::copy_region(&payload, &region, &mut slot.buf, &sub.region, &region, elem)?;
                slot.remaining -= 1;
                if let Some(t) = t_pack {
                    self.emit(&Event::Packed {
                        key,
                        piece: pi as u32,
                        bytes: payload.len() as u64,
                        dur: t.elapsed(),
                    });
                }
            }
        })();

        // Closing the job queue lets the writer drain, fsync, and exit.
        drop(job_tx);
        let disk = writer.join().map_err(|_| PandaError::Protocol {
            detail: "disk writer thread panicked".to_string(),
        })?;
        match (run, disk) {
            (Ok(()), disk) => Ok(disk?),
            // A dead writer also breaks the assembly loop; the disk
            // error is the root cause.
            (Err(_), Err(disk)) => Err(disk.into()),
            (Err(run), Ok(())) => Err(run),
        }
    }

    /// Read path: stream the file forward, scattering each subchunk's
    /// pieces to the owning clients. At `depth ≥ 2` a disk thread reads
    /// ahead while the current subchunk is packed and pushed.
    fn read_array(
        &mut self,
        array_idx: u32,
        op: &ArrayOp,
        subchunk_bytes: usize,
        depth: usize,
    ) -> Result<(), PandaError> {
        let meta = &op.meta;
        let elem = meta.elem_size();
        let plan = build_server_plan(meta, self.server_idx, self.num_servers, subchunk_bytes);
        if plan.total_bytes == 0 {
            return Ok(());
        }
        // Section reads skip non-overlapping subchunks entirely; the
        // remaining reads still proceed in file order. Selecting up
        // front keeps the prefetcher and the scatter loop in lockstep.
        let selected: Vec<&PlanSubchunk> = plan
            .subchunks()
            .filter(|sub| match &op.section {
                None => true,
                Some(section) => sub.region.overlaps(section),
            })
            .collect();
        if selected.is_empty() {
            return Ok(());
        }
        if self.obs_on() {
            for (si, sub) in selected.iter().enumerate() {
                self.emit(&Event::SubchunkPlanned {
                    key: SubchunkKey::new(self.server_idx, array_idx, si),
                    bytes: sub.bytes as u64,
                });
            }
        }
        let file = self
            .fs
            .open(&Self::file_name(&op.file_tag, self.server_idx))?;
        if depth <= 1 {
            self.read_subchunks_inline(array_idx, elem, op.section.as_ref(), &selected, file)
        } else {
            self.read_subchunks_pipelined(
                array_idx,
                elem,
                op.section.as_ref(),
                &selected,
                file,
                depth,
            )
        }
    }

    /// Unpipelined read schedule: read a subchunk, scatter it, repeat.
    /// The read buffer and the pack scratch are both recycled.
    fn read_subchunks_inline(
        &mut self,
        array_idx: u32,
        elem: usize,
        section: Option<&Region>,
        subs: &[&PlanSubchunk],
        mut file: Box<dyn FileHandle>,
    ) -> Result<(), PandaError> {
        let mut seq = 0u64;
        let mut buf = Vec::new();
        let mut scratch = Vec::new();
        for (si, sub) in subs.iter().enumerate() {
            let key = SubchunkKey::new(self.server_idx, array_idx, si);
            buf.clear();
            buf.resize(sub.bytes, 0);
            let t_disk = self.obs_on().then(Instant::now);
            file.read_at(sub.file_offset, &mut buf)?;
            if let Some(t) = t_disk {
                self.emit(&Event::DiskReadDone {
                    key,
                    offset: sub.file_offset,
                    bytes: buf.len() as u64,
                    dur: t.elapsed(),
                });
            }
            self.scatter_subchunk(key, sub, section, &buf, &mut scratch, &mut seq, elem)?;
        }
        Ok(())
    }

    /// Pipelined read schedule: a disk thread prefetches up to `depth`
    /// subchunks ahead through a bounded queue while this thread packs
    /// and pushes the current one. Buffers recycle through the pool;
    /// the message stream is identical to the inline schedule.
    fn read_subchunks_pipelined(
        &mut self,
        array_idx: u32,
        elem: usize,
        section: Option<&Region>,
        subs: &[&PlanSubchunk],
        file: Box<dyn FileHandle>,
        depth: usize,
    ) -> Result<(), PandaError> {
        let jobs: Vec<(SubchunkKey, u64, usize)> = subs
            .iter()
            .enumerate()
            .map(|(si, s)| {
                (
                    SubchunkKey::new(self.server_idx, array_idx, si),
                    s.file_offset,
                    s.bytes,
                )
            })
            .collect();
        // Queue capacity depth-1 plus the buffer being scattered keeps
        // `depth` subchunks in memory (depth 2 = classic double buffer).
        let (full_tx, full_rx) = mpsc::sync_channel::<Vec<u8>>(depth - 1);
        let (pool_tx, pool_rx) = mpsc::channel::<Vec<u8>>();
        let recorder = Arc::clone(&self.recorder);
        let node = self.my_rank();
        let reader = std::thread::Builder::new()
            .name(format!("panda-reader-{}", self.server_idx))
            .spawn(move || -> Result<(), FsError> {
                let mut file = file;
                for (key, offset, bytes) in jobs {
                    let mut buf = pool_rx.try_recv().unwrap_or_default();
                    buf.clear();
                    buf.resize(bytes, 0);
                    let t_disk = recorder.enabled().then(Instant::now);
                    file.read_at(offset, &mut buf)?;
                    if let Some(t) = t_disk {
                        recorder.record(
                            node,
                            &Event::DiskReadDone {
                                key,
                                offset,
                                bytes: buf.len() as u64,
                                dur: t.elapsed(),
                            },
                        );
                    }
                    if full_tx.send(buf).is_err() {
                        // Consumer bailed; nothing left to prefetch for.
                        return Ok(());
                    }
                }
                Ok(())
            })
            .expect("spawn disk-reader thread");

        let run = (|| -> Result<(), PandaError> {
            let mut seq = 0u64;
            let mut scratch = Vec::new();
            for (si, sub) in subs.iter().enumerate() {
                let buf = full_rx.recv().map_err(|_| PandaError::Protocol {
                    detail: "disk reader stopped early".to_string(),
                })?;
                let key = SubchunkKey::new(self.server_idx, array_idx, si);
                self.scatter_subchunk(key, sub, section, &buf, &mut scratch, &mut seq, elem)?;
                // Hand the drained buffer back for the next prefetch.
                let _ = pool_tx.send(buf);
            }
            Ok(())
        })();

        // Unblock a prefetcher still parked on a full queue, then join.
        drop(full_rx);
        let disk = reader.join().map_err(|_| PandaError::Protocol {
            detail: "disk reader thread panicked".to_string(),
        })?;
        match (run, disk) {
            (Ok(()), disk) => Ok(disk?),
            // A dead reader also breaks the scatter loop; the disk error
            // is the root cause.
            (Err(_), Err(disk)) => Err(disk.into()),
            (Err(run), Ok(())) => Err(run),
        }
    }

    /// Pack and push one subchunk's pieces to their owning clients,
    /// trimming each piece to the requested section. `key.array` names
    /// the array index on the wire.
    #[allow(clippy::too_many_arguments)]
    fn scatter_subchunk(
        &mut self,
        key: SubchunkKey,
        sub: &PlanSubchunk,
        section: Option<&Region>,
        buf: &[u8],
        scratch: &mut Vec<u8>,
        seq: &mut u64,
        elem: usize,
    ) -> Result<(), PandaError> {
        for (pi, piece) in sub.pieces.iter().enumerate() {
            let target = match section {
                None => Some(piece.region.clone()),
                Some(section) => piece.region.intersect(section),
            };
            let Some(target) = target else { continue };
            let t_pack = self.obs_on().then(Instant::now);
            copy::pack_region_into(scratch, buf, &sub.region, &target, elem)?;
            if let Some(t) = t_pack {
                self.emit(&Event::Packed {
                    key,
                    piece: pi as u32,
                    bytes: scratch.len() as u64,
                    dur: t.elapsed(),
                });
            }
            send_data(
                &mut *self.transport,
                NodeId(piece.client),
                key.array,
                *seq,
                &target,
                scratch,
            )?;
            self.emit(&Event::PushSent {
                key,
                piece: pi as u32,
                client: piece.client as u32,
                bytes: scratch.len() as u64,
            });
            *seq += 1;
        }
        Ok(())
    }

    /// Baseline support: apply a positioned write in arrival order.
    fn raw_write(&mut self, file: &str, offset: u64, payload: &[u8]) -> Result<(), PandaError> {
        let handle = self.raw_handle(file)?;
        handle.write_at(offset, payload)?;
        Ok(())
    }

    /// Baseline support: serve a positioned read.
    fn raw_read(
        &mut self,
        src: NodeId,
        file: &str,
        offset: u64,
        len: usize,
        seq: u64,
    ) -> Result<(), PandaError> {
        let mut payload = vec![0u8; len];
        let handle = self.raw_handle(file)?;
        handle.read_at(offset, &mut payload)?;
        send_msg(&mut *self.transport, src, &Msg::RawData { seq, payload })?;
        Ok(())
    }

    fn raw_handle(&mut self, file: &str) -> Result<&mut Box<dyn FileHandle>, PandaError> {
        match self.raw_handles.entry(file.to_string()) {
            std::collections::hash_map::Entry::Occupied(e) => Ok(e.into_mut()),
            std::collections::hash_map::Entry::Vacant(e) => {
                let handle = if self.fs.exists(file) {
                    self.fs.open(file)?
                } else {
                    self.fs.create(file)?
                };
                Ok(e.insert(handle))
            }
        }
    }

    /// Baseline support: completion barrier. Once every client has sent
    /// `RawDone`, sync all touched files and acknowledge everyone. The
    /// seen set is a fixed bitmap over client ranks, so the duplicate
    /// check is O(1) regardless of client count.
    fn raw_done(&mut self, src: NodeId) -> Result<(), PandaError> {
        match self.raw_done.get_mut(src.0) {
            Some(seen) if !*seen => *seen = true,
            _ => {
                return Err(PandaError::Protocol {
                    detail: format!("duplicate or non-client RawDone from {src}"),
                })
            }
        }
        self.raw_done_count += 1;
        if self.raw_done_count == self.num_clients {
            for handle in self.raw_handles.values_mut() {
                handle.sync()?;
            }
            // Drop the handle cache: the logical op is over, and fresh
            // handles restart sequentiality tracking for the next op.
            self.raw_handles.clear();
            self.raw_done_count = 0;
            for client in 0..self.num_clients {
                debug_assert!(self.raw_done[client], "barrier complete");
                self.raw_done[client] = false;
                send_msg(&mut *self.transport, NodeId(client), &Msg::RawAck)?;
            }
        }
        Ok(())
    }
}
