//! The Panda server: the I/O-node side of a collective operation.
//!
//! Each server runs [`ServerNode::run`] in its own thread. On receiving
//! a collective request it lowers its per-array plans (round-robin
//! chunks → subchunks → client pieces) into one [`CollectiveSchedule`]
//! and hands the flat step stream to a single staged engine,
//! `execute_schedule` — the only code path that moves collective data,
//! for every direction, pipeline depth, and array count:
//!
//! * the **exchange stage** (this thread) talks to the clients: on the
//!   write direction it keeps up to `depth` steps' `Fetch` requests in
//!   flight (disambiguated by a request-global `seq`) and receives the
//!   replies in bursts; on the read direction it pushes packed pieces
//!   to their owners in step order;
//! * the **reorganization stage** runs the copies on the server's
//!   [`IoPool`]: reply bursts assemble into their window slots in
//!   parallel, and read-side packs split across the workers;
//! * the **pinned disk stage** is one task owning every file handle of
//!   the request, consuming completed subchunk buffers (write) or
//!   prefetching them (read) strictly in schedule order. Writes go
//!   through [`FileHandle::submit_write`], so on a submission-queue
//!   backend the stage issues up to `depth - 1` writes ahead of their
//!   completions and recycles buffers as they land; fsync placement is
//!   the request's [`SyncPolicy`] (per write, per file as its last step
//!   lands, or one coalesced end-of-stage barrier).
//!
//! The engine's per-file FIFO guarantee is what makes files
//! byte-identical at every depth: the disk stage processes steps in
//! flat schedule order, per-file offsets are sequential by
//! construction, and exactly one task touches the files — so depth 1 is
//! simply a window of one, and a single array is a group of one.
//! Buffers recycle through the stage-boundary channels, so steady state
//! runs allocation-free. The master server (index 0) additionally
//! relays the request to its peers and reports completion to the master
//! client.

use std::collections::{HashMap, VecDeque};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use panda_fs::{FileHandle, FileSystem, FsError, SyncPolicy};
use panda_msg::{Bytes, MatchSpec, NodeId, Transport};
use panda_obs::{Event, OpDir, Recorder, SubchunkKey};
use panda_schema::{copy, Region, SchemaError};

use crate::error::PandaError;
use crate::plan::{CollectiveSchedule, ScheduleStep};
use crate::pool::IoPool;
use crate::protocol::{
    recv_burst, recv_msg, send_data, send_msg, tags, CollectiveRequest, Msg, OpKind,
};

/// One I/O node.
pub struct ServerNode {
    transport: Box<dyn Transport>,
    fs: Arc<dyn FileSystem>,
    /// 0-based index among the servers.
    server_idx: usize,
    num_clients: usize,
    num_servers: usize,
    /// Session recorder; events are tagged with this server's fabric
    /// rank. Durations are measured only while it is enabled.
    recorder: Arc<dyn Recorder>,
    /// Open handles for baseline raw operations, keyed by file name.
    raw_handles: HashMap<String, Box<dyn FileHandle>>,
    /// Per-client flag: has this client sent `RawDone` for the current
    /// baseline op? Indexed by client rank.
    raw_done: Vec<bool>,
    /// Number of set flags in [`ServerNode::raw_done`].
    raw_done_count: usize,
    /// Worker pool shared by the pinned disk stage and the parallel
    /// reorganization passes.
    pool: IoPool,
}

fn op_dir(op: OpKind) -> OpDir {
    match op {
        OpKind::Write => OpDir::Write,
        OpKind::Read => OpDir::Read,
    }
}

/// A subchunk being assembled inside the write window.
struct InFlight {
    /// Assembly buffer (recycled through the disk stage's free channel).
    buf: Vec<u8>,
    /// Pieces still missing.
    remaining: usize,
}

/// The pinned disk stage's view of one schedule step.
struct DiskJob {
    /// Index into the stage's file-handle table.
    file: usize,
    /// The step's subchunk key, for event attribution.
    key: SubchunkKey,
    /// Absolute byte offset in the file.
    offset: u64,
    /// Subchunk size in bytes.
    bytes: usize,
}

/// The pinned disk stage's per-file state.
struct DiskFile {
    handle: Box<dyn FileHandle>,
    /// Steps left until this file's last write is issued — the
    /// per-file sync policy's fsync countdown.
    remaining: usize,
    /// Writes submitted to the backend but not yet recycled. Zero for
    /// synchronous backends, whose `submit_write` completes inline.
    in_flight: usize,
}

/// The disk stage's connection to the exchange/reorg stages. The
/// variant is the direction: a write collective *pulls* full buffers
/// out of the window, a read collective *pushes* prefetched ones into
/// it. Either way full buffers flow one way through a bounded channel
/// (the pipeline window) and drained buffers recycle back unbounded.
enum DiskLink {
    /// Write direction: consume completed subchunks, return them
    /// drained.
    Pull {
        /// Completed subchunk buffers, in schedule order.
        full: mpsc::Receiver<Vec<u8>>,
        /// Drained buffers going back for reuse.
        free: mpsc::Sender<Vec<u8>>,
        /// Completion window: submitted-but-uncompleted writes allowed
        /// before the stage blocks on a completion (`depth - 1`, so
        /// depth 1 completes each write before the next fetch goes
        /// out — the strictly serialized schedule).
        window: usize,
    },
    /// Read direction: prefetch subchunks from recycled buffers.
    Push {
        /// Prefetched subchunk buffers, in schedule order.
        full: mpsc::SyncSender<Vec<u8>>,
        /// Drained buffers coming back for reuse.
        free: mpsc::Receiver<Vec<u8>>,
        /// Total buffers allowed in circulation (= pipeline depth,
        /// counting the one the exchange stage is scattering). One
        /// buffer means no read-ahead: the strictly serialized
        /// schedule.
        buffers: usize,
    },
}

/// The engine's pinned disk stage: the single task that touches this
/// server's files during a collective. It processes `jobs` strictly in
/// schedule order — per-file offsets are sequential by construction, so
/// every file access is sequential and per-file FIFO holds at any
/// depth. Returns `Ok` early if the other side of the link hung up;
/// the main thread's join logic surfaces whichever error caused that.
fn run_disk_stage(
    mut files: Vec<DiskFile>,
    jobs: Vec<DiskJob>,
    sync_policy: SyncPolicy,
    recorder: Arc<dyn Recorder>,
    node: u32,
    link: DiskLink,
) -> Result<(), FsError> {
    match link {
        DiskLink::Pull { full, free, window } => {
            // Completed-buffer recycling: drain a file's finished
            // submissions back into the free channel and update the
            // in-flight accounting.
            let drain = |f: &mut DiskFile, total: &mut usize, block: bool| -> Result<(), FsError> {
                for buf in f.handle.drain_completions(block)? {
                    f.in_flight -= 1;
                    *total -= 1;
                    let _ = free.send(buf);
                }
                Ok(())
            };
            let mut total_in_flight = 0usize;
            for job in jobs {
                let Ok(buf) = full.recv() else {
                    // The exchange stage bailed; nothing more will come.
                    return Ok(());
                };
                let bytes = buf.len() as u64;
                let t_disk = recorder.enabled().then(Instant::now);
                if matches!(sync_policy, SyncPolicy::PerWrite) {
                    // The paper's semantics: fsync after every write
                    // operation. Strictly synchronous by definition.
                    let f = &mut files[job.file];
                    f.handle.write_at(job.offset, &buf)?;
                    if let Some(t) = t_disk {
                        recorder.record(
                            node,
                            &Event::DiskWriteDone {
                                key: job.key,
                                offset: job.offset,
                                bytes,
                                dur: t.elapsed(),
                            },
                        );
                    }
                    let t_sync = recorder.enabled().then(Instant::now);
                    f.handle.sync()?;
                    if let Some(t) = t_sync {
                        recorder.record(
                            node,
                            &Event::DiskSyncDone {
                                files: 1,
                                dur: t.elapsed(),
                            },
                        );
                    }
                    let _ = free.send(buf);
                } else {
                    // Submission path: hand the buffer to the backend
                    // and move on. Synchronous backends complete inline
                    // and return the buffer; a submission-queue backend
                    // keeps it until a completion thread lands the
                    // write, so the stage runs ahead of the device by
                    // up to `window` writes.
                    let f = &mut files[job.file];
                    match f.handle.submit_write(job.offset, buf)? {
                        Some(buf) => {
                            if let Some(t) = t_disk {
                                recorder.record(
                                    node,
                                    &Event::DiskWriteDone {
                                        key: job.key,
                                        offset: job.offset,
                                        bytes,
                                        dur: t.elapsed(),
                                    },
                                );
                            }
                            let _ = free.send(buf);
                        }
                        None => {
                            f.in_flight += 1;
                            total_in_flight += 1;
                            if let Some(t) = t_disk {
                                // Time spent issuing, not completing:
                                // the device time surfaces later as
                                // `FsWrite`/`FsComplete` events.
                                recorder.record(
                                    node,
                                    &Event::DiskWriteDone {
                                        key: job.key,
                                        offset: job.offset,
                                        bytes,
                                        dur: t.elapsed(),
                                    },
                                );
                            }
                        }
                    }
                    drain(&mut files[job.file], &mut total_in_flight, false)?;
                    while total_in_flight > window {
                        // Steps are file-sequential, so the oldest
                        // submission belongs to the first file still in
                        // flight; block on its next completion.
                        let idx = files
                            .iter()
                            .position(|f| f.in_flight > 0)
                            .expect("in-flight count implies an in-flight file");
                        drain(&mut files[idx], &mut total_in_flight, true)?;
                    }
                }
                let f = &mut files[job.file];
                f.remaining -= 1;
                // Under the per-file policy, sync as soon as an array's
                // last subchunk is issued, overlapped with the next
                // array's exchange. `sync` is a completion barrier, so
                // the drain below returns every outstanding buffer.
                if f.remaining == 0 && matches!(sync_policy, SyncPolicy::PerFile) {
                    let t_sync = recorder.enabled().then(Instant::now);
                    f.handle.sync()?;
                    if let Some(t) = t_sync {
                        recorder.record(
                            node,
                            &Event::DiskSyncDone {
                                files: 1,
                                dur: t.elapsed(),
                            },
                        );
                    }
                    drain(&mut files[job.file], &mut total_in_flight, false)?;
                }
            }
            if matches!(sync_policy, SyncPolicy::PerCollective) {
                // One coalesced barrier for the whole disk stage: every
                // fsync happens after every write has been issued, so
                // no flush ever sits between two writes.
                let t_sync = recorder.enabled().then(Instant::now);
                for f in files.iter_mut() {
                    f.handle.sync()?;
                    drain(f, &mut total_in_flight, false)?;
                }
                if let Some(t) = t_sync {
                    recorder.record(
                        node,
                        &Event::DiskSyncDone {
                            files: files.len() as u32,
                            dur: t.elapsed(),
                        },
                    );
                }
            }
        }
        DiskLink::Push {
            full,
            free,
            buffers,
        } => {
            let mut circulating = 0usize;
            for job in jobs {
                let mut buf = match free.try_recv() {
                    Ok(b) => b,
                    Err(_) if circulating < buffers => {
                        circulating += 1;
                        Vec::new()
                    }
                    // The whole pipeline window is downstream: the next
                    // read must wait until the exchange stage drains a
                    // buffer. At depth 1 this serializes read → push.
                    Err(_) => match free.recv() {
                        Ok(b) => b,
                        // Consumer bailed; nothing left to prefetch for.
                        Err(_) => return Ok(()),
                    },
                };
                buf.clear();
                buf.resize(job.bytes, 0);
                let t_disk = recorder.enabled().then(Instant::now);
                files[job.file].handle.read_at(job.offset, &mut buf)?;
                if recorder.enabled() {
                    if let Some(t) = t_disk {
                        recorder.record(
                            node,
                            &Event::DiskReadDone {
                                key: job.key,
                                offset: job.offset,
                                bytes: buf.len() as u64,
                                dur: t.elapsed(),
                            },
                        );
                    }
                    recorder.record(
                        node,
                        &Event::DiskReadQueued {
                            key: job.key,
                            bytes: buf.len() as u64,
                        },
                    );
                }
                if full.send(buf).is_err() {
                    // Consumer bailed; nothing left to prefetch for.
                    return Ok(());
                }
            }
        }
    }
    Ok(())
}

/// Copy one fetched piece into its subchunk's assembly buffer and
/// record the reorganization. Every write step funnels through here
/// from the engine's pooled assembly jobs.
#[allow(clippy::too_many_arguments)]
fn assemble_piece(
    recorder: &dyn Recorder,
    node: u32,
    key: SubchunkKey,
    piece: u32,
    buf: &mut [u8],
    sub_region: &Region,
    region: &Region,
    payload: &[u8],
    elem: usize,
) -> Result<(), SchemaError> {
    let t_pack = recorder.enabled().then(Instant::now);
    copy::copy_region(payload, region, buf, sub_region, region, elem)?;
    if let Some(t) = t_pack {
        recorder.record(
            node,
            &Event::ReorgWorker {
                key,
                piece,
                bytes: payload.len() as u64,
                dur: t.elapsed(),
            },
        );
    }
    Ok(())
}

impl ServerNode {
    pub(crate) fn new(
        transport: Box<dyn Transport>,
        fs: Arc<dyn FileSystem>,
        server_idx: usize,
        num_clients: usize,
        num_servers: usize,
        io_workers: usize,
        recorder: Arc<dyn Recorder>,
    ) -> Self {
        ServerNode {
            transport,
            fs,
            server_idx,
            num_clients,
            num_servers,
            recorder,
            raw_handles: HashMap::new(),
            raw_done: vec![false; num_clients],
            raw_done_count: 0,
            pool: IoPool::new(io_workers),
        }
    }

    fn is_master(&self) -> bool {
        self.server_idx == 0
    }

    /// This server's fabric rank (servers follow the clients).
    fn my_rank(&self) -> u32 {
        (self.num_clients + self.server_idx) as u32
    }

    /// Whether instrumentation (and therefore clock reads) is on.
    fn obs_on(&self) -> bool {
        self.recorder.enabled()
    }

    /// Record one event under this server's rank, if recording is on.
    fn emit(&self, event: &Event<'_>) {
        if self.recorder.enabled() {
            self.recorder.record(self.my_rank(), event);
        }
    }

    fn master_server(&self) -> NodeId {
        NodeId(self.num_clients)
    }

    fn master_client(&self) -> NodeId {
        NodeId(0)
    }

    /// A step's subchunk key under this server.
    fn key_of(&self, step: &ScheduleStep) -> SubchunkKey {
        SubchunkKey::new(self.server_idx, step.array, step.subchunk)
    }

    /// The server's per-array file name for an operation.
    pub fn file_name(file_tag: &str, server_idx: usize) -> String {
        format!("{file_tag}.s{server_idx}")
    }

    /// Main loop: serve collective requests and baseline raw operations
    /// until shutdown.
    pub fn run(mut self) -> Result<(), PandaError> {
        loop {
            let (src, msg) = recv_msg(&mut *self.transport, MatchSpec::any())?;
            match msg {
                Msg::Shutdown => return Ok(()),
                Msg::Collective(req) => self.handle_collective(req)?,
                Msg::RawWrite {
                    file,
                    offset,
                    payload,
                } => self.raw_write(&file, offset, &payload)?,
                Msg::RawRead {
                    file,
                    offset,
                    len,
                    seq,
                } => self.raw_read(src, &file, offset, len as usize, seq)?,
                Msg::RawDone => self.raw_done(src)?,
                Msg::RawStat { file, seq } => {
                    let len = if self.fs.exists(&file) {
                        self.fs.open(&file)?.len()
                    } else {
                        u64::MAX
                    };
                    send_msg(&mut *self.transport, src, &Msg::RawStatReply { seq, len })?;
                }
                other => {
                    return Err(PandaError::Protocol {
                        detail: format!("server got unexpected tag {}", other.tag()),
                    })
                }
            }
        }
    }

    /// Execute one collective operation end to end: lower the request
    /// into a [`CollectiveSchedule`], run it through the staged engine,
    /// then take part in the completion chain.
    fn handle_collective(&mut self, req: CollectiveRequest) -> Result<(), PandaError> {
        // The master server relays the schemas to the other servers; the
        // servers never talk to each other during the transfer itself.
        if self.is_master() {
            for s in 1..self.num_servers {
                let dst = NodeId(self.num_clients + s);
                send_msg(&mut *self.transport, dst, &Msg::Collective(req.clone()))?;
            }
        }

        let depth = req.pipeline_depth.max(1);
        let t_op = self.obs_on().then(Instant::now);
        self.emit(&Event::RequestIssued {
            op: op_dir(req.op),
            arrays: req.arrays.len() as u32,
            pipeline_depth: depth as u32,
        });
        if matches!(req.op, OpKind::Write) && req.arrays.iter().any(|a| a.section.is_some()) {
            return Err(PandaError::Protocol {
                detail: "section writes are not supported".to_string(),
            });
        }
        let schedule = CollectiveSchedule::build(
            &req.arrays,
            req.op,
            self.server_idx,
            self.num_servers,
            req.subchunk_bytes,
            req.sync_policy,
        );
        self.execute_schedule(&schedule, op_dir(req.op), depth)?;
        if let Some(t) = t_op {
            self.emit(&Event::CollectiveDone {
                op: op_dir(req.op),
                dur: t.elapsed(),
            });
        }

        // Completion: workers report to the master server; the master
        // server tells the master client once everyone (incl. itself)
        // is done.
        if self.is_master() {
            for _ in 1..self.num_servers {
                let (_, msg) = recv_msg(&mut *self.transport, MatchSpec::tag(tags::SERVER_DONE))?;
                debug_assert_eq!(msg, Msg::ServerDone);
            }
            let dst = self.master_client();
            send_msg(&mut *self.transport, dst, &Msg::Complete)?;
        } else {
            let dst = self.master_server();
            send_msg(&mut *self.transport, dst, &Msg::ServerDone)?;
        }
        Ok(())
    }

    /// The staged schedule engine — the one execution path behind every
    /// collective. `dir` selects the exchange stage's sense
    /// (pull-from-clients for writes, push-to-clients for reads) and
    /// the disk stage's [`DiskLink`] wiring; everything else — the
    /// depth-`d` window, the pooled reorganization, the per-file FIFO
    /// disk order, the buffer recycling — is shared.
    fn execute_schedule(
        &mut self,
        sched: &CollectiveSchedule,
        dir: OpDir,
        depth: usize,
    ) -> Result<(), PandaError> {
        if self.obs_on() {
            for step in &sched.steps {
                self.emit(&Event::SubchunkPlanned {
                    key: self.key_of(step),
                    bytes: step.sub.bytes as u64,
                });
            }
        }
        // Arrays with no data on this server still get their (empty)
        // file created and synced on the write direction.
        for tag in &sched.empty_files {
            let mut file = self.fs.create(&Self::file_name(tag, self.server_idx))?;
            file.sync()?;
        }
        if sched.is_empty() {
            return Ok(());
        }
        // The disk stage owns every file handle of the request for the
        // whole collective; `remaining` counts down to each file's
        // fsync. The planner knows every file's final length before the
        // first byte moves, so written files get their whole extent
        // preallocated up front.
        let mut files: Vec<DiskFile> = Vec::with_capacity(sched.files.len());
        for f in &sched.files {
            let name = Self::file_name(&f.tag, self.server_idx);
            let handle = match dir {
                OpDir::Write => {
                    let mut h = self.fs.create(&name)?;
                    h.preallocate(f.bytes)?;
                    h
                }
                OpDir::Read => self.fs.open(&name)?,
            };
            files.push(DiskFile {
                handle,
                remaining: f.steps,
                in_flight: 0,
            });
        }
        let jobs: Vec<DiskJob> = sched
            .steps
            .iter()
            .map(|step| DiskJob {
                file: step.file,
                key: self.key_of(step),
                offset: step.sub.file_offset,
                bytes: step.sub.bytes,
            })
            .collect();
        let recorder = Arc::clone(&self.recorder);
        let node = self.my_rank();
        let sync_policy = sched.sync_policy;

        match dir {
            OpDir::Write => {
                // The bounded full queue caps buffered-but-unwritten
                // subchunks; at depth 1 the exchange loop additionally
                // waits for each buffer to recycle, which serializes
                // the schedule strictly (hence a completion window of
                // zero: each submitted write is drained before the
                // buffer can recycle).
                let (full_tx, full_rx) = mpsc::sync_channel::<Vec<u8>>(depth);
                let (free_tx, free_rx) = mpsc::channel::<Vec<u8>>();
                let link = DiskLink::Pull {
                    full: full_rx,
                    free: free_tx,
                    window: depth - 1,
                };
                let disk = self.pool.spawn_pinned(move || {
                    run_disk_stage(files, jobs, sync_policy, recorder, node, link)
                });
                let run = self.pull_from_clients(sched, depth, &full_tx, &free_rx);
                // Closing the full queue lets the disk stage drain and
                // exit.
                drop(full_tx);
                Self::join_disk(run, disk)
            }
            OpDir::Read => {
                // `depth` buffers circulate, counting the one being
                // scattered (depth 1 = no read-ahead, depth 2 = classic
                // double buffer); the queue bound keeps the prefetcher
                // from running further ahead than the window.
                let (full_tx, full_rx) = mpsc::sync_channel::<Vec<u8>>(depth - 1);
                let (free_tx, free_rx) = mpsc::channel::<Vec<u8>>();
                let link = DiskLink::Push {
                    full: full_tx,
                    free: free_rx,
                    buffers: depth,
                };
                let disk = self.pool.spawn_pinned(move || {
                    run_disk_stage(files, jobs, sync_policy, recorder, node, link)
                });
                let run = self.push_to_clients(sched, &full_rx, &free_tx);
                // Unblock a prefetcher still parked on a full queue,
                // then join.
                drop(full_rx);
                Self::join_disk(run, disk)
            }
        }
    }

    /// Join the disk stage and combine its verdict with the exchange
    /// stage's: a dead disk stage also breaks the exchange loop, so the
    /// disk error is the root cause when both failed.
    fn join_disk(
        run: Result<(), PandaError>,
        disk: crate::pool::PinnedTask<Result<(), FsError>>,
    ) -> Result<(), PandaError> {
        let disk = disk.join().map_err(|_| PandaError::Protocol {
            detail: "disk stage task panicked".to_string(),
        })?;
        match (run, disk) {
            (Ok(()), disk) => Ok(disk?),
            (Err(_), Err(disk)) => Err(disk.into()),
            (Err(run), Ok(())) => Err(run),
        }
    }

    /// Write-direction exchange + reorganization stages: keep up to
    /// `depth` steps' fetches outstanding, receive replies in bursts,
    /// assemble each burst into its window slots in parallel on the
    /// pool, and hand completed head subchunks to the disk stage in
    /// schedule order.
    fn pull_from_clients(
        &mut self,
        sched: &CollectiveSchedule,
        depth: usize,
        full_tx: &mpsc::SyncSender<Vec<u8>>,
        free_rx: &mpsc::Receiver<Vec<u8>>,
    ) -> Result<(), PandaError> {
        let steps = &sched.steps;
        let mut seq = 0u64;
        // seq → (step index, piece index) for every in-flight fetch; the
        // request-global seq disambiguates replies across arrays sharing
        // the window.
        let mut seq_map: HashMap<u64, (usize, usize)> = HashMap::new();
        let mut window: VecDeque<InFlight> = VecDeque::with_capacity(depth);
        let mut front = 0usize; // oldest step still in the window
        let mut next = 0usize; // next step to issue fetches for
        let mut circulating = 0usize; // buffers alive across both stages
        loop {
            // Hand completed head subchunks to the disk stage: it writes
            // step k while replies for k+1.. assemble here.
            while window.front().is_some_and(|s| s.remaining == 0) {
                let done = window.pop_front().expect("checked front");
                self.emit(&Event::DiskWriteQueued {
                    key: self.key_of(&steps[front]),
                    bytes: done.buf.len() as u64,
                });
                if full_tx.send(done.buf).is_err() {
                    // Disk stage bailed; its join has the cause.
                    return Err(PandaError::Protocol {
                        detail: "disk stage stopped early".to_string(),
                    });
                }
                front += 1;
            }
            if front == steps.len() {
                return Ok(());
            }
            // Keep up to `depth` steps' fetches outstanding.
            while next < steps.len() && next - front < depth {
                let step = &steps[next];
                let mut buf = if circulating < depth {
                    circulating += 1;
                    Vec::new()
                } else if depth == 1 {
                    // Depth 1 is the strictly serialized oracle: wait
                    // for the disk write to land before the next fetch
                    // goes out.
                    free_rx.recv().map_err(|_| PandaError::Protocol {
                        detail: "disk stage stopped early".to_string(),
                    })?
                } else {
                    // Deeper windows reuse drained buffers
                    // opportunistically and keep fetching while the
                    // disk stage works; the bounded full queue is the
                    // backpressure.
                    free_rx.try_recv().unwrap_or_default()
                };
                buf.clear();
                buf.resize(step.sub.bytes, 0);
                for (pi, piece) in step.sub.pieces.iter().enumerate() {
                    send_msg(
                        &mut *self.transport,
                        NodeId(piece.client),
                        &Msg::Fetch {
                            array: step.array,
                            seq,
                            region: piece.region.clone(),
                        },
                    )?;
                    self.emit(&Event::FetchSent {
                        key: self.key_of(step),
                        piece: pi as u32,
                        client: piece.client as u32,
                    });
                    seq_map.insert(seq, (next, pi));
                    seq += 1;
                }
                window.push_back(InFlight {
                    buf,
                    remaining: step.sub.pieces.len(),
                });
                next += 1;
            }
            // One reply burst becomes one parallel reorganization pass
            // instead of d serial copies.
            let t_wait = self.obs_on().then(Instant::now);
            let batch = recv_burst(&mut *self.transport, MatchSpec::tag(tags::DATA))?;
            // Route each reply to its window slot.
            let mut per_slot: Vec<Vec<(usize, Region, Bytes)>> = vec![Vec::new(); window.len()];
            for (bi, msg) in batch.into_iter().enumerate() {
                let Msg::Data {
                    seq: rseq,
                    region,
                    payload,
                    ..
                } = msg
                else {
                    unreachable!("matched DATA tag");
                };
                let (si, pi) = seq_map.remove(&rseq).ok_or_else(|| PandaError::Protocol {
                    detail: format!("unexpected data seq {rseq}"),
                })?;
                let step = &steps[si];
                debug_assert_eq!(region, step.sub.pieces[pi].region);
                if let Some(t) = t_wait {
                    self.emit(&Event::FetchReplied {
                        key: self.key_of(step),
                        bytes: payload.len() as u64,
                        // Only the blocking receive actually waited.
                        wait: if bi == 0 { t.elapsed() } else { Duration::ZERO },
                    });
                }
                per_slot[si - front].push((pi, region, payload));
            }
            // Assemble the batch, window slots in parallel: each job
            // owns one slot's buffer (disjoint via `iter_mut`); pieces
            // within a slot stay serial.
            let recorder = &self.recorder;
            let node = self.my_rank();
            let mut jobs: Vec<Box<dyn FnOnce() -> Result<(), SchemaError> + Send + '_>> =
                Vec::new();
            for (off, (slot, items)) in window.iter_mut().zip(per_slot).enumerate() {
                if items.is_empty() {
                    continue;
                }
                let step = &steps[front + off];
                slot.remaining -= items.len();
                let buf = &mut slot.buf;
                let key = SubchunkKey::new(self.server_idx, step.array, step.subchunk);
                jobs.push(Box::new(move || {
                    for (pi, region, payload) in &items {
                        assemble_piece(
                            recorder.as_ref(),
                            node,
                            key,
                            *pi as u32,
                            buf,
                            &step.sub.region,
                            region,
                            payload,
                            step.elem,
                        )?;
                    }
                    Ok(())
                }));
            }
            self.pool.run_scoped_result(jobs)?;
        }
    }

    /// Read-direction exchange stage: for each step, in schedule order,
    /// take the next prefetched buffer from the disk stage, pack and
    /// push its pieces, and recycle the buffer.
    fn push_to_clients(
        &mut self,
        sched: &CollectiveSchedule,
        full_rx: &mpsc::Receiver<Vec<u8>>,
        free_tx: &mpsc::Sender<Vec<u8>>,
    ) -> Result<(), PandaError> {
        let mut seq = 0u64;
        for step in &sched.steps {
            let buf = full_rx.recv().map_err(|_| PandaError::Protocol {
                detail: "disk stage stopped early".to_string(),
            })?;
            self.scatter_step(step, &buf, &mut seq)?;
            // Hand the drained buffer back for the next prefetch.
            let _ = free_tx.send(buf);
        }
        Ok(())
    }

    /// Reorganize and push one read step: pack all of its pieces in
    /// parallel on the worker pool (large pieces additionally split
    /// along their outermost dimension inside
    /// [`IoPool::pack_region_par`]), trimming each to the requested
    /// section, then send them in piece order so the per-client message
    /// stream matches the serial schedule.
    fn scatter_step(
        &mut self,
        step: &ScheduleStep,
        buf: &[u8],
        seq: &mut u64,
    ) -> Result<(), PandaError> {
        let key = self.key_of(step);
        let targets: Vec<(usize, Region)> = step
            .sub
            .pieces
            .iter()
            .enumerate()
            .filter_map(|(pi, piece)| {
                let target = match &step.section {
                    None => Some(piece.region.clone()),
                    Some(section) => piece.region.intersect(section),
                };
                target.map(|t| (pi, t))
            })
            .collect();
        if targets.is_empty() {
            return Ok(());
        }
        let mut packed: Vec<Vec<u8>> = vec![Vec::new(); targets.len()];
        {
            let pool = &self.pool;
            let recorder = &self.recorder;
            let node = self.my_rank();
            let jobs: Vec<Box<dyn FnOnce() -> Result<(), SchemaError> + Send + '_>> = packed
                .iter_mut()
                .zip(&targets)
                .map(|(out, (pi, target))| {
                    Box::new(move || {
                        let t_pack = recorder.enabled().then(Instant::now);
                        pool.pack_region_par(out, buf, &step.sub.region, target, step.elem)?;
                        if let Some(t) = t_pack {
                            recorder.record(
                                node,
                                &Event::ReorgWorker {
                                    key,
                                    piece: *pi as u32,
                                    bytes: out.len() as u64,
                                    dur: t.elapsed(),
                                },
                            );
                        }
                        Ok(())
                    })
                        as Box<dyn FnOnce() -> Result<(), SchemaError> + Send + '_>
                })
                .collect();
            self.pool.run_scoped_result(jobs)?;
        }
        for ((pi, target), data) in targets.into_iter().zip(packed) {
            let bytes = data.len() as u64;
            send_data(
                &mut *self.transport,
                NodeId(step.sub.pieces[pi].client),
                key.array,
                *seq,
                &target,
                data,
            )?;
            self.emit(&Event::PushSent {
                key,
                piece: pi as u32,
                client: step.sub.pieces[pi].client as u32,
                bytes,
            });
            *seq += 1;
        }
        Ok(())
    }

    /// Baseline support: apply a positioned write in arrival order.
    fn raw_write(&mut self, file: &str, offset: u64, payload: &[u8]) -> Result<(), PandaError> {
        let handle = self.raw_handle(file)?;
        handle.write_at(offset, payload)?;
        Ok(())
    }

    /// Baseline support: serve a positioned read.
    fn raw_read(
        &mut self,
        src: NodeId,
        file: &str,
        offset: u64,
        len: usize,
        seq: u64,
    ) -> Result<(), PandaError> {
        let mut payload = vec![0u8; len];
        let handle = self.raw_handle(file)?;
        handle.read_at(offset, &mut payload)?;
        send_msg(&mut *self.transport, src, &Msg::RawData { seq, payload })?;
        Ok(())
    }

    fn raw_handle(&mut self, file: &str) -> Result<&mut Box<dyn FileHandle>, PandaError> {
        match self.raw_handles.entry(file.to_string()) {
            std::collections::hash_map::Entry::Occupied(e) => Ok(e.into_mut()),
            std::collections::hash_map::Entry::Vacant(e) => {
                let handle = if self.fs.exists(file) {
                    self.fs.open(file)?
                } else {
                    self.fs.create(file)?
                };
                Ok(e.insert(handle))
            }
        }
    }

    /// Baseline support: completion barrier. Once every client has sent
    /// `RawDone`, sync all touched files and acknowledge everyone. The
    /// seen set is a fixed bitmap over client ranks, so the duplicate
    /// check is O(1) regardless of client count.
    fn raw_done(&mut self, src: NodeId) -> Result<(), PandaError> {
        match self.raw_done.get_mut(src.0) {
            Some(seen) if !*seen => *seen = true,
            _ => {
                return Err(PandaError::Protocol {
                    detail: format!("duplicate or non-client RawDone from {src}"),
                })
            }
        }
        self.raw_done_count += 1;
        if self.raw_done_count == self.num_clients {
            for handle in self.raw_handles.values_mut() {
                handle.sync()?;
            }
            // Drop the handle cache: the logical op is over, and fresh
            // handles restart sequentiality tracking for the next op.
            self.raw_handles.clear();
            self.raw_done_count = 0;
            for client in 0..self.num_clients {
                debug_assert!(self.raw_done[client], "barrier complete");
                self.raw_done[client] = false;
                send_msg(&mut *self.transport, NodeId(client), &Msg::RawAck)?;
            }
        }
        Ok(())
    }
}
