//! The Panda server: the I/O-node side of collective operations.
//!
//! Each server runs [`ServerNode::run`] in its own thread. Since the
//! multi-tenant service mode landed, that loop is a *request scheduler*
//! rather than a one-collective-at-a-time handler: up to
//! `max_concurrent_collectives` admitted requests are live at once,
//! each lowered into its own [`CollectiveSchedule`] and advanced as a
//! `RequestRun` state machine. One pass of the loop
//!
//! 1. **pumps** every live run (priority order, round-robin within a
//!    priority): issuing fetches, assembling reply bursts on the
//!    [`IoPool`], queueing completed subchunks to the disk task,
//!    scattering prefetched read buffers;
//! 2. **drains the transport** without blocking, routing `Data` replies
//!    to their run by the request id they echo, admitting new
//!    collectives, and serving the baseline raw plane;
//! 3. **drains disk completions** (recycled write buffers, filled read
//!    buffers, close acknowledgements) from the shared disk task;
//! 4. blocks only when nothing progressed — on the disk channel when
//!    disk work is outstanding, on the transport otherwise.
//!
//! The **pinned disk task** is spawned once per server and serves every
//! request: it keeps a per-request file table and processes
//! `DiskCmd`s strictly in arrival order, which interleaves requests
//! at subchunk granularity while preserving each request's per-file
//! FIFO — so every file is still written/read in exactly the serial
//! schedule's order and files stay byte-identical at any depth and any
//! concurrency. Write submission uses the `depth - 1` completion
//! window per request, and fsync placement honours each request's own
//! [`SyncPolicy`] (per write, per file as its last step lands, or one
//! coalesced barrier at the request's close) — per-request fsync
//! accounting, not fleet-global.
//!
//! **Admission** happens at the master server: a request beyond the
//! live cap waits in a bounded queue, and a single-participant
//! (session) request is refused with a typed [`Msg::Reject`] when the
//! queue is full — surfaced to the submitter as
//! [`PandaError::Admission`]. Multi-participant requests are *never*
//! rejected: their non-submitting participants are already blocked in
//! the collective with no abort path, so a rejection would strand
//! them; such requests always queue. Peers admit unconditionally —
//! the master already made the decision when it relayed.

use std::collections::{HashMap, VecDeque};
use std::mem;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use panda_fs::{FileHandle, FileSystem, FsError, SyncPolicy};
use panda_msg::{Bytes, MatchSpec, NodeId, Transport};
use panda_obs::{Event, OpDir, Recorder, SubchunkKey};
use panda_schema::{copy, Region, SchemaError};

use crate::error::{AdmissionIssue, PandaError};
use crate::health::ServiceHealth;
use crate::plan::{CollectiveSchedule, ScheduleStep};
use crate::pool::IoPool;
use crate::protocol::{
    recv_msg, send_data, send_msg, try_recv_msg, CollectiveRequest, Msg, OpKind,
};

/// How long the scheduler parks on the disk channel before re-polling
/// the transport, when disk work is outstanding but nothing else moved.
const DISK_PARK: Duration = Duration::from_micros(200);

/// One I/O node.
pub struct ServerNode {
    transport: Box<dyn Transport>,
    fs: Arc<dyn FileSystem>,
    /// 0-based index among the servers.
    server_idx: usize,
    num_clients: usize,
    num_servers: usize,
    /// Live-collective cap (admission control, master only).
    max_concurrent: usize,
    /// Wait-queue cap beyond the live collectives (master only).
    max_queued: usize,
    /// Session recorder; events are tagged with this server's fabric
    /// rank. Durations are measured only while it is enabled.
    recorder: Arc<dyn Recorder>,
    /// Shared health gauges: this server publishes its queue depth,
    /// live-request count, and disk backlog after every scheduler pass.
    health: Arc<ServiceHealth>,
    /// Open handles for baseline raw operations, keyed by file name.
    raw_handles: HashMap<String, Box<dyn FileHandle>>,
    /// Per-client flag: has this client sent `RawDone` for the current
    /// baseline op? Indexed by client rank.
    raw_done: Vec<bool>,
    /// Number of set flags in [`ServerNode::raw_done`].
    raw_done_count: usize,
    /// Worker pool shared by the pinned disk task and the parallel
    /// reorganization passes.
    pool: IoPool,
}

fn op_dir(op: OpKind) -> OpDir {
    match op {
        OpKind::Write => OpDir::Write,
        OpKind::Read => OpDir::Read,
    }
}

/// A subchunk being assembled inside a write run's window.
struct InFlight {
    /// Assembly buffer (recycled through the disk task).
    buf: Vec<u8>,
    /// Pieces still missing.
    remaining: usize,
}

/// A fetched piece that arrived but has not been assembled yet.
struct PendingPiece {
    /// Step index within the run's schedule.
    step: usize,
    /// Piece index within the step's subchunk.
    piece: usize,
    /// The piece's global-array region.
    region: Region,
    /// The packed payload.
    payload: Bytes,
}

/// One live collective on this server: the per-request state that used
/// to be the whole server's state. Everything here is scoped to a
/// single request id, which is what lets N of these interleave on the
/// shared transport, worker pool, and disk task.
struct RequestRun {
    request: u64,
    priority: u8,
    /// Fabric ranks of the participating compute nodes, indexed by a
    /// plan piece's mesh-local `client`.
    participants: Vec<u32>,
    dir: OpDir,
    depth: usize,
    sched: CollectiveSchedule,
    /// Start instant, for the `CollectiveDone` duration.
    t_op: Option<Instant>,
    /// Per-request fetch/push sequence counter (unique within the run;
    /// replies are routed by request id first, then seq).
    seq: u64,
    /// seq → (step index, piece index) for in-flight fetches.
    seq_map: HashMap<u64, (usize, usize)>,
    /// Write direction: subchunks being assembled, oldest first.
    window: VecDeque<InFlight>,
    /// Oldest step still in the window.
    front: usize,
    /// Next step to issue fetches for.
    next: usize,
    /// Buffers alive across the exchange and disk stages.
    circulating: usize,
    /// Drained buffers ready for reuse.
    free_bufs: Vec<Vec<u8>>,
    /// Write commands sent to the disk task whose buffer has not been
    /// recycled yet — the per-request disk queue bound.
    disk_queued: usize,
    /// Replies awaiting this pump's parallel assembly pass.
    pending: Vec<PendingPiece>,
    /// Read direction: steps whose disk read has been issued.
    reads_issued: usize,
    /// Read direction: next step to scatter to clients.
    next_scatter: usize,
    /// Read direction: prefetched buffers, in schedule order.
    ready_bufs: VecDeque<Vec<u8>>,
    /// Whether `DiskCmd::Close` has been sent.
    close_sent: bool,
}

impl RequestRun {
    /// Placeholder swapped into the live table while a run is pumped.
    fn hollow() -> Self {
        RequestRun {
            request: 0,
            priority: 0,
            participants: Vec::new(),
            dir: OpDir::Write,
            depth: 1,
            sched: CollectiveSchedule {
                steps: Vec::new(),
                files: Vec::new(),
                empty_files: Vec::new(),
                sync_policy: SyncPolicy::PerCollective,
            },
            t_op: None,
            seq: 0,
            seq_map: HashMap::new(),
            window: VecDeque::new(),
            front: 0,
            next: 0,
            circulating: 0,
            free_bufs: Vec::new(),
            disk_queued: 0,
            pending: Vec::new(),
            reads_issued: 0,
            next_scatter: 0,
            ready_bufs: VecDeque::new(),
            close_sent: false,
        }
    }
}

/// Scheduler state local to one [`ServerNode::run`] call.
struct SchedState {
    /// Live runs (unordered; pump order is derived per pass).
    live: Vec<RequestRun>,
    /// Admitted-but-waiting requests (master only).
    queue: VecDeque<CollectiveRequest>,
    /// Master only: per-request completion count and submitter rank.
    done: HashMap<u64, DoneTrack>,
    /// Round-robin cursor over equal-priority live runs.
    rr: usize,
    /// Set by `Msg::Shutdown`; the loop exits once drained.
    draining: bool,
    /// Disk commands awaiting a completion (`Free`/`Full`/`Closed`).
    disk_pending: usize,
}

struct DoneTrack {
    /// Servers (including this one) that finished the request.
    count: usize,
    /// Fabric rank the `Complete` goes to.
    submitter: u32,
}

/// A file to open at the start of a request's disk work.
struct OpenSpec {
    name: String,
    /// Steps targeting the file (per-file fsync countdown).
    steps: usize,
    /// Final length, for write-side preallocation.
    bytes: u64,
}

/// One unit of work for the shared pinned disk task. Commands of one
/// request arrive in schedule order; commands of different requests
/// interleave freely — the task's arrival-order processing preserves
/// per-request (and hence per-file) FIFO either way.
enum DiskCmd {
    /// Begin a request: create/open its files (preallocating written
    /// ones), create-and-sync its empty files, set its sync policy and
    /// completion window.
    Open {
        request: u64,
        write: bool,
        sync_policy: SyncPolicy,
        /// Submitted-but-uncompleted writes allowed per request before
        /// the task blocks on a completion (`depth - 1`).
        window: usize,
        files: Vec<OpenSpec>,
        empty_files: Vec<String>,
    },
    /// Write one completed subchunk (write direction).
    Write {
        request: u64,
        file: usize,
        key: SubchunkKey,
        offset: u64,
        buf: Vec<u8>,
    },
    /// Prefetch one subchunk into `buf` (read direction).
    Read {
        request: u64,
        file: usize,
        key: SubchunkKey,
        offset: u64,
        bytes: usize,
        buf: Vec<u8>,
    },
    /// End a request: drain its in-flight writes, run its
    /// per-collective sync barrier, drop its file table.
    Close { request: u64 },
}

/// A completion from the disk task back to the scheduler.
enum DiskOut {
    /// A write buffer finished its disk trip and can be reused.
    Free { request: u64, buf: Vec<u8> },
    /// A read buffer was filled and is ready to scatter.
    Full { request: u64, buf: Vec<u8> },
    /// The request's disk work is fully retired (synced per policy).
    Closed { request: u64 },
}

/// The disk task's per-file state.
struct DiskFile {
    handle: Box<dyn FileHandle>,
    /// Steps left until this file's last write is issued — the
    /// per-file sync policy's fsync countdown.
    remaining: usize,
    /// Writes submitted to the backend but not yet recycled. Zero for
    /// synchronous backends, whose `submit_write` completes inline.
    in_flight: usize,
}

/// The disk task's per-request state.
struct DiskRun {
    files: Vec<DiskFile>,
    sync_policy: SyncPolicy,
    window: usize,
    total_in_flight: usize,
}

/// Drain one file's finished submissions back to the scheduler.
fn drain_file(
    f: &mut DiskFile,
    total: &mut usize,
    block: bool,
    request: u64,
    out: &mpsc::Sender<DiskOut>,
) -> Result<(), FsError> {
    for buf in f.handle.drain_completions(block)? {
        f.in_flight -= 1;
        *total -= 1;
        let _ = out.send(DiskOut::Free { request, buf });
    }
    Ok(())
}

/// The engine's pinned disk task: the single task that touches this
/// server's files, for every request it ever serves. Runs until the
/// command channel closes. An `FsError` is fatal for the server (as it
/// always was): the task exits and the scheduler surfaces the error
/// through the join.
fn run_disk_task(
    recorder: Arc<dyn Recorder>,
    node: u32,
    fs: Arc<dyn FileSystem>,
    cmds: mpsc::Receiver<DiskCmd>,
    out: mpsc::Sender<DiskOut>,
) -> Result<(), FsError> {
    let mut runs: HashMap<u64, DiskRun> = HashMap::new();
    for cmd in cmds.iter() {
        match cmd {
            DiskCmd::Open {
                request,
                write,
                sync_policy,
                window,
                files,
                empty_files,
            } => {
                // Arrays with no data on this server still get their
                // (empty) file created and synced.
                for name in &empty_files {
                    let mut file = fs.create(name)?;
                    file.sync()?;
                }
                let mut table = Vec::with_capacity(files.len());
                for spec in files {
                    let handle = if write {
                        let mut h = fs.create(&spec.name)?;
                        h.preallocate(spec.bytes)?;
                        h
                    } else {
                        fs.open(&spec.name)?
                    };
                    table.push(DiskFile {
                        handle,
                        remaining: spec.steps,
                        in_flight: 0,
                    });
                }
                runs.insert(
                    request,
                    DiskRun {
                        files: table,
                        sync_policy,
                        window,
                        total_in_flight: 0,
                    },
                );
            }
            DiskCmd::Write {
                request,
                file,
                key,
                offset,
                buf,
            } => {
                let Some(run) = runs.get_mut(&request) else {
                    continue; // request already closed (cannot happen)
                };
                let bytes = buf.len() as u64;
                let t_disk = recorder.enabled().then(Instant::now);
                if matches!(run.sync_policy, SyncPolicy::PerWrite) {
                    // The paper's semantics: fsync after every write
                    // operation. Strictly synchronous by definition.
                    let f = &mut run.files[file];
                    f.handle.write_at(offset, &buf)?;
                    if let Some(t) = t_disk {
                        recorder.record(
                            node,
                            &Event::DiskWriteDone {
                                key,
                                offset,
                                bytes,
                                dur: t.elapsed(),
                            },
                        );
                    }
                    let t_sync = recorder.enabled().then(Instant::now);
                    f.handle.sync()?;
                    if let Some(t) = t_sync {
                        recorder.record(
                            node,
                            &Event::DiskSyncDone {
                                files: 1,
                                dur: t.elapsed(),
                            },
                        );
                    }
                    let _ = out.send(DiskOut::Free { request, buf });
                } else {
                    // Submission path: hand the buffer to the backend
                    // and move on. Synchronous backends complete inline
                    // and return the buffer; a submission-queue backend
                    // keeps it until a completion thread lands the
                    // write, so the task runs ahead of the device by up
                    // to this *request's* window.
                    let f = &mut run.files[file];
                    match f.handle.submit_write(offset, buf)? {
                        Some(buf) => {
                            if let Some(t) = t_disk {
                                recorder.record(
                                    node,
                                    &Event::DiskWriteDone {
                                        key,
                                        offset,
                                        bytes,
                                        dur: t.elapsed(),
                                    },
                                );
                            }
                            let _ = out.send(DiskOut::Free { request, buf });
                        }
                        None => {
                            f.in_flight += 1;
                            run.total_in_flight += 1;
                            if let Some(t) = t_disk {
                                // Time spent issuing, not completing:
                                // the device time surfaces later as
                                // `FsWrite`/`FsComplete` events.
                                recorder.record(
                                    node,
                                    &Event::DiskWriteDone {
                                        key,
                                        offset,
                                        bytes,
                                        dur: t.elapsed(),
                                    },
                                );
                            }
                        }
                    }
                    drain_file(
                        &mut run.files[file],
                        &mut run.total_in_flight,
                        false,
                        request,
                        &out,
                    )?;
                    while run.total_in_flight > run.window {
                        // Steps are file-sequential per request, so the
                        // oldest submission belongs to the first file
                        // still in flight; block on its completion.
                        let idx = run
                            .files
                            .iter()
                            .position(|f| f.in_flight > 0)
                            .expect("in-flight count implies an in-flight file");
                        drain_file(
                            &mut run.files[idx],
                            &mut run.total_in_flight,
                            true,
                            request,
                            &out,
                        )?;
                    }
                }
                let f = &mut run.files[file];
                f.remaining -= 1;
                // Under the per-file policy, sync as soon as an array's
                // last subchunk is issued, overlapped with the rest of
                // the schedule. `sync` is a completion barrier, so the
                // drain below returns every outstanding buffer.
                if f.remaining == 0 && matches!(run.sync_policy, SyncPolicy::PerFile) {
                    let t_sync = recorder.enabled().then(Instant::now);
                    f.handle.sync()?;
                    if let Some(t) = t_sync {
                        recorder.record(
                            node,
                            &Event::DiskSyncDone {
                                files: 1,
                                dur: t.elapsed(),
                            },
                        );
                    }
                    drain_file(
                        &mut run.files[file],
                        &mut run.total_in_flight,
                        false,
                        request,
                        &out,
                    )?;
                }
            }
            DiskCmd::Read {
                request,
                file,
                key,
                offset,
                bytes,
                mut buf,
            } => {
                let Some(run) = runs.get_mut(&request) else {
                    continue;
                };
                buf.clear();
                buf.resize(bytes, 0);
                let t_disk = recorder.enabled().then(Instant::now);
                run.files[file].handle.read_at(offset, &mut buf)?;
                if recorder.enabled() {
                    if let Some(t) = t_disk {
                        recorder.record(
                            node,
                            &Event::DiskReadDone {
                                key,
                                offset,
                                bytes: buf.len() as u64,
                                dur: t.elapsed(),
                            },
                        );
                    }
                    recorder.record(
                        node,
                        &Event::DiskReadQueued {
                            key,
                            bytes: buf.len() as u64,
                        },
                    );
                }
                if out.send(DiskOut::Full { request, buf }).is_err() {
                    // Scheduler bailed; nothing left to prefetch for.
                    return Ok(());
                }
            }
            DiskCmd::Close { request } => {
                let Some(mut run) = runs.remove(&request) else {
                    continue;
                };
                if matches!(run.sync_policy, SyncPolicy::PerCollective) {
                    // One coalesced barrier for the whole request:
                    // every fsync happens after every write has been
                    // issued, so no flush ever sits between two writes.
                    let t_sync = recorder.enabled().then(Instant::now);
                    let n = run.files.len() as u32;
                    for f in run.files.iter_mut() {
                        f.handle.sync()?;
                        drain_file(f, &mut run.total_in_flight, false, request, &out)?;
                    }
                    if let Some(t) = t_sync {
                        recorder.record(
                            node,
                            &Event::DiskSyncDone {
                                files: n,
                                dur: t.elapsed(),
                            },
                        );
                    }
                } else {
                    // Per-file/per-write syncs already landed; collect
                    // any straggler completions before retiring.
                    for i in 0..run.files.len() {
                        while run.files[i].in_flight > 0 {
                            drain_file(
                                &mut run.files[i],
                                &mut run.total_in_flight,
                                true,
                                request,
                                &out,
                            )?;
                        }
                    }
                }
                let _ = out.send(DiskOut::Closed { request });
            }
        }
    }
    Ok(())
}

/// Copy one fetched piece into its subchunk's assembly buffer and
/// record the reorganization. Every write step funnels through here
/// from the engine's pooled assembly jobs.
#[allow(clippy::too_many_arguments)]
fn assemble_piece(
    recorder: &dyn Recorder,
    node: u32,
    key: SubchunkKey,
    piece: u32,
    buf: &mut [u8],
    sub_region: &Region,
    region: &Region,
    payload: &[u8],
    elem: usize,
) -> Result<(), SchemaError> {
    let t_pack = recorder.enabled().then(Instant::now);
    copy::copy_region(payload, region, buf, sub_region, region, elem)?;
    if let Some(t) = t_pack {
        recorder.record(
            node,
            &Event::ReorgWorker {
                key,
                piece,
                bytes: payload.len() as u64,
                dur: t.elapsed(),
            },
        );
    }
    Ok(())
}

impl ServerNode {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        transport: Box<dyn Transport>,
        fs: Arc<dyn FileSystem>,
        server_idx: usize,
        num_clients: usize,
        num_servers: usize,
        io_workers: usize,
        max_concurrent: usize,
        max_queued: usize,
        recorder: Arc<dyn Recorder>,
        health: Arc<ServiceHealth>,
    ) -> Self {
        ServerNode {
            transport,
            fs,
            server_idx,
            num_clients,
            num_servers,
            max_concurrent: max_concurrent.max(1),
            max_queued,
            recorder,
            health,
            raw_handles: HashMap::new(),
            raw_done: vec![false; num_clients],
            raw_done_count: 0,
            pool: IoPool::new(io_workers),
        }
    }

    fn is_master(&self) -> bool {
        self.server_idx == 0
    }

    /// This server's fabric rank (servers follow the clients).
    fn my_rank(&self) -> u32 {
        (self.num_clients + self.server_idx) as u32
    }

    /// Whether instrumentation (and therefore clock reads) is on.
    fn obs_on(&self) -> bool {
        self.recorder.enabled()
    }

    /// Record one event under this server's rank, if recording is on.
    fn emit(&self, event: &Event<'_>) {
        if self.recorder.enabled() {
            self.recorder.record(self.my_rank(), event);
        }
    }

    fn master_server(&self) -> NodeId {
        NodeId(self.num_clients)
    }

    /// Publish this server's scheduler gauges (three relaxed stores —
    /// cheap enough to run on every serve-loop pass).
    fn publish_health(&self, st: &SchedState) {
        self.health.publish(
            self.server_idx,
            st.queue.len(),
            st.live.len(),
            st.disk_pending,
        );
    }

    /// A step's subchunk key under this server, scoped to its request.
    fn key_of(&self, request: u64, step: &ScheduleStep) -> SubchunkKey {
        SubchunkKey::scoped(request, self.server_idx, step.array, step.subchunk)
    }

    /// The server's per-array file name for an operation.
    pub fn file_name(file_tag: &str, server_idx: usize) -> String {
        format!("{file_tag}.s{server_idx}")
    }

    /// Main loop: schedule collective requests and serve baseline raw
    /// operations until shutdown. Spawns the pinned disk task, runs the
    /// scheduler, then joins the task — a disk error is the root cause
    /// when both sides failed.
    pub fn run(mut self) -> Result<(), PandaError> {
        let (cmd_tx, cmd_rx) = mpsc::channel::<DiskCmd>();
        let (out_tx, out_rx) = mpsc::channel::<DiskOut>();
        let recorder = Arc::clone(&self.recorder);
        let node = self.my_rank();
        let fs = Arc::clone(&self.fs);
        let disk = self
            .pool
            .spawn_pinned(move || run_disk_task(recorder, node, fs, cmd_rx, out_tx));
        let mut st = SchedState {
            live: Vec::new(),
            queue: VecDeque::new(),
            done: HashMap::new(),
            rr: 0,
            draining: false,
            disk_pending: 0,
        };
        let run = self.serve(&mut st, &cmd_tx, &out_rx);
        // Closing the command channel lets the disk task drain and exit.
        drop(cmd_tx);
        let disk = disk.join().map_err(|_| PandaError::Protocol {
            detail: "disk task panicked".to_string(),
        })?;
        match (run, disk) {
            (Ok(()), disk) => Ok(disk?),
            (Err(_), Err(disk)) => Err(disk.into()),
            (Err(run), Ok(())) => Err(run),
        }
    }

    /// The scheduler loop (see the module docs for its four phases).
    fn serve(
        &mut self,
        st: &mut SchedState,
        cmd_tx: &mpsc::Sender<DiskCmd>,
        out_rx: &mpsc::Receiver<DiskOut>,
    ) -> Result<(), PandaError> {
        loop {
            let mut progress = self.pump_all(st, cmd_tx)?;
            while let Some((src, msg)) = try_recv_msg(&mut *self.transport, MatchSpec::any())? {
                self.dispatch(st, cmd_tx, src, msg, Duration::ZERO)?;
                progress = true;
            }
            while let Ok(done) = out_rx.try_recv() {
                self.disk_done(st, cmd_tx, done)?;
                progress = true;
            }
            self.publish_health(st);
            if st.draining && st.live.is_empty() && st.queue.is_empty() {
                return Ok(());
            }
            if progress {
                continue;
            }
            if st.disk_pending > 0 {
                // Disk work outstanding: progress may come from either
                // side, so park briefly on the disk channel and re-poll
                // the transport.
                match out_rx.recv_timeout(DISK_PARK) {
                    Ok(done) => self.disk_done(st, cmd_tx, done)?,
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        return Err(PandaError::Protocol {
                            detail: "disk task stopped early".to_string(),
                        })
                    }
                }
            } else {
                // Everything outstanding is message-shaped: block on
                // the transport (whose own receive timeout still bounds
                // a dead peer). The measured wait is attributed to the
                // first fetched piece it delivers.
                let t_wait = self.obs_on().then(Instant::now);
                let (src, msg) = recv_msg(&mut *self.transport, MatchSpec::any())?;
                let wait = t_wait.map_or(Duration::ZERO, |t| t.elapsed());
                self.dispatch(st, cmd_tx, src, msg, wait)?;
            }
        }
    }

    /// Pump every live run once: highest priority first, equal
    /// priorities in rotating round-robin order so no request starves.
    fn pump_all(
        &mut self,
        st: &mut SchedState,
        cmd_tx: &mpsc::Sender<DiskCmd>,
    ) -> Result<bool, PandaError> {
        if st.live.is_empty() {
            return Ok(false);
        }
        let n = st.live.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.rotate_left(st.rr % n);
        // Stable sort: the rotated round-robin order survives within
        // each priority class.
        order.sort_by(|&a, &b| st.live[b].priority.cmp(&st.live[a].priority));
        st.rr = st.rr.wrapping_add(1);
        let mut progress = false;
        for idx in order {
            let mut run = mem::replace(&mut st.live[idx], RequestRun::hollow());
            let moved = self.pump_run(&mut st.disk_pending, cmd_tx, &mut run);
            st.live[idx] = run;
            progress |= moved?;
        }
        Ok(progress)
    }

    fn pump_run(
        &mut self,
        disk_pending: &mut usize,
        cmd_tx: &mpsc::Sender<DiskCmd>,
        run: &mut RequestRun,
    ) -> Result<bool, PandaError> {
        match run.dir {
            OpDir::Write => self.pump_write(disk_pending, cmd_tx, run),
            OpDir::Read => self.pump_read(disk_pending, cmd_tx, run),
        }
    }

    /// Advance one write-direction run as far as it will go without
    /// blocking: assemble arrived replies in parallel, queue completed
    /// head subchunks to the disk task, and keep up to `depth` steps'
    /// fetches outstanding.
    fn pump_write(
        &mut self,
        disk_pending: &mut usize,
        cmd_tx: &mpsc::Sender<DiskCmd>,
        run: &mut RequestRun,
    ) -> Result<bool, PandaError> {
        let mut progress = false;
        loop {
            let mut moved = false;
            // Assemble the arrived batch, window slots in parallel:
            // each job owns one slot's buffer (disjoint via
            // `iter_mut`); pieces within a slot stay serial.
            if !run.pending.is_empty() {
                moved = true;
                let front = run.front;
                let mut per_slot: Vec<Vec<PendingPiece>> =
                    (0..run.window.len()).map(|_| Vec::new()).collect();
                for p in run.pending.drain(..) {
                    per_slot[p.step - front].push(p);
                }
                let steps = &run.sched.steps;
                let recorder = &self.recorder;
                let node = self.my_rank();
                let request = run.request;
                let server_idx = self.server_idx;
                let mut jobs: Vec<Box<dyn FnOnce() -> Result<(), SchemaError> + Send + '_>> =
                    Vec::new();
                for (off, (slot, items)) in run.window.iter_mut().zip(per_slot).enumerate() {
                    if items.is_empty() {
                        continue;
                    }
                    let step = &steps[front + off];
                    slot.remaining -= items.len();
                    let buf = &mut slot.buf;
                    let key = SubchunkKey::scoped(request, server_idx, step.array, step.subchunk);
                    jobs.push(Box::new(move || {
                        for p in &items {
                            assemble_piece(
                                recorder.as_ref(),
                                node,
                                key,
                                p.piece as u32,
                                buf,
                                &step.sub.region,
                                &p.region,
                                &p.payload,
                                step.elem,
                            )?;
                        }
                        Ok(())
                    }));
                }
                self.pool.run_scoped_result(jobs)?;
            }
            // Queue completed head subchunks to the disk task: it
            // writes step k while replies for k+1.. assemble here. The
            // per-request bound keeps one run from monopolizing the
            // shared task.
            while run.window.front().is_some_and(|s| s.remaining == 0)
                && run.disk_queued < run.depth
            {
                let done = run.window.pop_front().expect("checked front");
                let step = &run.sched.steps[run.front];
                self.emit(&Event::DiskWriteQueued {
                    key: self.key_of(run.request, step),
                    bytes: done.buf.len() as u64,
                });
                Self::disk_send(
                    cmd_tx,
                    DiskCmd::Write {
                        request: run.request,
                        file: step.file,
                        key: self.key_of(run.request, step),
                        offset: step.sub.file_offset,
                        buf: done.buf,
                    },
                )?;
                *disk_pending += 1;
                run.disk_queued += 1;
                run.front += 1;
                moved = true;
            }
            if run.front == run.sched.steps.len() && !run.close_sent {
                Self::disk_send(
                    cmd_tx,
                    DiskCmd::Close {
                        request: run.request,
                    },
                )?;
                *disk_pending += 1;
                run.close_sent = true;
                moved = true;
            }
            // Keep up to `depth` steps' fetches outstanding.
            while run.next < run.sched.steps.len() && run.next - run.front < run.depth {
                let mut buf = if let Some(b) = run.free_bufs.pop() {
                    b
                } else if run.circulating < run.depth {
                    run.circulating += 1;
                    Vec::new()
                } else if run.depth == 1 {
                    // Depth 1 is the strictly serialized oracle: the
                    // next fetch waits for the disk write to land (the
                    // buffer comes back as a `Free`).
                    break;
                } else {
                    // Deeper windows keep fetching while the disk task
                    // works; the per-request disk queue bound is the
                    // backpressure.
                    Vec::new()
                };
                let step = &run.sched.steps[run.next];
                buf.clear();
                buf.resize(step.sub.bytes, 0);
                for (pi, piece) in step.sub.pieces.iter().enumerate() {
                    let dst = *run.participants.get(piece.client).ok_or_else(|| {
                        PandaError::Protocol {
                            detail: format!(
                                "plan piece for client {} outside the {} participants",
                                piece.client,
                                run.participants.len()
                            ),
                        }
                    })?;
                    send_msg(
                        &mut *self.transport,
                        NodeId(dst as usize),
                        &Msg::Fetch {
                            request: run.request,
                            array: step.array,
                            seq: run.seq,
                            region: piece.region.clone(),
                        },
                    )?;
                    self.emit(&Event::FetchSent {
                        key: self.key_of(run.request, step),
                        piece: pi as u32,
                        client: dst,
                    });
                    run.seq_map.insert(run.seq, (run.next, pi));
                    run.seq += 1;
                }
                run.window.push_back(InFlight {
                    buf,
                    remaining: step.sub.pieces.len(),
                });
                run.next += 1;
                moved = true;
            }
            if !moved {
                return Ok(progress);
            }
            progress = true;
        }
    }

    /// Advance one read-direction run: scatter prefetched buffers in
    /// schedule order and keep up to `depth` disk reads ahead of the
    /// scatter point.
    fn pump_read(
        &mut self,
        disk_pending: &mut usize,
        cmd_tx: &mpsc::Sender<DiskCmd>,
        run: &mut RequestRun,
    ) -> Result<bool, PandaError> {
        let mut progress = false;
        loop {
            let mut moved = false;
            // Prefetched buffers arrive in schedule order (the disk
            // task is per-request FIFO), so the front one always
            // belongs to the next scatter step.
            while let Some(buf) = run.ready_bufs.pop_front() {
                let step = &run.sched.steps[run.next_scatter];
                let node = self.my_rank();
                Self::scatter_step(
                    &mut *self.transport,
                    &self.pool,
                    &self.recorder,
                    node,
                    self.server_idx,
                    run.request,
                    &run.participants,
                    step,
                    &buf,
                    &mut run.seq,
                )?;
                run.next_scatter += 1;
                run.free_bufs.push(buf);
                moved = true;
            }
            // Keep up to `depth` buffers circulating (counting ready
            // ones not yet scattered): depth 1 = no read-ahead, the
            // strictly serialized schedule.
            while run.reads_issued < run.sched.steps.len()
                && run.reads_issued - run.next_scatter < run.depth
            {
                let buf = if let Some(b) = run.free_bufs.pop() {
                    b
                } else if run.circulating < run.depth {
                    run.circulating += 1;
                    Vec::new()
                } else {
                    break;
                };
                let step = &run.sched.steps[run.reads_issued];
                Self::disk_send(
                    cmd_tx,
                    DiskCmd::Read {
                        request: run.request,
                        file: step.file,
                        key: self.key_of(run.request, step),
                        offset: step.sub.file_offset,
                        bytes: step.sub.bytes,
                        buf,
                    },
                )?;
                *disk_pending += 1;
                run.reads_issued += 1;
                moved = true;
            }
            if run.next_scatter == run.sched.steps.len() && !run.close_sent {
                Self::disk_send(
                    cmd_tx,
                    DiskCmd::Close {
                        request: run.request,
                    },
                )?;
                *disk_pending += 1;
                run.close_sent = true;
                moved = true;
            }
            if !moved {
                return Ok(progress);
            }
            progress = true;
        }
    }

    /// Reorganize and push one read step: pack all of its pieces in
    /// parallel on the worker pool (large pieces additionally split
    /// along their outermost dimension inside
    /// [`IoPool::pack_region_par`]), trimming each to the requested
    /// section, then send them in piece order so the per-client message
    /// stream matches the serial schedule.
    #[allow(clippy::too_many_arguments)]
    fn scatter_step(
        transport: &mut dyn Transport,
        pool: &IoPool,
        recorder: &Arc<dyn Recorder>,
        node: u32,
        server_idx: usize,
        request: u64,
        participants: &[u32],
        step: &ScheduleStep,
        buf: &[u8],
        seq: &mut u64,
    ) -> Result<(), PandaError> {
        let key = SubchunkKey::scoped(request, server_idx, step.array, step.subchunk);
        let targets: Vec<(usize, Region)> = step
            .sub
            .pieces
            .iter()
            .enumerate()
            .filter_map(|(pi, piece)| {
                let target = match &step.section {
                    None => Some(piece.region.clone()),
                    Some(section) => piece.region.intersect(section),
                };
                target.map(|t| (pi, t))
            })
            .collect();
        if targets.is_empty() {
            return Ok(());
        }
        let mut packed: Vec<Vec<u8>> = vec![Vec::new(); targets.len()];
        {
            let jobs: Vec<Box<dyn FnOnce() -> Result<(), SchemaError> + Send + '_>> = packed
                .iter_mut()
                .zip(&targets)
                .map(|(out, (pi, target))| {
                    Box::new(move || {
                        let t_pack = recorder.enabled().then(Instant::now);
                        pool.pack_region_par(out, buf, &step.sub.region, target, step.elem)?;
                        if let Some(t) = t_pack {
                            recorder.record(
                                node,
                                &Event::ReorgWorker {
                                    key,
                                    piece: *pi as u32,
                                    bytes: out.len() as u64,
                                    dur: t.elapsed(),
                                },
                            );
                        }
                        Ok(())
                    })
                        as Box<dyn FnOnce() -> Result<(), SchemaError> + Send + '_>
                })
                .collect();
            pool.run_scoped_result(jobs)?;
        }
        for ((pi, target), data) in targets.into_iter().zip(packed) {
            let piece_client = step.sub.pieces[pi].client;
            let dst = *participants
                .get(piece_client)
                .ok_or_else(|| PandaError::Protocol {
                    detail: format!(
                        "plan piece for client {piece_client} outside the {} participants",
                        participants.len()
                    ),
                })?;
            let bytes = data.len() as u64;
            send_data(
                transport,
                NodeId(dst as usize),
                request,
                key.array,
                *seq,
                &target,
                data,
            )?;
            if recorder.enabled() {
                recorder.record(
                    node,
                    &Event::PushSent {
                        key,
                        piece: pi as u32,
                        client: dst,
                        bytes,
                    },
                );
            }
            *seq += 1;
        }
        Ok(())
    }

    /// Send one disk command; a closed channel means the disk task
    /// already died — the join in [`ServerNode::run`] has the cause.
    fn disk_send(cmd_tx: &mpsc::Sender<DiskCmd>, cmd: DiskCmd) -> Result<(), PandaError> {
        cmd_tx.send(cmd).map_err(|_| PandaError::Protocol {
            detail: "disk task stopped early".to_string(),
        })
    }

    /// Route one transport message. `wait` is the time the scheduler
    /// spent blocked for it (zero when it was drained non-blocking).
    fn dispatch(
        &mut self,
        st: &mut SchedState,
        cmd_tx: &mpsc::Sender<DiskCmd>,
        src: NodeId,
        msg: Msg,
        wait: Duration,
    ) -> Result<(), PandaError> {
        match msg {
            Msg::Shutdown => {
                st.draining = true;
                Ok(())
            }
            Msg::Collective(req) => self.admit(st, cmd_tx, req),
            Msg::Data {
                request,
                seq,
                region,
                payload,
                ..
            } => self.route_data(st, request, seq, region, payload, wait),
            Msg::ServerDone { request } => {
                if !self.is_master() {
                    return Err(PandaError::Protocol {
                        detail: "ServerDone at a non-master server".to_string(),
                    });
                }
                self.note_done(st, request)
            }
            Msg::RawWrite {
                file,
                offset,
                payload,
            } => self.raw_write(&file, offset, &payload),
            Msg::RawRead {
                file,
                offset,
                len,
                seq,
            } => self.raw_read(src, &file, offset, len as usize, seq),
            Msg::RawDone => self.raw_done(src),
            Msg::RawStat { file, seq } => {
                let len = if self.fs.exists(&file) {
                    self.fs.open(&file)?.len()
                } else {
                    u64::MAX
                };
                send_msg(&mut *self.transport, src, &Msg::RawStatReply { seq, len })?;
                Ok(())
            }
            other => Err(PandaError::Protocol {
                detail: format!("server got unexpected tag {}", other.tag()),
            }),
        }
    }

    /// Admission control. The master decides; peers start whatever the
    /// master relayed. A multi-participant request is never rejected —
    /// its non-submitting participants are already blocked inside the
    /// collective with no abort path, so it queues however full the
    /// queue is. Single-participant (session) requests get the typed
    /// rejection instead of unbounded queueing.
    fn admit(
        &mut self,
        st: &mut SchedState,
        cmd_tx: &mpsc::Sender<DiskCmd>,
        req: CollectiveRequest,
    ) -> Result<(), PandaError> {
        if !self.is_master() {
            return self.start_run(st, cmd_tx, req);
        }
        if st.live.len() < self.max_concurrent {
            self.relay(&req)?;
            return self.start_run(st, cmd_tx, req);
        }
        if req.participants.len() > 1 || st.queue.len() < self.max_queued {
            st.queue.push_back(req);
            self.publish_health(st);
            return Ok(());
        }
        let reason = if self.max_queued == 0 {
            AdmissionIssue::Saturated {
                live: st.live.len(),
                max: self.max_concurrent,
            }
        } else {
            AdmissionIssue::QueueFull {
                queued: st.queue.len(),
                max: self.max_queued,
            }
        };
        self.emit(&Event::AdmissionReject {
            request: req.request,
            queued: st.queue.len() as u32,
            live: st.live.len() as u32,
        });
        self.health.note_reject(self.server_idx);
        let submitter = NodeId(req.participants.first().map_or(0, |&r| r as usize));
        send_msg(
            &mut *self.transport,
            submitter,
            &Msg::Reject {
                request: req.request,
                reason,
            },
        )
    }

    /// Relay an admitted request to the peer servers (master only).
    fn relay(&mut self, req: &CollectiveRequest) -> Result<(), PandaError> {
        for s in 1..self.num_servers {
            let dst = NodeId(self.num_clients + s);
            send_msg(&mut *self.transport, dst, &Msg::Collective(req.clone()))?;
        }
        Ok(())
    }

    /// Lower an admitted request into a live [`RequestRun`]: build its
    /// schedule, open its files on the disk task, and enter it into the
    /// scheduler.
    fn start_run(
        &mut self,
        st: &mut SchedState,
        cmd_tx: &mpsc::Sender<DiskCmd>,
        req: CollectiveRequest,
    ) -> Result<(), PandaError> {
        let depth = req.pipeline_depth.max(1);
        let t_op = self.obs_on().then(Instant::now);
        self.emit(&Event::RequestIssued {
            request: req.request,
            op: op_dir(req.op),
            arrays: req.arrays.len() as u32,
            pipeline_depth: depth as u32,
        });
        if matches!(req.op, OpKind::Write) && req.arrays.iter().any(|a| a.section.is_some()) {
            return Err(PandaError::Protocol {
                detail: "section writes are not supported".to_string(),
            });
        }
        let sched = CollectiveSchedule::build(
            &req.arrays,
            req.op,
            self.server_idx,
            self.num_servers,
            req.subchunk_bytes,
            req.sync_policy,
        );
        if self.obs_on() {
            for step in &sched.steps {
                self.emit(&Event::SubchunkPlanned {
                    key: self.key_of(req.request, step),
                    bytes: step.sub.bytes as u64,
                });
            }
        }
        if self.is_master() {
            st.done.insert(
                req.request,
                DoneTrack {
                    count: 0,
                    submitter: req.participants.first().copied().unwrap_or(0),
                },
            );
        }
        Self::disk_send(
            cmd_tx,
            DiskCmd::Open {
                request: req.request,
                write: matches!(req.op, OpKind::Write),
                sync_policy: sched.sync_policy,
                window: depth - 1,
                files: sched
                    .files
                    .iter()
                    .map(|f| OpenSpec {
                        name: Self::file_name(&f.tag, self.server_idx),
                        steps: f.steps,
                        bytes: f.bytes,
                    })
                    .collect(),
                empty_files: sched
                    .empty_files
                    .iter()
                    .map(|t| Self::file_name(t, self.server_idx))
                    .collect(),
            },
        )?;
        let mut run = RequestRun {
            request: req.request,
            priority: req.priority,
            participants: req.participants,
            dir: op_dir(req.op),
            depth,
            sched,
            t_op,
            ..RequestRun::hollow()
        };
        if run.sched.is_empty() {
            // Nothing to transfer: retire the request's (empty) disk
            // state straight away.
            Self::disk_send(
                cmd_tx,
                DiskCmd::Close {
                    request: run.request,
                },
            )?;
            st.disk_pending += 1;
            run.close_sent = true;
        }
        st.live.push(run);
        Ok(())
    }

    /// Route an arriving `Data` reply to its run and step; assembly
    /// happens on the next pump in one parallel pass per burst.
    fn route_data(
        &mut self,
        st: &mut SchedState,
        request: u64,
        seq: u64,
        region: Region,
        payload: Bytes,
        wait: Duration,
    ) -> Result<(), PandaError> {
        let Some(run) = st.live.iter_mut().find(|r| r.request == request) else {
            return Err(PandaError::Protocol {
                detail: format!("data for unknown request {request}"),
            });
        };
        let (si, pi) = run
            .seq_map
            .remove(&seq)
            .ok_or_else(|| PandaError::Protocol {
                detail: format!("unexpected data seq {seq} for request {request}"),
            })?;
        let step = &run.sched.steps[si];
        debug_assert_eq!(region, step.sub.pieces[pi].region);
        if self.recorder.enabled() {
            self.recorder.record(
                self.my_rank(),
                &Event::FetchReplied {
                    key: SubchunkKey::scoped(request, self.server_idx, step.array, step.subchunk),
                    bytes: payload.len() as u64,
                    // Only the blocking receive actually waited.
                    wait,
                },
            );
        }
        run.pending.push(PendingPiece {
            step: si,
            piece: pi,
            region,
            payload,
        });
        Ok(())
    }

    /// Process one disk completion.
    fn disk_done(
        &mut self,
        st: &mut SchedState,
        cmd_tx: &mpsc::Sender<DiskCmd>,
        done: DiskOut,
    ) -> Result<(), PandaError> {
        st.disk_pending -= 1;
        match done {
            DiskOut::Free { request, buf } => {
                if let Some(run) = st.live.iter_mut().find(|r| r.request == request) {
                    run.disk_queued -= 1;
                    run.free_bufs.push(buf);
                }
                Ok(())
            }
            DiskOut::Full { request, buf } => {
                if let Some(run) = st.live.iter_mut().find(|r| r.request == request) {
                    run.ready_bufs.push_back(buf);
                }
                Ok(())
            }
            DiskOut::Closed { request } => self.finish_run(st, cmd_tx, request),
        }
    }

    /// A run's disk state is retired: the collective is complete on
    /// this server. Take part in the completion chain, then (master)
    /// pull the next queued request into the freed slot.
    fn finish_run(
        &mut self,
        st: &mut SchedState,
        cmd_tx: &mpsc::Sender<DiskCmd>,
        request: u64,
    ) -> Result<(), PandaError> {
        let idx = st
            .live
            .iter()
            .position(|r| r.request == request)
            .ok_or_else(|| PandaError::Protocol {
                detail: format!("disk close for unknown request {request}"),
            })?;
        let run = st.live.swap_remove(idx);
        if let Some(t) = run.t_op {
            self.emit(&Event::CollectiveDone {
                request,
                op: run.dir,
                dur: t.elapsed(),
            });
        }
        if self.is_master() {
            self.note_done(st, request)?;
            // A live slot freed up: admit from the wait queue.
            while st.live.len() < self.max_concurrent {
                let Some(req) = st.queue.pop_front() else {
                    break;
                };
                self.relay(&req)?;
                self.start_run(st, cmd_tx, req)?;
            }
        } else {
            let dst = self.master_server();
            send_msg(&mut *self.transport, dst, &Msg::ServerDone { request })?;
        }
        Ok(())
    }

    /// Master bookkeeping: one more server finished `request`. Once all
    /// have (including this one), tell the submitter.
    fn note_done(&mut self, st: &mut SchedState, request: u64) -> Result<(), PandaError> {
        let track = st
            .done
            .get_mut(&request)
            .ok_or_else(|| PandaError::Protocol {
                detail: format!("completion for unknown request {request}"),
            })?;
        track.count += 1;
        if track.count == self.num_servers {
            let submitter = NodeId(track.submitter as usize);
            st.done.remove(&request);
            send_msg(&mut *self.transport, submitter, &Msg::Complete { request })?;
        }
        Ok(())
    }

    /// Baseline support: apply a positioned write in arrival order.
    fn raw_write(&mut self, file: &str, offset: u64, payload: &[u8]) -> Result<(), PandaError> {
        let handle = self.raw_handle(file)?;
        handle.write_at(offset, payload)?;
        Ok(())
    }

    /// Baseline support: serve a positioned read.
    fn raw_read(
        &mut self,
        src: NodeId,
        file: &str,
        offset: u64,
        len: usize,
        seq: u64,
    ) -> Result<(), PandaError> {
        let mut payload = vec![0u8; len];
        let handle = self.raw_handle(file)?;
        handle.read_at(offset, &mut payload)?;
        send_msg(&mut *self.transport, src, &Msg::RawData { seq, payload })?;
        Ok(())
    }

    fn raw_handle(&mut self, file: &str) -> Result<&mut Box<dyn FileHandle>, PandaError> {
        match self.raw_handles.entry(file.to_string()) {
            std::collections::hash_map::Entry::Occupied(e) => Ok(e.into_mut()),
            std::collections::hash_map::Entry::Vacant(e) => {
                let handle = if self.fs.exists(file) {
                    self.fs.open(file)?
                } else {
                    self.fs.create(file)?
                };
                Ok(e.insert(handle))
            }
        }
    }

    /// Baseline support: completion barrier. Once every client has sent
    /// `RawDone`, sync all touched files and acknowledge everyone. The
    /// seen set is a fixed bitmap over client ranks, so the duplicate
    /// check is O(1) regardless of client count.
    fn raw_done(&mut self, src: NodeId) -> Result<(), PandaError> {
        match self.raw_done.get_mut(src.0) {
            Some(seen) if !*seen => *seen = true,
            _ => {
                return Err(PandaError::Protocol {
                    detail: format!("duplicate or non-client RawDone from {src}"),
                })
            }
        }
        self.raw_done_count += 1;
        if self.raw_done_count == self.num_clients {
            for handle in self.raw_handles.values_mut() {
                handle.sync()?;
            }
            // Drop the handle cache: the logical op is over, and fresh
            // handles restart sequentiality tracking for the next op.
            self.raw_handles.clear();
            self.raw_done_count = 0;
            for client in 0..self.num_clients {
                debug_assert!(self.raw_done[client], "barrier complete");
                self.raw_done[client] = false;
                send_msg(&mut *self.transport, NodeId(client), &Msg::RawAck)?;
            }
        }
        Ok(())
    }
}
