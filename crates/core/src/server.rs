//! The Panda server: the I/O-node side of a collective operation.
//!
//! Each server runs [`ServerNode::run`] in its own thread. On receiving
//! a collective request it builds its plan (round-robin chunks →
//! subchunks → client pieces) and *drives* the transfer so that its own
//! file access is strictly sequential: for writes it pulls pieces from
//! clients, assembles each subchunk in traditional order, and appends it
//! to the file; for reads it streams the file forward and scatters each
//! subchunk to the owning clients. The master server (index 0)
//! additionally relays the request to its peers and reports completion
//! to the master client.
//!
//! # Pipelining and group concurrency
//!
//! At `pipeline_depth == 1` each subchunk is exchanged and written (or
//! read and scattered) strictly one at a time, array after array — the
//! paper's baseline transfer order, preserved bit for bit. At depth
//! `d ≥ 2` the *request* — every array of the group — becomes the unit
//! of scheduling: the subchunks of all arrays are flattened array-major
//! into one stream and flow through a single depth-`d` window, so the
//! pipeline never drains at an array boundary. Per-array FIFO order is
//! the flat order restricted to one array, which keeps every file
//! byte-identical to the unpipelined schedule.
//!
//! * **writes** keep up to `d` subchunks' `Fetch` requests in flight
//!   (disambiguated by a request-global `seq`), assemble reply bursts
//!   into recycled window buffers — independent subchunks reorganize
//!   concurrently on the server's [`IoPool`] — and hand each completed
//!   subchunk to a disk-writer task that owns *all* the group's file
//!   handles, fsyncing each file as its last subchunk lands;
//! * **reads** run a prefetcher task that streams every file of the
//!   group forward through the same kind of recycled pool while this
//!   thread packs the current subchunk's pieces in parallel and pushes
//!   them to the clients.
//!
//! Either way each file is still accessed strictly sequentially by
//! exactly one task, and the message set (tags, counts, payloads) is
//! identical to the unpipelined schedule — only the overlap changes.

use std::collections::{HashMap, VecDeque};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use panda_fs::{FileHandle, FileSystem, FsError};
use panda_msg::{Bytes, MatchSpec, NodeId, Transport};
use panda_obs::{Event, OpDir, Recorder, SubchunkKey};
use panda_schema::{copy, Region, SchemaError};

use crate::error::PandaError;
use crate::plan::{build_server_plan, PlanSubchunk, ServerPlan};
use crate::pool::IoPool;
use crate::protocol::{
    recv_msg, send_data, send_msg, tags, try_recv_msg, ArrayOp, CollectiveRequest, Msg, OpKind,
};

/// One I/O node.
pub struct ServerNode {
    transport: Box<dyn Transport>,
    fs: Arc<dyn FileSystem>,
    /// 0-based index among the servers.
    server_idx: usize,
    num_clients: usize,
    num_servers: usize,
    /// Session recorder; events are tagged with this server's fabric
    /// rank. Durations are measured only while it is enabled.
    recorder: Arc<dyn Recorder>,
    /// Open handles for baseline raw operations, keyed by file name.
    raw_handles: HashMap<String, Box<dyn FileHandle>>,
    /// Per-client flag: has this client sent `RawDone` for the current
    /// baseline op? Indexed by client rank.
    raw_done: Vec<bool>,
    /// Number of set flags in [`ServerNode::raw_done`].
    raw_done_count: usize,
    /// Worker pool shared by the pipelined disk loops and the parallel
    /// reorganization passes.
    pool: IoPool,
}

fn op_dir(op: OpKind) -> OpDir {
    match op {
        OpKind::Write => OpDir::Write,
        OpKind::Read => OpDir::Read,
    }
}

/// A subchunk being assembled inside the write window.
struct InFlight {
    /// Assembly buffer (recycled through the writer's pool).
    buf: Vec<u8>,
    /// Pieces still missing.
    remaining: usize,
}

/// One subchunk of the flattened (array-major) group schedule.
struct FlatSub<'p> {
    /// Array index within the request (the wire's `array` field).
    array: u32,
    /// Subchunk index within that array's plan.
    si: usize,
    sub: &'p PlanSubchunk,
    /// Index into the disk task's file-handle table.
    file: usize,
    /// The array's element size.
    elem: usize,
    /// Read-section trim, if any.
    section: Option<&'p Region>,
}

/// Copy one fetched piece into its subchunk's assembly buffer and
/// record the reorganization. Every write schedule funnels through
/// here: the unpipelined loop calls it inline (`pooled == false`, a
/// `Packed` event), the group pipeline from its worker jobs
/// (`pooled == true`, a `ReorgWorker` event).
#[allow(clippy::too_many_arguments)]
fn assemble_piece(
    recorder: &dyn Recorder,
    node: u32,
    key: SubchunkKey,
    piece: u32,
    pooled: bool,
    buf: &mut [u8],
    sub_region: &Region,
    region: &Region,
    payload: &[u8],
    elem: usize,
) -> Result<(), SchemaError> {
    let t_pack = recorder.enabled().then(Instant::now);
    copy::copy_region(payload, region, buf, sub_region, region, elem)?;
    if let Some(t) = t_pack {
        let bytes = payload.len() as u64;
        let dur = t.elapsed();
        let event = if pooled {
            Event::ReorgWorker {
                key,
                piece,
                bytes,
                dur,
            }
        } else {
            Event::Packed {
                key,
                piece,
                bytes,
                dur,
            }
        };
        recorder.record(node, &event);
    }
    Ok(())
}

impl ServerNode {
    pub(crate) fn new(
        transport: Box<dyn Transport>,
        fs: Arc<dyn FileSystem>,
        server_idx: usize,
        num_clients: usize,
        num_servers: usize,
        io_workers: usize,
        recorder: Arc<dyn Recorder>,
    ) -> Self {
        ServerNode {
            transport,
            fs,
            server_idx,
            num_clients,
            num_servers,
            recorder,
            raw_handles: HashMap::new(),
            raw_done: vec![false; num_clients],
            raw_done_count: 0,
            pool: IoPool::new(io_workers),
        }
    }

    fn is_master(&self) -> bool {
        self.server_idx == 0
    }

    /// This server's fabric rank (servers follow the clients).
    fn my_rank(&self) -> u32 {
        (self.num_clients + self.server_idx) as u32
    }

    /// Whether instrumentation (and therefore clock reads) is on.
    fn obs_on(&self) -> bool {
        self.recorder.enabled()
    }

    /// Record one event under this server's rank, if recording is on.
    fn emit(&self, event: &Event<'_>) {
        if self.recorder.enabled() {
            self.recorder.record(self.my_rank(), event);
        }
    }

    fn master_server(&self) -> NodeId {
        NodeId(self.num_clients)
    }

    fn master_client(&self) -> NodeId {
        NodeId(0)
    }

    /// The server's per-array file name for an operation.
    pub fn file_name(file_tag: &str, server_idx: usize) -> String {
        format!("{file_tag}.s{server_idx}")
    }

    /// Main loop: serve collective requests and baseline raw operations
    /// until shutdown.
    pub fn run(mut self) -> Result<(), PandaError> {
        loop {
            let (src, msg) = recv_msg(&mut *self.transport, MatchSpec::any())?;
            match msg {
                Msg::Shutdown => return Ok(()),
                Msg::Collective(req) => self.handle_collective(req)?,
                Msg::RawWrite {
                    file,
                    offset,
                    payload,
                } => self.raw_write(&file, offset, &payload)?,
                Msg::RawRead {
                    file,
                    offset,
                    len,
                    seq,
                } => self.raw_read(src, &file, offset, len as usize, seq)?,
                Msg::RawDone => self.raw_done(src)?,
                Msg::RawStat { file, seq } => {
                    let len = if self.fs.exists(&file) {
                        self.fs.open(&file)?.len()
                    } else {
                        u64::MAX
                    };
                    send_msg(&mut *self.transport, src, &Msg::RawStatReply { seq, len })?;
                }
                other => {
                    return Err(PandaError::Protocol {
                        detail: format!("server got unexpected tag {}", other.tag()),
                    })
                }
            }
        }
    }

    /// Execute one collective operation end to end.
    fn handle_collective(&mut self, req: CollectiveRequest) -> Result<(), PandaError> {
        // The master server relays the schemas to the other servers; the
        // servers never talk to each other during the transfer itself.
        if self.is_master() {
            for s in 1..self.num_servers {
                let dst = NodeId(self.num_clients + s);
                send_msg(&mut *self.transport, dst, &Msg::Collective(req.clone()))?;
            }
        }

        let depth = req.pipeline_depth.max(1);
        let t_op = self.obs_on().then(Instant::now);
        self.emit(&Event::RequestIssued {
            op: op_dir(req.op),
            arrays: req.arrays.len() as u32,
            pipeline_depth: depth as u32,
        });
        if matches!(req.op, OpKind::Write) && req.arrays.iter().any(|a| a.section.is_some()) {
            return Err(PandaError::Protocol {
                detail: "section writes are not supported".to_string(),
            });
        }
        if depth <= 1 {
            // Unpipelined baseline: arrays strictly one after another,
            // every subchunk exchanged and written serially.
            for (idx, array_op) in req.arrays.iter().enumerate() {
                match req.op {
                    OpKind::Write => self.write_array(idx as u32, array_op, req.subchunk_bytes)?,
                    OpKind::Read => self.read_array(idx as u32, array_op, req.subchunk_bytes)?,
                }
            }
        } else {
            // Group-concurrent: one window over the whole request.
            match req.op {
                OpKind::Write => self.write_group(&req.arrays, req.subchunk_bytes, depth)?,
                OpKind::Read => self.read_group(&req.arrays, req.subchunk_bytes, depth)?,
            }
        }
        if let Some(t) = t_op {
            self.emit(&Event::CollectiveDone {
                op: op_dir(req.op),
                dur: t.elapsed(),
            });
        }

        // Completion: workers report to the master server; the master
        // server tells the master client once everyone (incl. itself)
        // is done.
        if self.is_master() {
            for _ in 1..self.num_servers {
                let (_, msg) = recv_msg(&mut *self.transport, MatchSpec::tag(tags::SERVER_DONE))?;
                debug_assert_eq!(msg, Msg::ServerDone);
            }
            let dst = self.master_client();
            send_msg(&mut *self.transport, dst, &Msg::Complete)?;
        } else {
            let dst = self.master_server();
            send_msg(&mut *self.transport, dst, &Msg::ServerDone)?;
        }
        Ok(())
    }

    /// Unpipelined write path: pull pieces from clients subchunk by
    /// subchunk, assemble in traditional order, append sequentially.
    fn write_array(
        &mut self,
        array_idx: u32,
        op: &ArrayOp,
        subchunk_bytes: usize,
    ) -> Result<(), PandaError> {
        let meta = &op.meta;
        let elem = meta.elem_size();
        let plan = build_server_plan(meta, self.server_idx, self.num_servers, subchunk_bytes);
        let subs: Vec<&PlanSubchunk> = plan.subchunks().collect();
        if self.obs_on() {
            for (si, sub) in subs.iter().enumerate() {
                self.emit(&Event::SubchunkPlanned {
                    key: SubchunkKey::new(self.server_idx, array_idx, si),
                    bytes: sub.bytes as u64,
                });
            }
        }
        let file = self
            .fs
            .create(&Self::file_name(&op.file_tag, self.server_idx))?;
        self.write_subchunks_inline(array_idx, elem, &subs, file)
    }

    /// Unpipelined write schedule: one subchunk at a time, the disk
    /// write strictly after the last piece arrives. One assembly buffer
    /// is recycled across all subchunks.
    fn write_subchunks_inline(
        &mut self,
        array_idx: u32,
        elem: usize,
        subs: &[&PlanSubchunk],
        mut file: Box<dyn FileHandle>,
    ) -> Result<(), PandaError> {
        let mut seq = 0u64;
        let mut buf = Vec::new();
        let mut outstanding: HashMap<u64, usize> = HashMap::new();
        for (si, sub) in subs.iter().enumerate() {
            let key = SubchunkKey::new(self.server_idx, array_idx, si);
            buf.clear();
            buf.resize(sub.bytes, 0);
            // Ask every owning client for its piece...
            for (pi, piece) in sub.pieces.iter().enumerate() {
                send_msg(
                    &mut *self.transport,
                    NodeId(piece.client),
                    &Msg::Fetch {
                        array: array_idx,
                        seq,
                        region: piece.region.clone(),
                    },
                )?;
                self.emit(&Event::FetchSent {
                    key,
                    piece: pi as u32,
                    client: piece.client as u32,
                });
                outstanding.insert(seq, pi);
                seq += 1;
            }
            // ... and scatter the replies into the subchunk buffer.
            while !outstanding.is_empty() {
                let t_wait = self.obs_on().then(Instant::now);
                let (_src, msg) = recv_msg(&mut *self.transport, MatchSpec::tag(tags::DATA))?;
                let Msg::Data {
                    seq: rseq,
                    region,
                    payload,
                    ..
                } = msg
                else {
                    unreachable!("matched DATA tag");
                };
                let pi = outstanding
                    .remove(&rseq)
                    .ok_or_else(|| PandaError::Protocol {
                        detail: format!("unexpected data seq {rseq}"),
                    })?;
                debug_assert_eq!(region, sub.pieces[pi].region);
                if let Some(t) = t_wait {
                    self.emit(&Event::FetchReplied {
                        key,
                        bytes: payload.len() as u64,
                        wait: t.elapsed(),
                    });
                }
                assemble_piece(
                    self.recorder.as_ref(),
                    self.my_rank(),
                    key,
                    pi as u32,
                    false,
                    &mut buf,
                    &sub.region,
                    &region,
                    &payload,
                    elem,
                )?;
            }
            let t_disk = self.obs_on().then(Instant::now);
            file.write_at(sub.file_offset, &buf)?;
            if let Some(t) = t_disk {
                self.emit(&Event::DiskWriteDone {
                    key,
                    offset: sub.file_offset,
                    bytes: buf.len() as u64,
                    dur: t.elapsed(),
                });
            }
        }
        // The paper flushes to disk with fsync after each write op.
        file.sync()?;
        Ok(())
    }

    /// Group-concurrent write schedule (depth ≥ 2): the subchunks of
    /// every array in the request flow array-major through one window,
    /// so fetches for array `k+1` are already in flight while array
    /// `k`'s tail is still being assembled and written — the pipeline
    /// never drains at an array boundary. Up to `depth` subchunks'
    /// fetches are outstanding at once, reply bursts are reorganized in
    /// parallel on the worker pool, and completed subchunks are written
    /// by one pinned disk task that owns all the group's file handles.
    /// Buffers recycle through the writer's return channel, so steady
    /// state runs allocation-free. Per-array FIFO order is preserved,
    /// so every file is byte-identical to the inline schedule.
    fn write_group(
        &mut self,
        arrays: &[ArrayOp],
        subchunk_bytes: usize,
        depth: usize,
    ) -> Result<(), PandaError> {
        let plans: Vec<ServerPlan> = arrays
            .iter()
            .map(|op| {
                build_server_plan(&op.meta, self.server_idx, self.num_servers, subchunk_bytes)
            })
            .collect();
        // Flatten array-major; arrays with no subchunks on this server
        // still get their (empty) file created and synced right here.
        let mut writer_files: Vec<(Box<dyn FileHandle>, usize)> = Vec::new();
        let mut flat: Vec<FlatSub<'_>> = Vec::new();
        for (idx, (op, plan)) in arrays.iter().zip(&plans).enumerate() {
            let subs: Vec<&PlanSubchunk> = plan.subchunks().collect();
            let mut file = self
                .fs
                .create(&Self::file_name(&op.file_tag, self.server_idx))?;
            if subs.is_empty() {
                file.sync()?;
                continue;
            }
            if self.obs_on() {
                for (si, sub) in subs.iter().enumerate() {
                    self.emit(&Event::SubchunkPlanned {
                        key: SubchunkKey::new(self.server_idx, idx as u32, si),
                        bytes: sub.bytes as u64,
                    });
                }
            }
            let fidx = writer_files.len();
            writer_files.push((file, subs.len()));
            let elem = op.meta.elem_size();
            for (si, sub) in subs.into_iter().enumerate() {
                flat.push(FlatSub {
                    array: idx as u32,
                    si,
                    sub,
                    file: fidx,
                    elem,
                    section: None,
                });
            }
        }
        if flat.is_empty() {
            return Ok(());
        }

        // Disk jobs flow to the writer task; drained buffers flow back
        // for reuse. The bounded job queue caps buffered-but-unwritten
        // subchunks at `depth`.
        let (job_tx, job_rx) = mpsc::sync_channel::<(usize, SubchunkKey, u64, Vec<u8>)>(depth);
        let (pool_tx, pool_rx) = mpsc::channel::<Vec<u8>>();
        let recorder = Arc::clone(&self.recorder);
        let node = self.my_rank();
        let writer = self.pool.spawn_pinned(move || -> Result<(), FsError> {
            let mut files = writer_files;
            while let Ok((fidx, key, offset, buf)) = job_rx.recv() {
                let t_disk = recorder.enabled().then(Instant::now);
                let (file, remaining) = &mut files[fidx];
                file.write_at(offset, &buf)?;
                if let Some(t) = t_disk {
                    recorder.record(
                        node,
                        &Event::DiskWriteDone {
                            key,
                            offset,
                            bytes: buf.len() as u64,
                            dur: t.elapsed(),
                        },
                    );
                }
                // The assembler may already be past its last send.
                let _ = pool_tx.send(buf);
                *remaining -= 1;
                // The paper flushes with fsync after each write op; sync
                // as soon as an array's last subchunk lands, overlapped
                // with the next array's exchange.
                if *remaining == 0 {
                    file.sync()?;
                }
            }
            Ok(())
        });

        let run = (|| -> Result<(), PandaError> {
            let mut seq = 0u64;
            // seq → (flat index, piece index) for every in-flight fetch;
            // the request-global seq disambiguates replies across arrays
            // sharing the window.
            let mut seq_map: HashMap<u64, (usize, usize)> = HashMap::new();
            let mut window: VecDeque<InFlight> = VecDeque::with_capacity(depth);
            let mut front = 0usize; // oldest subchunk still in the window
            let mut next = 0usize; // next subchunk to issue fetches for
            loop {
                // Hand completed head subchunks to the disk task: it
                // writes subchunk k while replies for k+1.. scatter here.
                while window.front().is_some_and(|s| s.remaining == 0) {
                    let done = window.pop_front().expect("checked front");
                    let f = &flat[front];
                    let key = SubchunkKey::new(self.server_idx, f.array, f.si);
                    self.emit(&Event::DiskWriteQueued {
                        key,
                        bytes: done.buf.len() as u64,
                    });
                    if job_tx
                        .send((f.file, key, f.sub.file_offset, done.buf))
                        .is_err()
                    {
                        // Writer bailed; its join below has the cause.
                        return Err(PandaError::Protocol {
                            detail: "disk writer stopped early".to_string(),
                        });
                    }
                    front += 1;
                }
                if front == flat.len() {
                    return Ok(());
                }
                // Keep up to `depth` subchunks' fetches outstanding.
                while next < flat.len() && next - front < depth {
                    let f = &flat[next];
                    let mut buf = pool_rx.try_recv().unwrap_or_default();
                    buf.clear();
                    buf.resize(f.sub.bytes, 0);
                    for (pi, piece) in f.sub.pieces.iter().enumerate() {
                        send_msg(
                            &mut *self.transport,
                            NodeId(piece.client),
                            &Msg::Fetch {
                                array: f.array,
                                seq,
                                region: piece.region.clone(),
                            },
                        )?;
                        self.emit(&Event::FetchSent {
                            key: SubchunkKey::new(self.server_idx, f.array, f.si),
                            piece: pi as u32,
                            client: piece.client as u32,
                        });
                        seq_map.insert(seq, (next, pi));
                        seq += 1;
                    }
                    window.push_back(InFlight {
                        buf,
                        remaining: f.sub.pieces.len(),
                    });
                    next += 1;
                }
                // Block for one reply, then sweep everything that has
                // already arrived: a burst of replies becomes one
                // parallel reorganization pass instead of d serial
                // copies.
                let t_wait = self.obs_on().then(Instant::now);
                let first = recv_msg(&mut *self.transport, MatchSpec::tag(tags::DATA))?.1;
                let mut batch = vec![first];
                while let Some((_, more)) =
                    try_recv_msg(&mut *self.transport, MatchSpec::tag(tags::DATA))?
                {
                    batch.push(more);
                }
                // Route each reply to its window slot.
                let mut per_slot: Vec<Vec<(usize, Region, Bytes)>> = vec![Vec::new(); window.len()];
                for (bi, msg) in batch.into_iter().enumerate() {
                    let Msg::Data {
                        seq: rseq,
                        region,
                        payload,
                        ..
                    } = msg
                    else {
                        unreachable!("matched DATA tag");
                    };
                    let (si, pi) = seq_map.remove(&rseq).ok_or_else(|| PandaError::Protocol {
                        detail: format!("unexpected data seq {rseq}"),
                    })?;
                    let f = &flat[si];
                    debug_assert_eq!(region, f.sub.pieces[pi].region);
                    if let Some(t) = t_wait {
                        self.emit(&Event::FetchReplied {
                            key: SubchunkKey::new(self.server_idx, f.array, f.si),
                            bytes: payload.len() as u64,
                            // Only the blocking receive actually waited.
                            wait: if bi == 0 { t.elapsed() } else { Duration::ZERO },
                        });
                    }
                    per_slot[si - front].push((pi, region, payload));
                }
                // Copy the batch, window slots in parallel: each job
                // owns one slot's buffer (disjoint via `iter_mut`);
                // pieces within a slot stay serial.
                let recorder = &self.recorder;
                let error: Mutex<Option<SchemaError>> = Mutex::new(None);
                let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
                for (off, (slot, items)) in window.iter_mut().zip(per_slot).enumerate() {
                    if items.is_empty() {
                        continue;
                    }
                    let f = &flat[front + off];
                    slot.remaining -= items.len();
                    let buf = &mut slot.buf;
                    let key = SubchunkKey::new(self.server_idx, f.array, f.si);
                    let error = &error;
                    jobs.push(Box::new(move || {
                        for (pi, region, payload) in &items {
                            if let Err(e) = assemble_piece(
                                recorder.as_ref(),
                                node,
                                key,
                                *pi as u32,
                                true,
                                buf,
                                &f.sub.region,
                                region,
                                payload,
                                f.elem,
                            ) {
                                error.lock().unwrap().get_or_insert(e);
                                return;
                            }
                        }
                    }));
                }
                self.pool.run_scoped(jobs);
                if let Some(e) = error.into_inner().unwrap() {
                    return Err(e.into());
                }
            }
        })();

        // Closing the job queue lets the writer drain and exit.
        drop(job_tx);
        let disk = writer.join().map_err(|_| PandaError::Protocol {
            detail: "disk writer task panicked".to_string(),
        })?;
        match (run, disk) {
            (Ok(()), disk) => Ok(disk?),
            // A dead writer also breaks the assembly loop; the disk
            // error is the root cause.
            (Err(_), Err(disk)) => Err(disk.into()),
            (Err(run), Ok(())) => Err(run),
        }
    }

    /// Unpipelined read path: stream the file forward, scattering each
    /// subchunk's pieces to the owning clients.
    fn read_array(
        &mut self,
        array_idx: u32,
        op: &ArrayOp,
        subchunk_bytes: usize,
    ) -> Result<(), PandaError> {
        let meta = &op.meta;
        let elem = meta.elem_size();
        let plan = build_server_plan(meta, self.server_idx, self.num_servers, subchunk_bytes);
        if plan.total_bytes == 0 {
            return Ok(());
        }
        // Section reads skip non-overlapping subchunks entirely; the
        // remaining reads still proceed in file order.
        let selected: Vec<&PlanSubchunk> = plan
            .subchunks()
            .filter(|sub| match &op.section {
                None => true,
                Some(section) => sub.region.overlaps(section),
            })
            .collect();
        if selected.is_empty() {
            return Ok(());
        }
        if self.obs_on() {
            for (si, sub) in selected.iter().enumerate() {
                self.emit(&Event::SubchunkPlanned {
                    key: SubchunkKey::new(self.server_idx, array_idx, si),
                    bytes: sub.bytes as u64,
                });
            }
        }
        let file = self
            .fs
            .open(&Self::file_name(&op.file_tag, self.server_idx))?;
        self.read_subchunks_inline(array_idx, elem, op.section.as_ref(), &selected, file)
    }

    /// Unpipelined read schedule: read a subchunk, scatter it, repeat.
    /// The read buffer and the pack scratch are both recycled.
    fn read_subchunks_inline(
        &mut self,
        array_idx: u32,
        elem: usize,
        section: Option<&Region>,
        subs: &[&PlanSubchunk],
        mut file: Box<dyn FileHandle>,
    ) -> Result<(), PandaError> {
        let mut seq = 0u64;
        let mut buf = Vec::new();
        for (si, sub) in subs.iter().enumerate() {
            let key = SubchunkKey::new(self.server_idx, array_idx, si);
            buf.clear();
            buf.resize(sub.bytes, 0);
            let t_disk = self.obs_on().then(Instant::now);
            file.read_at(sub.file_offset, &mut buf)?;
            if let Some(t) = t_disk {
                self.emit(&Event::DiskReadDone {
                    key,
                    offset: sub.file_offset,
                    bytes: buf.len() as u64,
                    dur: t.elapsed(),
                });
            }
            self.scatter_subchunk(key, sub, section, &buf, &mut seq, elem)?;
        }
        Ok(())
    }

    /// Group-concurrent read schedule (depth ≥ 2): one pinned prefetch
    /// task streams every array's file in turn — array-major, each file
    /// strictly sequential — keeping up to `depth` subchunks buffered
    /// through a bounded queue while this thread packs (in parallel on
    /// the worker pool) and pushes the current one. Prefetch for array
    /// `k+1` starts while array `k`'s tail is still being scattered, so
    /// the disk never idles at an array boundary. The per-array message
    /// stream is identical to the inline schedule.
    fn read_group(
        &mut self,
        arrays: &[ArrayOp],
        subchunk_bytes: usize,
        depth: usize,
    ) -> Result<(), PandaError> {
        let plans: Vec<ServerPlan> = arrays
            .iter()
            .map(|op| {
                build_server_plan(&op.meta, self.server_idx, self.num_servers, subchunk_bytes)
            })
            .collect();
        let mut reader_files: Vec<Box<dyn FileHandle>> = Vec::new();
        let mut jobs_desc: Vec<(usize, SubchunkKey, u64, usize)> = Vec::new();
        let mut flat: Vec<FlatSub<'_>> = Vec::new();
        for (idx, (op, plan)) in arrays.iter().zip(&plans).enumerate() {
            if plan.total_bytes == 0 {
                continue;
            }
            // Section reads skip non-overlapping subchunks entirely; the
            // remaining reads still proceed in file order. Selecting up
            // front keeps the prefetcher and the scatter loop in
            // lockstep.
            let selected: Vec<&PlanSubchunk> = plan
                .subchunks()
                .filter(|sub| match &op.section {
                    None => true,
                    Some(section) => sub.region.overlaps(section),
                })
                .collect();
            if selected.is_empty() {
                continue;
            }
            if self.obs_on() {
                for (si, sub) in selected.iter().enumerate() {
                    self.emit(&Event::SubchunkPlanned {
                        key: SubchunkKey::new(self.server_idx, idx as u32, si),
                        bytes: sub.bytes as u64,
                    });
                }
            }
            let fidx = reader_files.len();
            reader_files.push(
                self.fs
                    .open(&Self::file_name(&op.file_tag, self.server_idx))?,
            );
            let elem = op.meta.elem_size();
            for (si, sub) in selected.into_iter().enumerate() {
                let key = SubchunkKey::new(self.server_idx, idx as u32, si);
                jobs_desc.push((fidx, key, sub.file_offset, sub.bytes));
                flat.push(FlatSub {
                    array: idx as u32,
                    si,
                    sub,
                    file: fidx,
                    elem,
                    section: op.section.as_ref(),
                });
            }
        }
        if flat.is_empty() {
            return Ok(());
        }
        // Queue capacity depth-1 plus the buffer being scattered keeps
        // `depth` subchunks in memory (depth 2 = classic double buffer).
        let (full_tx, full_rx) = mpsc::sync_channel::<Vec<u8>>(depth - 1);
        let (pool_tx, pool_rx) = mpsc::channel::<Vec<u8>>();
        let recorder = Arc::clone(&self.recorder);
        let node = self.my_rank();
        let reader = self.pool.spawn_pinned(move || -> Result<(), FsError> {
            let mut files = reader_files;
            for (fidx, key, offset, bytes) in jobs_desc {
                let mut buf = pool_rx.try_recv().unwrap_or_default();
                buf.clear();
                buf.resize(bytes, 0);
                let t_disk = recorder.enabled().then(Instant::now);
                files[fidx].read_at(offset, &mut buf)?;
                if let Some(t) = t_disk {
                    recorder.record(
                        node,
                        &Event::DiskReadDone {
                            key,
                            offset,
                            bytes: buf.len() as u64,
                            dur: t.elapsed(),
                        },
                    );
                }
                if full_tx.send(buf).is_err() {
                    // Consumer bailed; nothing left to prefetch for.
                    return Ok(());
                }
            }
            Ok(())
        });

        let run = (|| -> Result<(), PandaError> {
            let mut seq = 0u64;
            for f in &flat {
                let buf = full_rx.recv().map_err(|_| PandaError::Protocol {
                    detail: "disk reader stopped early".to_string(),
                })?;
                let key = SubchunkKey::new(self.server_idx, f.array, f.si);
                self.scatter_subchunk_pooled(key, f.sub, f.section, &buf, &mut seq, f.elem)?;
                // Hand the drained buffer back for the next prefetch.
                let _ = pool_tx.send(buf);
            }
            Ok(())
        })();

        // Unblock a prefetcher still parked on a full queue, then join.
        drop(full_rx);
        let disk = reader.join().map_err(|_| PandaError::Protocol {
            detail: "disk reader task panicked".to_string(),
        })?;
        match (run, disk) {
            (Ok(()), disk) => Ok(disk?),
            // A dead reader also breaks the scatter loop; the disk error
            // is the root cause.
            (Err(_), Err(disk)) => Err(disk.into()),
            (Err(run), Ok(())) => Err(run),
        }
    }

    /// Pack and push one subchunk's pieces to their owning clients,
    /// trimming each piece to the requested section. `key.array` names
    /// the array index on the wire.
    #[allow(clippy::too_many_arguments)]
    fn scatter_subchunk(
        &mut self,
        key: SubchunkKey,
        sub: &PlanSubchunk,
        section: Option<&Region>,
        buf: &[u8],
        seq: &mut u64,
        elem: usize,
    ) -> Result<(), PandaError> {
        for (pi, piece) in sub.pieces.iter().enumerate() {
            let target = match section {
                None => Some(piece.region.clone()),
                Some(section) => piece.region.intersect(section),
            };
            let Some(target) = target else { continue };
            let t_pack = self.obs_on().then(Instant::now);
            let packed = copy::pack_region(buf, &sub.region, &target, elem)?;
            let bytes = packed.len() as u64;
            if let Some(t) = t_pack {
                self.emit(&Event::Packed {
                    key,
                    piece: pi as u32,
                    bytes,
                    dur: t.elapsed(),
                });
            }
            send_data(
                &mut *self.transport,
                NodeId(piece.client),
                key.array,
                *seq,
                &target,
                packed,
            )?;
            self.emit(&Event::PushSent {
                key,
                piece: pi as u32,
                client: piece.client as u32,
                bytes,
            });
            *seq += 1;
        }
        Ok(())
    }

    /// Group-path variant of [`Self::scatter_subchunk`]: packs all of a
    /// subchunk's pieces in parallel on the worker pool (large pieces
    /// additionally split along their outermost dimension inside
    /// [`IoPool::pack_region_par`]), then sends them in piece order so
    /// the per-client message stream matches the serial schedule.
    fn scatter_subchunk_pooled(
        &mut self,
        key: SubchunkKey,
        sub: &PlanSubchunk,
        section: Option<&Region>,
        buf: &[u8],
        seq: &mut u64,
        elem: usize,
    ) -> Result<(), PandaError> {
        let targets: Vec<(usize, Region)> = sub
            .pieces
            .iter()
            .enumerate()
            .filter_map(|(pi, piece)| {
                let target = match section {
                    None => Some(piece.region.clone()),
                    Some(section) => piece.region.intersect(section),
                };
                target.map(|t| (pi, t))
            })
            .collect();
        if targets.is_empty() {
            return Ok(());
        }
        let mut packed: Vec<Vec<u8>> = vec![Vec::new(); targets.len()];
        {
            let pool = &self.pool;
            let recorder = &self.recorder;
            let node = self.my_rank();
            let error: Mutex<Option<SchemaError>> = Mutex::new(None);
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = packed
                .iter_mut()
                .zip(&targets)
                .map(|(out, (pi, target))| {
                    let error = &error;
                    Box::new(move || {
                        let t_pack = recorder.enabled().then(Instant::now);
                        match pool.pack_region_par(out, buf, &sub.region, target, elem) {
                            Ok(()) => {
                                if let Some(t) = t_pack {
                                    recorder.record(
                                        node,
                                        &Event::ReorgWorker {
                                            key,
                                            piece: *pi as u32,
                                            bytes: out.len() as u64,
                                            dur: t.elapsed(),
                                        },
                                    );
                                }
                            }
                            Err(e) => {
                                error.lock().unwrap().get_or_insert(e);
                            }
                        }
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            self.pool.run_scoped(jobs);
            if let Some(e) = error.into_inner().unwrap() {
                return Err(e.into());
            }
        }
        for ((pi, target), data) in targets.into_iter().zip(packed) {
            let bytes = data.len() as u64;
            send_data(
                &mut *self.transport,
                NodeId(sub.pieces[pi].client),
                key.array,
                *seq,
                &target,
                data,
            )?;
            self.emit(&Event::PushSent {
                key,
                piece: pi as u32,
                client: sub.pieces[pi].client as u32,
                bytes,
            });
            *seq += 1;
        }
        Ok(())
    }

    /// Baseline support: apply a positioned write in arrival order.
    fn raw_write(&mut self, file: &str, offset: u64, payload: &[u8]) -> Result<(), PandaError> {
        let handle = self.raw_handle(file)?;
        handle.write_at(offset, payload)?;
        Ok(())
    }

    /// Baseline support: serve a positioned read.
    fn raw_read(
        &mut self,
        src: NodeId,
        file: &str,
        offset: u64,
        len: usize,
        seq: u64,
    ) -> Result<(), PandaError> {
        let mut payload = vec![0u8; len];
        let handle = self.raw_handle(file)?;
        handle.read_at(offset, &mut payload)?;
        send_msg(&mut *self.transport, src, &Msg::RawData { seq, payload })?;
        Ok(())
    }

    fn raw_handle(&mut self, file: &str) -> Result<&mut Box<dyn FileHandle>, PandaError> {
        match self.raw_handles.entry(file.to_string()) {
            std::collections::hash_map::Entry::Occupied(e) => Ok(e.into_mut()),
            std::collections::hash_map::Entry::Vacant(e) => {
                let handle = if self.fs.exists(file) {
                    self.fs.open(file)?
                } else {
                    self.fs.create(file)?
                };
                Ok(e.insert(handle))
            }
        }
    }

    /// Baseline support: completion barrier. Once every client has sent
    /// `RawDone`, sync all touched files and acknowledge everyone. The
    /// seen set is a fixed bitmap over client ranks, so the duplicate
    /// check is O(1) regardless of client count.
    fn raw_done(&mut self, src: NodeId) -> Result<(), PandaError> {
        match self.raw_done.get_mut(src.0) {
            Some(seen) if !*seen => *seen = true,
            _ => {
                return Err(PandaError::Protocol {
                    detail: format!("duplicate or non-client RawDone from {src}"),
                })
            }
        }
        self.raw_done_count += 1;
        if self.raw_done_count == self.num_clients {
            for handle in self.raw_handles.values_mut() {
                handle.sync()?;
            }
            // Drop the handle cache: the logical op is over, and fresh
            // handles restart sequentiality tracking for the next op.
            self.raw_handles.clear();
            self.raw_done_count = 0;
            for client in 0..self.num_clients {
                debug_assert!(self.raw_done[client], "barrier complete");
                self.raw_done[client] = false;
                send_msg(&mut *self.transport, NodeId(client), &Msg::RawAck)?;
            }
        }
        Ok(())
    }
}
