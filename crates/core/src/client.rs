//! The Panda client: the compute-node side of a collective operation.
//!
//! Under server-directed I/O the client is almost passive (paper §2):
//! the master client sends one short high-level request describing the
//! schemas, then every client simply *serves* the servers — packing
//! requested regions on writes, scattering delivered regions on reads —
//! until released. "Note the clients and servers play a different role
//! than in traditional client/server architectures where the clients
//! make requests of the server."

use std::sync::Arc;
use std::time::Instant;

use panda_fs::SyncPolicy;
use panda_msg::{MatchSpec, NodeId, Transport};
use panda_obs::{Event, OpDir, Recorder};
use panda_schema::{copy, Region};

use crate::array::ArrayMeta;
use crate::error::PandaError;

use crate::protocol::{recv_msg, send_data, send_msg, ArrayOp, CollectiveRequest, Msg, OpKind};

/// One array's side of the exchange, as the serve loop sees it: the
/// variant is the collective's direction.
enum XferBuf<'a> {
    /// Write direction: the client's chunk, packed on demand for each
    /// `Fetch`.
    Src(&'a [u8]),
    /// Read direction: the client's receive buffer, scattered into for
    /// each `Data`.
    Dst(&'a mut [u8]),
}

/// Per-array state for [`PandaClient::serve_collective`].
struct XferArray<'a> {
    meta: &'a ArrayMeta,
    /// The memory region the buffer covers (my chunk, or its
    /// intersection with the requested section).
    region: Region,
    buf: XferBuf<'a>,
}

/// A compute node's handle to Panda. One per client thread.
pub struct PandaClient {
    transport: Box<dyn Transport>,
    rank: usize,
    num_clients: usize,
    num_servers: usize,
    subchunk_bytes: usize,
    pipeline_depth: usize,
    sync_policy: SyncPolicy,
    /// Session recorder; events are tagged with this client's rank.
    recorder: Arc<dyn Recorder>,
}

impl PandaClient {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        transport: Box<dyn Transport>,
        rank: usize,
        num_clients: usize,
        num_servers: usize,
        subchunk_bytes: usize,
        pipeline_depth: usize,
        sync_policy: SyncPolicy,
        recorder: Arc<dyn Recorder>,
    ) -> Self {
        PandaClient {
            transport,
            rank,
            num_clients,
            num_servers,
            subchunk_bytes,
            pipeline_depth,
            sync_policy,
            recorder,
        }
    }

    /// Whether instrumentation (and therefore clock reads) is on.
    fn obs_on(&self) -> bool {
        self.recorder.enabled()
    }

    /// Record one event under this client's rank, if recording is on.
    fn emit(&self, event: &Event<'_>) {
        if self.recorder.enabled() {
            self.recorder.record(self.rank as u32, event);
        }
    }

    /// This client's rank (0-based compute-node index).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of compute nodes.
    pub fn num_clients(&self) -> usize {
        self.num_clients
    }

    /// Number of I/O nodes.
    pub fn num_servers(&self) -> usize {
        self.num_servers
    }

    /// The subchunk subdivision cap for this session.
    pub fn subchunk_bytes(&self) -> usize {
        self.subchunk_bytes
    }

    /// The server pipeline depth requested for this session's
    /// collectives (1 = unpipelined).
    pub fn pipeline_depth(&self) -> usize {
        self.pipeline_depth
    }

    /// The disk-stage sync policy requested for this session's
    /// collectives.
    pub fn sync_policy(&self) -> SyncPolicy {
        self.sync_policy
    }

    /// True iff this is the master client (rank 0), which exchanges the
    /// control messages with the master server.
    pub fn is_master(&self) -> bool {
        self.rank == 0
    }

    fn master_server(&self) -> NodeId {
        NodeId(self.num_clients)
    }

    pub(crate) fn transport_mut(&mut self) -> &mut dyn Transport {
        &mut *self.transport
    }

    /// Raw access to the underlying transport. Exposed for failure-
    /// injection tests and protocol tooling; applications should use the
    /// collective operations instead.
    #[doc(hidden)]
    pub fn transport_mut_for_tests(&mut self) -> &mut dyn Transport {
        &mut *self.transport
    }

    fn check_buffers(
        &self,
        arrays: &[(&ArrayMeta, &str)],
        lens: &[usize],
    ) -> Result<(), PandaError> {
        for ((meta, _), &len) in arrays.iter().zip(lens) {
            let expected = meta.client_bytes(self.rank);
            if len != expected {
                return Err(PandaError::BadClientBuffer {
                    array: meta.name().to_string(),
                    expected,
                    actual: len,
                });
            }
        }
        Ok(())
    }

    /// Collective write: every client calls this with its chunk of each
    /// array. `arrays` items are `(metadata, file_tag, chunk_data)`;
    /// the file tag names the operation's files
    /// (`"<file_tag>.s<server>"` on each I/O node).
    ///
    /// Blocks until the whole collective completes on every node.
    pub fn write(&mut self, arrays: &[(&ArrayMeta, &str, &[u8])]) -> Result<(), PandaError> {
        let heads: Vec<(&ArrayMeta, &str)> = arrays.iter().map(|&(m, t, _)| (m, t)).collect();
        let lens: Vec<usize> = arrays.iter().map(|&(_, _, d)| d.len()).collect();
        self.check_buffers(&heads, &lens)?;
        let t_op = self.obs_on().then(Instant::now);
        self.start_collective(OpKind::Write, &heads, None)?;

        let mut xfer: Vec<XferArray<'_>> = arrays
            .iter()
            .map(|&(meta, _, data)| XferArray {
                meta,
                region: meta.client_region(self.rank),
                buf: XferBuf::Src(data),
            })
            .collect();
        // A write expects no inbound pieces; the loop runs on control
        // flow alone.
        let complete = self.serve_collective(&mut xfer, 0)?;
        if let Some(t) = t_op {
            self.emit(&Event::CollectiveDone {
                op: OpDir::Write,
                dur: t.elapsed(),
            });
        }
        self.finish_collective(complete)
    }

    /// Collective read: the mirror of [`PandaClient::write`]; each
    /// client's buffer is filled with its memory chunk.
    pub fn read(&mut self, arrays: &mut [(&ArrayMeta, &str, &mut [u8])]) -> Result<(), PandaError> {
        let n = arrays.len();
        self.read_impl(arrays, &vec![None; n])
    }

    /// Collective **section** read: fill each client's buffer with its
    /// part of an arbitrary rectangular section of the array — the
    /// strided-subarray access pattern the paper's workload studies
    /// observe ("physical periodicity in strided access to
    /// multidimensional arrays", §4). Each buffer must be sized for
    /// `client_region ∩ section` (see
    /// [`PandaClient::section_bytes`]); clients whose chunk misses the
    /// section still participate with an empty buffer. The servers read
    /// only the subchunks overlapping the section, in file order.
    pub fn read_section(
        &mut self,
        meta: &ArrayMeta,
        file_tag: &str,
        section: &Region,
        data: &mut [u8],
    ) -> Result<(), PandaError> {
        let mut arrays = [(meta, file_tag, data)];
        self.read_impl(&mut arrays, &[Some(section.clone())])
    }

    /// Buffer size this client must supply for a section read: the
    /// bytes of `client_region ∩ section` (zero when disjoint).
    pub fn section_bytes(&self, meta: &ArrayMeta, section: &Region) -> usize {
        meta.client_region(self.rank)
            .intersect(section)
            .map(|r| r.num_bytes(meta.elem_size()))
            .unwrap_or(0)
    }

    fn read_impl(
        &mut self,
        arrays: &mut [(&ArrayMeta, &str, &mut [u8])],
        sections: &[Option<Region>],
    ) -> Result<(), PandaError> {
        let heads: Vec<(&ArrayMeta, &str)> = arrays.iter().map(|a| (a.0, a.1)).collect();

        // Receive targets: my chunk, or its intersection with the
        // section. Disjoint sections leave an empty target.
        let regions: Vec<Region> = arrays
            .iter()
            .zip(sections)
            .map(|(a, sec)| {
                let mine = a.0.client_region(self.rank);
                match sec {
                    None => mine,
                    Some(s) => mine
                        .intersect(s)
                        .unwrap_or_else(|| Region::empty(mine.rank())),
                }
            })
            .collect();
        for ((a, region), sec) in arrays.iter().zip(&regions).zip(sections) {
            let expected = region.num_bytes(a.0.elem_size());
            if a.2.len() != expected {
                return Err(PandaError::BadClientBuffer {
                    array: a.0.name().to_string(),
                    expected,
                    actual: a.2.len(),
                });
            }
            let _ = sec;
        }

        // How many pieces will land here, per the shared planner.
        let expected: usize = heads
            .iter()
            .zip(sections)
            .map(|((m, _), sec)| {
                crate::plan::client_manifest_section(
                    m,
                    self.rank,
                    self.num_servers,
                    self.subchunk_bytes,
                    sec.as_ref(),
                )
                .pieces
            })
            .sum();

        let t_op = self.obs_on().then(Instant::now);
        self.start_collective(OpKind::Read, &heads, Some(sections))?;

        let mut xfer: Vec<XferArray<'_>> = arrays
            .iter_mut()
            .zip(&regions)
            .map(|(a, region)| XferArray {
                meta: a.0,
                region: region.clone(),
                buf: XferBuf::Dst(a.2),
            })
            .collect();
        let complete = self.serve_collective(&mut xfer, expected)?;
        if let Some(t) = t_op {
            self.emit(&Event::CollectiveDone {
                op: OpDir::Read,
                dur: t.elapsed(),
            });
        }
        self.finish_collective(complete)
    }

    /// The one client-side exchange loop: serve the servers until
    /// released, for either direction. Fetches pack from `Src` buffers
    /// and reply with `Data`; deliveries scatter into `Dst` buffers —
    /// the buffer variant *is* the direction, so a fetch during a read
    /// (or a delivery during a write) is a typed protocol error.
    /// `expected` is how many pieces must land here (0 for writes);
    /// with pipelining the servers keep several requests outstanding
    /// per client, so this loop is the client's hot path: each packed
    /// reply *moves* into the envelope via the vectored send path — one
    /// allocation and one copy per piece.
    ///
    /// Returns whether `Complete` (rather than `Release`) ended the
    /// loop, for [`PandaClient::finish_collective`].
    fn serve_collective(
        &mut self,
        arrays: &mut [XferArray<'_>],
        expected: usize,
    ) -> Result<bool, PandaError> {
        let mut received = 0usize;
        let mut released = false;
        let mut complete = false;
        while received < expected || !(released || complete) {
            let (src, msg) = recv_msg(self.transport_mut(), MatchSpec::any())?;
            match msg {
                Msg::Fetch { array, seq, region } => {
                    let idx = array as usize;
                    let x = arrays.get(idx).ok_or_else(|| PandaError::Protocol {
                        detail: format!("fetch for unknown array index {idx}"),
                    })?;
                    let XferBuf::Src(data) = &x.buf else {
                        return Err(PandaError::Protocol {
                            detail: "fetch during a read collective".to_string(),
                        });
                    };
                    let t_pack = self.obs_on().then(Instant::now);
                    let packed = copy::pack_region(data, &x.region, &region, x.meta.elem_size())?;
                    if let Some(t) = t_pack {
                        self.emit(&Event::ClientPacked {
                            array,
                            seq,
                            bytes: packed.len() as u64,
                            dur: t.elapsed(),
                        });
                    }
                    send_data(self.transport_mut(), src, array, seq, &region, packed)?;
                }
                Msg::Data {
                    array,
                    seq,
                    region,
                    payload,
                } => {
                    let idx = array as usize;
                    let x = arrays.get_mut(idx).ok_or_else(|| PandaError::Protocol {
                        detail: format!("data for unknown array index {idx}"),
                    })?;
                    let elem = x.meta.elem_size();
                    let XferBuf::Dst(data) = &mut x.buf else {
                        return Err(PandaError::Protocol {
                            detail: "data reply during a write collective".to_string(),
                        });
                    };
                    let t_unpack = self.obs_on().then(Instant::now);
                    copy::unpack_region(data, &x.region, &region, &payload, elem)?;
                    if let Some(t) = t_unpack {
                        self.emit(&Event::ClientUnpacked {
                            array,
                            seq,
                            bytes: payload.len() as u64,
                            dur: t.elapsed(),
                        });
                    }
                    received += 1;
                    if received > expected {
                        return Err(PandaError::Protocol {
                            detail: "more pieces than the plan predicts".to_string(),
                        });
                    }
                }
                Msg::Complete => complete = true,
                Msg::Release => released = true,
                other => {
                    return Err(PandaError::Protocol {
                        detail: format!("unexpected {:?} during a collective", other.tag()),
                    })
                }
            }
        }
        Ok(complete)
    }

    /// Send the high-level collective request (master client only).
    fn start_collective(
        &mut self,
        op: OpKind,
        arrays: &[(&ArrayMeta, &str)],
        sections: Option<&[Option<Region>]>,
    ) -> Result<(), PandaError> {
        if !self.is_master() {
            return Ok(());
        }
        // The group — not the array — is the unit of scheduling: one
        // request stream carries every array, and the servers interleave
        // their subchunks through one pipeline window.
        self.emit(&Event::GroupSubmit {
            op: match op {
                OpKind::Write => OpDir::Write,
                OpKind::Read => OpDir::Read,
            },
            arrays: arrays.len() as u32,
            pipeline_depth: self.pipeline_depth as u32,
        });
        let req = CollectiveRequest {
            op,
            arrays: arrays
                .iter()
                .enumerate()
                .map(|(i, &(meta, tag))| ArrayOp {
                    meta: meta.clone(),
                    file_tag: tag.to_string(),
                    section: sections.and_then(|s| s[i].clone()),
                })
                .collect(),
            subchunk_bytes: self.subchunk_bytes,
            pipeline_depth: self.pipeline_depth,
            sync_policy: self.sync_policy,
        };
        let dst = self.master_server();
        send_msg(self.transport_mut(), dst, &Msg::Collective(req))
    }

    /// On completion the master client (which saw `Complete`) releases
    /// the other clients (which then see `Release`).
    fn finish_collective(&mut self, saw_complete: bool) -> Result<(), PandaError> {
        if self.is_master() {
            if !saw_complete {
                return Err(PandaError::Protocol {
                    detail: "master client released without Complete".to_string(),
                });
            }
            for c in 1..self.num_clients {
                send_msg(self.transport_mut(), NodeId(c), &Msg::Release)?;
            }
        } else if saw_complete {
            return Err(PandaError::Protocol {
                detail: "non-master client received Complete".to_string(),
            });
        }
        Ok(())
    }

    /// Ask all servers to shut down (used by
    /// [`crate::runtime::PandaSystem::shutdown`]; master client only).
    pub(crate) fn send_shutdown(&mut self) -> Result<(), PandaError> {
        for s in 0..self.num_servers {
            let dst = NodeId(self.num_clients + s);
            send_msg(self.transport_mut(), dst, &Msg::Shutdown)?;
        }
        Ok(())
    }
}
