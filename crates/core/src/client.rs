//! The Panda client: the compute-node side of a collective operation.
//!
//! Under server-directed I/O the client is almost passive (paper §2):
//! the submitter sends one short high-level request describing the
//! schemas, then every participating client simply *serves* the servers
//! — packing requested regions on writes, scattering delivered regions
//! on reads — until released. "Note the clients and servers play a
//! different role than in traditional client/server architectures where
//! the clients make requests of the server."
//!
//! A collective is submitted in one of two modes. **Fleet** mode is the
//! paper's SPMD model: every compute node calls the same operation, the
//! master client (rank 0) submits one request naming all of them as
//! participants, and the master releases the others when the servers
//! report completion. **Session** mode is the multi-tenant service
//! model: one client is the sole participant of its own request, many
//! such requests run concurrently on the shared servers, and each
//! message carries its request id so the flows never blend. The request
//! id is minted here as `(rank + 1) << 32 | counter` — unique across
//! submitters without coordination.

use std::sync::Arc;
use std::time::Instant;

use panda_fs::SyncPolicy;
use panda_msg::{MatchSpec, NodeId, Transport};
use panda_obs::{Event, OpDir, Recorder};
use panda_schema::{copy, Region};

use crate::array::ArrayMeta;
use crate::error::PandaError;
use crate::request::{ReadSet, WriteSet};
use crate::tuned::TunedConfig;

use crate::protocol::{recv_msg, send_data, send_msg, ArrayOp, CollectiveRequest, Msg, OpKind};

/// How a collective request enters the system.
#[derive(Debug, Clone, Copy)]
pub(crate) enum SubmitMode {
    /// The paper's SPMD model: all compute nodes participate, rank 0
    /// submits.
    Fleet,
    /// Service model: this client alone participates, at the given
    /// scheduling priority.
    Session {
        /// Scheduling priority (higher pumps first on the servers).
        priority: u8,
    },
}

/// One array's side of the exchange, as the serve loop sees it: the
/// variant is the collective's direction.
enum XferBuf<'a> {
    /// Write direction: the client's chunk, packed on demand for each
    /// `Fetch`.
    Src(&'a [u8]),
    /// Read direction: the client's receive buffer, scattered into for
    /// each `Data`.
    Dst(&'a mut [u8]),
}

/// Per-array state for [`PandaClient::serve_collective`].
struct XferArray<'a> {
    meta: &'a ArrayMeta,
    /// The memory region the buffer covers (my chunk, or its
    /// intersection with the requested section).
    region: Region,
    buf: XferBuf<'a>,
}

/// A compute node's handle to Panda. One per client thread.
pub struct PandaClient {
    transport: Box<dyn Transport>,
    rank: usize,
    num_clients: usize,
    num_servers: usize,
    subchunk_bytes: usize,
    pipeline_depth: usize,
    sync_policy: SyncPolicy,
    /// Requests minted by this client so far (the low half of the id).
    req_counter: u64,
    /// The id of the last request this client submitted.
    last_request: Option<u64>,
    /// Session recorder; events are tagged with this client's rank.
    recorder: Arc<dyn Recorder>,
}

impl PandaClient {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        transport: Box<dyn Transport>,
        rank: usize,
        num_clients: usize,
        num_servers: usize,
        subchunk_bytes: usize,
        pipeline_depth: usize,
        sync_policy: SyncPolicy,
        recorder: Arc<dyn Recorder>,
    ) -> Self {
        PandaClient {
            transport,
            rank,
            num_clients,
            num_servers,
            subchunk_bytes,
            pipeline_depth,
            sync_policy,
            req_counter: 0,
            last_request: None,
            recorder,
        }
    }

    /// Whether instrumentation (and therefore clock reads) is on.
    fn obs_on(&self) -> bool {
        self.recorder.enabled()
    }

    /// Record one event under this client's rank, if recording is on.
    fn emit(&self, event: &Event<'_>) {
        if self.recorder.enabled() {
            self.recorder.record(self.rank as u32, event);
        }
    }

    /// This client's rank (0-based compute-node index).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of compute nodes.
    pub fn num_clients(&self) -> usize {
        self.num_clients
    }

    /// Number of I/O nodes.
    pub fn num_servers(&self) -> usize {
        self.num_servers
    }

    /// The subchunk subdivision cap for this session.
    pub fn subchunk_bytes(&self) -> usize {
        self.subchunk_bytes
    }

    /// The server pipeline depth requested for this session's
    /// collectives (1 = unpipelined).
    pub fn pipeline_depth(&self) -> usize {
        self.pipeline_depth
    }

    /// The disk-stage sync policy requested for this session's
    /// collectives.
    pub fn sync_policy(&self) -> SyncPolicy {
        self.sync_policy
    }

    /// True iff this is the master client (rank 0), which submits the
    /// fleet's requests and exchanges the control messages with the
    /// master server.
    pub fn is_master(&self) -> bool {
        self.rank == 0
    }

    /// The id of the most recent request this client submitted, for
    /// correlating with request-scoped observability
    /// ([`panda_obs::RunReport::for_request`]). `None` until this
    /// client has submitted one (fleet non-masters never do).
    pub fn last_request_id(&self) -> Option<u64> {
        self.last_request
    }

    /// The deployment's observability recorder (every node shares one).
    /// Calibration passes scope it per request via
    /// [`panda_obs::RunReport::for_request`].
    pub fn recorder(&self) -> &Arc<dyn Recorder> {
        &self.recorder
    }

    fn master_server(&self) -> NodeId {
        NodeId(self.num_clients)
    }

    pub(crate) fn transport_mut(&mut self) -> &mut dyn Transport {
        &mut *self.transport
    }

    /// Raw access to the underlying transport. Exposed for failure-
    /// injection tests and protocol tooling; applications should use the
    /// collective operations instead.
    #[doc(hidden)]
    pub fn transport_mut_for_tests(&mut self) -> &mut dyn Transport {
        &mut *self.transport
    }

    /// Mint a request id: unique across clients without coordination.
    fn fresh_request_id(&mut self) -> u64 {
        self.req_counter += 1;
        ((self.rank as u64 + 1) << 32) | self.req_counter
    }

    /// The mesh-local chunk index this submission packs/scatters with:
    /// the fabric rank in fleet mode, chunk 0 in session mode (a
    /// session's arrays live on a 1-node memory mesh).
    fn mesh_rank(&self, mode: SubmitMode) -> usize {
        match mode {
            SubmitMode::Fleet => self.rank,
            SubmitMode::Session { .. } => 0,
        }
    }

    fn check_buffers(
        &self,
        arrays: &[(&ArrayMeta, &str)],
        lens: &[usize],
        mesh: usize,
    ) -> Result<(), PandaError> {
        for ((meta, _), &len) in arrays.iter().zip(lens) {
            let expected = meta.client_bytes(mesh);
            if len != expected {
                return Err(PandaError::BadClientBuffer {
                    array: meta.name().to_string(),
                    expected,
                    actual: len,
                });
            }
        }
        Ok(())
    }

    /// Collective write of a prepared [`WriteSet`]: every compute node
    /// calls this with its chunk of each array. Blocks until the whole
    /// collective completes on every node.
    pub fn write_set(&mut self, set: &WriteSet<'_>) -> Result<(), PandaError> {
        self.write_set_mode(set, SubmitMode::Fleet)
    }

    pub(crate) fn write_set_mode(
        &mut self,
        set: &WriteSet<'_>,
        mode: SubmitMode,
    ) -> Result<(), PandaError> {
        let mesh = self.mesh_rank(mode);
        let heads: Vec<(&ArrayMeta, &str)> =
            set.items.iter().map(|i| (i.meta, i.tag.as_str())).collect();
        let lens: Vec<usize> = set.items.iter().map(|i| i.data.len()).collect();
        self.check_buffers(&heads, &lens, mesh)?;
        let t_op = self.obs_on().then(Instant::now);
        let want = self.start_collective(OpKind::Write, &heads, None, mode, set.tuning.as_ref())?;

        let mut xfer: Vec<XferArray<'_>> = set
            .items
            .iter()
            .map(|i| XferArray {
                meta: i.meta,
                region: i.meta.client_region(mesh),
                buf: XferBuf::Src(i.data),
            })
            .collect();
        // A write expects no inbound pieces; the loop runs on control
        // flow alone.
        let (complete, request) = match self.serve_collective(&mut xfer, 0, want) {
            Ok(done) => done,
            Err(e) => {
                self.emit_request_error(want.unwrap_or(0), &e);
                return Err(e);
            }
        };
        if let Some(t) = t_op {
            self.emit(&Event::CollectiveDone {
                request,
                op: OpDir::Write,
                dur: t.elapsed(),
            });
        }
        self.finish_collective(complete, mode)
    }

    /// Collective read of a prepared [`ReadSet`]: the mirror of
    /// [`PandaClient::write_set`]; each buffer is filled with this
    /// node's chunk (or its intersection with the entry's section).
    pub fn read_set(&mut self, set: &mut ReadSet<'_>) -> Result<(), PandaError> {
        self.read_set_mode(set, SubmitMode::Fleet)
    }

    pub(crate) fn read_set_mode(
        &mut self,
        set: &mut ReadSet<'_>,
        mode: SubmitMode,
    ) -> Result<(), PandaError> {
        let mesh = self.mesh_rank(mode);
        let heads: Vec<(&ArrayMeta, &str)> =
            set.items.iter().map(|i| (i.meta, i.tag.as_str())).collect();

        // Receive targets: my chunk, or its intersection with the
        // section. Disjoint sections leave an empty target.
        let regions: Vec<Region> = set
            .items
            .iter()
            .map(|i| {
                let mine = i.meta.client_region(mesh);
                match &i.section {
                    None => mine,
                    Some(s) => mine
                        .intersect(s)
                        .unwrap_or_else(|| Region::empty(mine.rank())),
                }
            })
            .collect();
        for (i, region) in set.items.iter().zip(&regions) {
            let expected = region.num_bytes(i.meta.elem_size());
            if i.data.len() != expected {
                return Err(PandaError::BadClientBuffer {
                    array: i.meta.name().to_string(),
                    expected,
                    actual: i.data.len(),
                });
            }
        }

        // How many pieces will land here, per the shared planner. The
        // planner must see the same subchunk cap the servers will use,
        // so a per-request override applies here too.
        let subchunk = set.tuning.map_or(self.subchunk_bytes, |t| t.subchunk_bytes);
        let expected: usize = set
            .items
            .iter()
            .map(|i| {
                crate::plan::client_manifest_section(
                    i.meta,
                    mesh,
                    self.num_servers,
                    subchunk,
                    i.section.as_ref(),
                )
                .pieces
            })
            .sum();

        let sections: Vec<Option<Region>> = set.items.iter().map(|i| i.section.clone()).collect();
        let t_op = self.obs_on().then(Instant::now);
        let want = self.start_collective(
            OpKind::Read,
            &heads,
            Some(&sections),
            mode,
            set.tuning.as_ref(),
        )?;

        let mut xfer: Vec<XferArray<'_>> = set
            .items
            .iter_mut()
            .zip(&regions)
            .map(|(i, region)| XferArray {
                meta: i.meta,
                region: region.clone(),
                buf: XferBuf::Dst(i.data),
            })
            .collect();
        let (complete, request) = match self.serve_collective(&mut xfer, expected, want) {
            Ok(done) => done,
            Err(e) => {
                self.emit_request_error(want.unwrap_or(0), &e);
                return Err(e);
            }
        };
        if let Some(t) = t_op {
            self.emit(&Event::CollectiveDone {
                request,
                op: OpDir::Read,
                dur: t.elapsed(),
            });
        }
        self.finish_collective(complete, mode)
    }

    /// Surface a failed collective to the telemetry plane (the flight
    /// recorder treats it as an incident trigger). Admission rejections
    /// are typed flow control with their own server-side event, so only
    /// genuine failures — protocol, transport, file system — report.
    fn emit_request_error(&self, request: u64, err: &PandaError) {
        if self.obs_on() && !matches!(err, PandaError::Admission { .. }) {
            let detail = err.to_string();
            self.emit(&Event::RequestError {
                request,
                detail: &detail,
            });
        }
    }

    /// Buffer size this client must supply for a section read: the
    /// bytes of `client_region ∩ section` (zero when disjoint).
    pub fn section_bytes(&self, meta: &ArrayMeta, section: &Region) -> usize {
        meta.client_region(self.rank)
            .intersect(section)
            .map(|r| r.num_bytes(meta.elem_size()))
            .unwrap_or(0)
    }

    /// Pin down which request a message belongs to: the first one seen
    /// binds the loop (fleet non-masters learn the id this way);
    /// anything different afterwards is a protocol error.
    fn check_request(seen: &mut Option<u64>, request: u64) -> Result<(), PandaError> {
        match seen {
            Some(id) if *id != request => Err(PandaError::Protocol {
                detail: format!("message for request {request} while serving request {id}"),
            }),
            Some(_) => Ok(()),
            None => {
                *seen = Some(request);
                Ok(())
            }
        }
    }

    /// The one client-side exchange loop: serve the servers until
    /// released, for either direction. Fetches pack from `Src` buffers
    /// and reply with `Data`; deliveries scatter into `Dst` buffers —
    /// the buffer variant *is* the direction, so a fetch during a read
    /// (or a delivery during a write) is a typed protocol error.
    /// `expected` is how many pieces must land here (0 for writes);
    /// with pipelining the servers keep several requests outstanding
    /// per client, so this loop is the client's hot path: each packed
    /// reply *moves* into the envelope via the vectored send path — one
    /// allocation and one copy per piece. Every reply echoes the
    /// fetch's request id, which is how the multi-tenant servers route
    /// it back to the right run.
    ///
    /// `want` is the submitted request's id when this client is the
    /// submitter (it must match every message, and a `Reject` for it
    /// surfaces as [`PandaError::Admission`]); `None` for fleet
    /// non-masters, which learn the id from the first message.
    ///
    /// Returns whether `Complete` (rather than `Release`) ended the
    /// loop, plus the request id served (0 if no message ever carried
    /// one — an empty write on a non-master).
    fn serve_collective(
        &mut self,
        arrays: &mut [XferArray<'_>],
        expected: usize,
        want: Option<u64>,
    ) -> Result<(bool, u64), PandaError> {
        let mut seen = want;
        let mut received = 0usize;
        let mut released = false;
        let mut complete = false;
        while received < expected || !(released || complete) {
            let (src, msg) = recv_msg(self.transport_mut(), MatchSpec::any())?;
            match msg {
                Msg::Fetch {
                    request,
                    array,
                    seq,
                    region,
                } => {
                    Self::check_request(&mut seen, request)?;
                    let idx = array as usize;
                    let x = arrays.get(idx).ok_or_else(|| PandaError::Protocol {
                        detail: format!("fetch for unknown array index {idx}"),
                    })?;
                    let XferBuf::Src(data) = &x.buf else {
                        return Err(PandaError::Protocol {
                            detail: "fetch during a read collective".to_string(),
                        });
                    };
                    let t_pack = self.obs_on().then(Instant::now);
                    let packed = copy::pack_region(data, &x.region, &region, x.meta.elem_size())?;
                    if let Some(t) = t_pack {
                        self.emit(&Event::ClientPacked {
                            request,
                            array,
                            seq,
                            bytes: packed.len() as u64,
                            dur: t.elapsed(),
                        });
                    }
                    send_data(
                        self.transport_mut(),
                        src,
                        request,
                        array,
                        seq,
                        &region,
                        packed,
                    )?;
                }
                Msg::Data {
                    request,
                    array,
                    seq,
                    region,
                    payload,
                } => {
                    Self::check_request(&mut seen, request)?;
                    let idx = array as usize;
                    let x = arrays.get_mut(idx).ok_or_else(|| PandaError::Protocol {
                        detail: format!("data for unknown array index {idx}"),
                    })?;
                    let elem = x.meta.elem_size();
                    let XferBuf::Dst(data) = &mut x.buf else {
                        return Err(PandaError::Protocol {
                            detail: "data reply during a write collective".to_string(),
                        });
                    };
                    let t_unpack = self.obs_on().then(Instant::now);
                    copy::unpack_region(data, &x.region, &region, &payload, elem)?;
                    if let Some(t) = t_unpack {
                        self.emit(&Event::ClientUnpacked {
                            request,
                            array,
                            seq,
                            bytes: payload.len() as u64,
                            dur: t.elapsed(),
                        });
                    }
                    received += 1;
                    if received > expected {
                        return Err(PandaError::Protocol {
                            detail: "more pieces than the plan predicts".to_string(),
                        });
                    }
                }
                Msg::Complete { request } => {
                    Self::check_request(&mut seen, request)?;
                    complete = true;
                }
                Msg::Release { request } => {
                    Self::check_request(&mut seen, request)?;
                    released = true;
                }
                Msg::Reject { request, reason } => {
                    Self::check_request(&mut seen, request)?;
                    // Typed flow control, not a protocol failure: the
                    // node is at capacity and the caller may retry.
                    return Err(PandaError::Admission { issue: reason });
                }
                other => {
                    return Err(PandaError::Protocol {
                        detail: format!("unexpected {:?} during a collective", other.tag()),
                    })
                }
            }
        }
        Ok((complete, seen.unwrap_or(0)))
    }

    /// Submit the high-level collective request, if this client is the
    /// submitter for `mode`. Returns the minted request id when it is.
    ///
    /// A per-request `tuning` override replaces the session's subchunk
    /// cap and pipeline depth on the wire. It is validated here, at
    /// submit time, with the same typed checks [`crate::PandaConfig`]
    /// applies at launch — the servers never see values the launch path
    /// would have rejected.
    fn start_collective(
        &mut self,
        op: OpKind,
        arrays: &[(&ArrayMeta, &str)],
        sections: Option<&[Option<Region>]>,
        mode: SubmitMode,
        tuning: Option<&TunedConfig>,
    ) -> Result<Option<u64>, PandaError> {
        if let Some(t) = tuning {
            t.validate(self.sync_policy)?;
        }
        let subchunk_bytes = tuning.map_or(self.subchunk_bytes, |t| t.subchunk_bytes);
        let pipeline_depth = tuning.map_or(self.pipeline_depth, |t| t.pipeline_depth);
        let (participants, priority): (Vec<u32>, u8) = match mode {
            SubmitMode::Fleet => {
                if !self.is_master() {
                    return Ok(None);
                }
                ((0..self.num_clients as u32).collect(), 0)
            }
            SubmitMode::Session { priority } => (vec![self.rank as u32], priority),
        };
        let request = self.fresh_request_id();
        // The group — not the array — is the unit of scheduling: one
        // request stream carries every array, and the servers interleave
        // their subchunks through one pipeline window.
        self.emit(&Event::GroupSubmit {
            op: match op {
                OpKind::Write => OpDir::Write,
                OpKind::Read => OpDir::Read,
            },
            arrays: arrays.len() as u32,
            pipeline_depth: pipeline_depth as u32,
        });
        let req = CollectiveRequest {
            request,
            participants,
            priority,
            op,
            arrays: arrays
                .iter()
                .enumerate()
                .map(|(i, &(meta, tag))| ArrayOp {
                    meta: meta.clone(),
                    file_tag: tag.to_string(),
                    section: sections.and_then(|s| s[i].clone()),
                })
                .collect(),
            subchunk_bytes,
            pipeline_depth,
            sync_policy: self.sync_policy,
        };
        let dst = self.master_server();
        send_msg(self.transport_mut(), dst, &Msg::Collective(req))?;
        self.last_request = Some(request);
        Ok(Some(request))
    }

    /// On completion the fleet's master client (which saw `Complete`)
    /// releases the other clients (which then see `Release`). A session
    /// is its own sole participant: there is no one to release.
    fn finish_collective(
        &mut self,
        saw_complete: bool,
        mode: SubmitMode,
    ) -> Result<(), PandaError> {
        let request = self.last_request.unwrap_or(0);
        match mode {
            SubmitMode::Session { .. } => {
                if !saw_complete {
                    return Err(PandaError::Protocol {
                        detail: "session collective ended without Complete".to_string(),
                    });
                }
                Ok(())
            }
            SubmitMode::Fleet if self.is_master() => {
                if !saw_complete {
                    return Err(PandaError::Protocol {
                        detail: "master client released without Complete".to_string(),
                    });
                }
                for c in 1..self.num_clients {
                    send_msg(self.transport_mut(), NodeId(c), &Msg::Release { request })?;
                }
                Ok(())
            }
            SubmitMode::Fleet => {
                if saw_complete {
                    return Err(PandaError::Protocol {
                        detail: "non-master client received Complete".to_string(),
                    });
                }
                Ok(())
            }
        }
    }

    /// Ask all servers to shut down (used by
    /// [`crate::runtime::PandaSystem::shutdown`]; master client only).
    pub(crate) fn send_shutdown(&mut self) -> Result<(), PandaError> {
        for s in 0..self.num_servers {
            let dst = NodeId(self.num_clients + s);
            send_msg(self.transport_mut(), dst, &Msg::Shutdown)?;
        }
        Ok(())
    }
}
