//! Array metadata: name, shape, element type, memory & disk schemas.

use panda_schema::{ChunkGrid, DataSchema, ElementType, Region, Shape};

use crate::error::PandaError;

/// Everything Panda needs to know about one array.
///
/// Mirrors the paper's `Array` class (Figure 2): a named array with a
/// *memory schema* (its HPF distribution across compute nodes) and a
/// *disk schema* (its chunked layout across I/O nodes). By default Panda
/// uses *natural chunking* — a disk schema identical to the memory
/// schema — but any `BLOCK`/`*` disk schema may be declared, and Panda
/// reorganizes the data in flight whenever the two differ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayMeta {
    name: String,
    memory: DataSchema,
    disk: DataSchema,
    /// Explicit per-array subchunk cap, overriding the deployment
    /// default (the paper's future-work "explicitly request sub-chunked
    /// schemas").
    subchunk_override: Option<usize>,
}

impl ArrayMeta {
    /// Create array metadata; the two schemas must agree on shape and
    /// element type.
    pub fn new(
        name: impl Into<String>,
        memory: DataSchema,
        disk: DataSchema,
    ) -> Result<Self, PandaError> {
        let name = name.into();
        if memory.shape() != disk.shape() || memory.elem() != disk.elem() {
            return Err(PandaError::SchemaMismatch { array: name });
        }
        Ok(ArrayMeta {
            name,
            memory,
            disk,
            subchunk_override: None,
        })
    }

    /// Explicitly request a sub-chunked disk schema: this array's
    /// chunks are subdivided into pieces of at most `bytes` regardless
    /// of the deployment-wide cap. The paper subdivides transparently
    /// at 1 MB (§2) and lists user-visible subchunk schemas as future
    /// work; this is that knob.
    pub fn with_subchunk_bytes(mut self, bytes: usize) -> Self {
        assert!(bytes > 0, "subchunk cap must be nonzero");
        self.subchunk_override = Some(bytes);
        self
    }

    /// The explicit subchunk cap, if one was requested.
    pub fn subchunk_override(&self) -> Option<usize> {
        self.subchunk_override
    }

    /// The subchunk cap in effect given the deployment default.
    pub fn effective_subchunk(&self, default_bytes: usize) -> usize {
        self.subchunk_override.unwrap_or(default_bytes)
    }

    /// Natural chunking: the disk schema is the memory schema (the
    /// paper's default, "for performance and convenience").
    pub fn natural(name: impl Into<String>, memory: DataSchema) -> Result<Self, PandaError> {
        let disk = memory.clone();
        ArrayMeta::new(name, memory, disk)
    }

    /// The array name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The memory (compute-node) schema.
    pub fn memory(&self) -> &DataSchema {
        &self.memory
    }

    /// The disk (I/O-node) schema.
    pub fn disk(&self) -> &DataSchema {
        &self.disk
    }

    /// Array shape (shared by both schemas).
    pub fn shape(&self) -> &Shape {
        self.memory.shape()
    }

    /// Element type.
    pub fn elem(&self) -> ElementType {
        self.memory.elem()
    }

    /// Element size in bytes.
    pub fn elem_size(&self) -> usize {
        self.memory.elem_size()
    }

    /// Total array size in bytes.
    pub fn total_bytes(&self) -> usize {
        self.memory.total_bytes()
    }

    /// True iff memory and disk schemas are identical (natural chunking:
    /// chunks move between clients and servers "with very little
    /// processing overhead").
    pub fn is_natural(&self) -> bool {
        self.memory == self.disk
    }

    /// The memory chunk grid (one chunk per compute node).
    pub fn memory_grid(&self) -> ChunkGrid {
        self.memory.chunk_grid()
    }

    /// The disk chunk grid (chunks are dealt round-robin to I/O nodes).
    pub fn disk_grid(&self) -> ChunkGrid {
        self.disk.chunk_grid()
    }

    /// Number of compute nodes the memory schema requires.
    pub fn num_clients(&self) -> usize {
        self.memory.mesh().num_nodes()
    }

    /// The array region held by compute node `rank`.
    pub fn client_region(&self, rank: usize) -> Region {
        self.memory_grid().chunk_region(rank)
    }

    /// The buffer size, in bytes, compute node `rank` must supply.
    pub fn client_bytes(&self, rank: usize) -> usize {
        self.client_region(rank).num_bytes(self.elem_size())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_schema::Mesh;

    fn shape() -> Shape {
        Shape::new(&[8, 8]).unwrap()
    }

    #[test]
    fn natural_chunking_duplicates_schema() {
        let mem =
            DataSchema::block_all(shape(), ElementType::F64, Mesh::new(&[2, 2]).unwrap()).unwrap();
        let a = ArrayMeta::natural("t", mem).unwrap();
        assert!(a.is_natural());
        assert_eq!(a.memory(), a.disk());
        assert_eq!(a.num_clients(), 4);
        assert_eq!(a.total_bytes(), 64 * 8);
    }

    #[test]
    fn mismatched_schemas_rejected() {
        let mem =
            DataSchema::block_all(shape(), ElementType::F64, Mesh::new(&[2, 2]).unwrap()).unwrap();
        let disk = DataSchema::traditional_order(Shape::new(&[8, 9]).unwrap(), ElementType::F64, 2)
            .unwrap();
        assert!(matches!(
            ArrayMeta::new("t", mem.clone(), disk),
            Err(PandaError::SchemaMismatch { .. })
        ));
        let disk_wrong_elem = DataSchema::traditional_order(shape(), ElementType::I32, 2).unwrap();
        assert!(ArrayMeta::new("t", mem, disk_wrong_elem).is_err());
    }

    #[test]
    fn client_regions_partition_the_array() {
        let mem =
            DataSchema::block_all(shape(), ElementType::I32, Mesh::new(&[2, 2]).unwrap()).unwrap();
        let disk = DataSchema::traditional_order(shape(), ElementType::I32, 3).unwrap();
        let a = ArrayMeta::new("p", mem, disk).unwrap();
        assert!(!a.is_natural());
        let total: usize = (0..a.num_clients()).map(|r| a.client_bytes(r)).sum();
        assert_eq!(total, a.total_bytes());
        assert_eq!(a.client_region(0).lo(), &[0, 0]);
        assert_eq!(a.client_region(3).lo(), &[4, 4]);
    }
}
