//! Service mode: a long-running Panda deployment shared by tenants.
//!
//! The paper's model is one SPMD fleet performing one collective at a
//! time. Service mode keeps the same I/O nodes up as a *shared
//! facility*: each tenant opens a [`Session`], submits its own
//! collectives whenever it likes, and the servers' request scheduler
//! interleaves all live requests over the shared worker pools and disk
//! stages (see the `server` module docs). A session is the sole
//! participant of its requests, so its arrays must live on a
//! single-node memory mesh — the session's own buffers cover the whole
//! array ([`ConfigIssue::SessionMesh`] otherwise).
//!
//! ```
//! use std::sync::Arc;
//! use panda_core::{ArrayMeta, PandaConfig, PandaSystem, WriteSet};
//! use panda_schema::{DataSchema, ElementType, Mesh, Shape};
//! use panda_fs::MemFs;
//!
//! let mut service = PandaSystem::builder()
//!     .config(PandaConfig::new(2, 1))
//!     .serve(|_| Arc::new(MemFs::new()))
//!     .unwrap();
//! let mut a = service.open().unwrap();
//! let mut b = service.open().unwrap();
//!
//! let mem = DataSchema::block_all(Shape::new(&[8, 8]).unwrap(),
//!     ElementType::U8, Mesh::new(&[1, 1]).unwrap()).unwrap();
//! let meta = ArrayMeta::natural("t", mem).unwrap();
//! let data = vec![7u8; 64];
//!
//! // Tenants submit independently; here serially from one thread, in
//! // real use from their own threads, concurrently.
//! let req_a = a.write_set(&WriteSet::new().array(&meta, "a", &data)).unwrap();
//! let req_b = b.write_set(&WriteSet::new().array(&meta, "b", &data)).unwrap();
//! assert_ne!(req_a, req_b);
//! service.shutdown(vec![a, b]).unwrap();
//! ```

use panda_schema::Region;

use crate::array::ArrayMeta;
use crate::client::{PandaClient, SubmitMode};
use crate::error::{ConfigIssue, PandaError};
use crate::group_ops::CollectiveHandle;
use crate::request::{ReadSet, WriteSet};
use crate::runtime::PandaSystem;
use crate::scrape::MetricsServer;

use panda_msg::{NodeId, Transport};

/// A running multi-tenant deployment: the server threads plus the pool
/// of unopened session slots. Built with
/// [`PandaSystemBuilder::serve`](crate::runtime::PandaSystemBuilder::serve);
/// the configured `num_clients` is the number of sessions that can be
/// open at once.
pub struct PandaService {
    system: PandaSystem,
    /// Unopened slots, last = lowest rank (so `open` pops in rank
    /// order).
    idle: Vec<PandaClient>,
}

impl PandaService {
    pub(crate) fn new(system: PandaSystem, mut clients: Vec<PandaClient>) -> Self {
        clients.reverse();
        PandaService {
            system,
            idle: clients,
        }
    }

    /// Open the next session slot; `None` when all configured slots are
    /// taken. Each session owns one fabric endpoint and can be moved to
    /// its own thread.
    pub fn open(&mut self) -> Option<Session> {
        self.idle.pop().map(|client| Session {
            client,
            priority: 0,
        })
    }

    /// Session slots still available.
    pub fn slots_remaining(&self) -> usize {
        self.idle.len()
    }

    /// Return a session's slot to the pool; a later [`PandaService::open`]
    /// can reuse it. This is how short-lived tenants — for example a
    /// calibration probe — borrow an endpoint without holding it for
    /// the service's lifetime.
    pub fn close(&mut self, session: Session) {
        self.idle.push(session.client);
    }

    /// The underlying deployment, for inspection (file systems, fabric
    /// statistics, observability reports).
    pub fn system(&self) -> &PandaSystem {
        &self.system
    }

    /// Start the scrape surface on `addr` (`0.0.0.0:0` or
    /// `127.0.0.1:0` binds an OS-assigned port — read it back with
    /// [`MetricsServer::addr`]). `GET /metrics` answers with Prometheus
    /// text exposition from the deployment recorder (attach a
    /// [`panda_obs::MetricsHub`], directly or inside a
    /// [`panda_obs::FanoutRecorder`], for the full family set) plus the
    /// live health gauges; `GET /healthz` answers with the
    /// [`crate::HealthSnapshot`] JSON — HTTP `503` once an admission
    /// queue is at its cap. The listener runs on its own thread until
    /// the returned handle is stopped or dropped.
    pub fn serve_metrics(
        &self,
        addr: impl std::net::ToSocketAddrs,
    ) -> std::io::Result<MetricsServer> {
        MetricsServer::start(
            addr,
            std::sync::Arc::clone(self.system.recorder()),
            std::sync::Arc::clone(self.system.health()),
        )
    }

    /// Shut the service down. Hand back every session still open; the
    /// servers drain their live and queued requests, then exit.
    pub fn shutdown(self, sessions: impl IntoIterator<Item = Session>) -> Result<(), PandaError> {
        let mut clients: Vec<PandaClient> = sessions.into_iter().map(|s| s.client).collect();
        clients.extend(self.idle);
        self.system.shutdown(clients)
    }
}

/// One tenant's handle to a [`PandaService`]: submits collectives that
/// run concurrently with every other session's.
pub struct Session {
    client: PandaClient,
    priority: u8,
}

impl Session {
    /// This session's fabric rank (its slot index).
    pub fn rank(&self) -> usize {
        self.client.rank()
    }

    /// The scheduling priority attached to this session's requests.
    pub fn priority(&self) -> u8 {
        self.priority
    }

    /// Set the scheduling priority for subsequent requests: the
    /// servers pump higher-priority requests first each scheduler pass
    /// (equal priorities round-robin).
    pub fn set_priority(&mut self, priority: u8) {
        self.priority = priority;
    }

    /// Number of I/O nodes in the deployment this session talks to.
    pub fn num_servers(&self) -> usize {
        self.client.num_servers()
    }

    /// The deployment's flush policy (relevant to tuning: `PerWrite`
    /// rules out pipeline depths above 1).
    pub fn sync_policy(&self) -> panda_fs::SyncPolicy {
        self.client.sync_policy()
    }

    /// The id of this session's most recent request, for correlating
    /// with request-scoped observability
    /// ([`panda_obs::RunReport::for_request`]).
    pub fn last_request_id(&self) -> Option<u64> {
        self.client.last_request_id()
    }

    /// The deployment's observability recorder (shared by every node);
    /// see [`crate::PandaClient::recorder`].
    pub fn recorder(&self) -> &std::sync::Arc<dyn panda_obs::Recorder> {
        self.client.recorder()
    }

    /// Buffer size required for a section read (whole-array mesh, so
    /// this is the section's own byte count).
    pub fn section_bytes(&self, meta: &ArrayMeta, section: &Region) -> usize {
        meta.client_region(0)
            .intersect(section)
            .map(|r| r.num_bytes(meta.elem_size()))
            .unwrap_or(0)
    }

    /// Session collectives are single-submitter: every array must live
    /// on a 1-node memory mesh so this session's buffers cover it.
    fn check_single_node<'a>(
        &self,
        metas: impl Iterator<Item = &'a ArrayMeta>,
    ) -> Result<(), PandaError> {
        for meta in metas {
            let clients = meta.num_clients();
            if clients != 1 {
                return Err(PandaError::Config {
                    issue: ConfigIssue::SessionMesh {
                        array: meta.name().to_string(),
                        clients,
                    },
                });
            }
        }
        Ok(())
    }

    /// Submit a collective write and block until it completes. Returns
    /// the request id. Fails with [`PandaError::Admission`] when the
    /// service is at capacity (typed, retryable flow control).
    pub fn write_set(&mut self, set: &WriteSet<'_>) -> Result<u64, PandaError> {
        self.check_single_node(set.items.iter().map(|i| i.meta))?;
        self.client.write_set_mode(
            set,
            SubmitMode::Session {
                priority: self.priority,
            },
        )?;
        Ok(self.client.last_request_id().unwrap_or(0))
    }

    /// Submit a collective read and block until it completes. Returns
    /// the request id; admission control as in [`Session::write_set`].
    pub fn read_set(&mut self, set: &mut ReadSet<'_>) -> Result<u64, PandaError> {
        self.check_single_node(set.items.iter().map(|i| i.meta))?;
        self.client.read_set_mode(
            set,
            SubmitMode::Session {
                priority: self.priority,
            },
        )?;
        Ok(self.client.last_request_id().unwrap_or(0))
    }
}

impl CollectiveHandle for Session {
    fn collective_write(&mut self, set: &WriteSet<'_>) -> Result<(), PandaError> {
        self.write_set(set).map(|_| ())
    }

    fn collective_read(&mut self, set: &mut ReadSet<'_>) -> Result<(), PandaError> {
        self.read_set(set).map(|_| ())
    }

    fn control(&mut self) -> (&mut dyn Transport, NodeId) {
        let server0 = NodeId(self.client.num_clients());
        (self.client.transport_mut(), server0)
    }
}
