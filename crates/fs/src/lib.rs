//! # panda-fs — file-system substrate for Panda
//!
//! Panda "runs on top of ordinary Unix file systems" (paper §1); each I/O
//! node stores its array chunks in its own AIX file system on the SP2.
//! This crate provides the corresponding abstraction plus the cost model
//! used by the performance harness:
//!
//! * [`FileSystem`] / [`FileHandle`] — positioned read/write/sync over
//!   named files, one instance per I/O node;
//! * [`MemFs`] — in-memory backend for deterministic tests;
//! * [`LocalFs`] — real files under a root directory (the examples use
//!   it; integration tests verify on-disk traditional order);
//! * [`SubmitFs`] — real files behind an io_uring-style submission
//!   queue: writes are queued and completed by a pool of completion
//!   threads, so the disk stage can run ahead of the device; paired
//!   with [`SyncPolicy`] for per-write / per-file / per-collective
//!   fsync semantics;
//! * [`NullFs`] — the paper's "infinitely fast disk": the same trick the
//!   authors used of commenting out the file-system calls, packaged as a
//!   backend that discards writes and fabricates reads;
//! * [`ThrottledFs`] — the opposite: a decorator that makes any backend
//!   take realistic device time per access (including the Table 1 AIX
//!   disk as wall-clock time), so disk/exchange overlap is measurable
//!   on fast modern storage;
//! * [`IoStats`] — per-backend operation counters with *sequentiality
//!   accounting*: every positioned access is classified as sequential
//!   (continues the previous access on that handle) or as a seek. The
//!   whole point of server-directed I/O is to turn collective requests
//!   into sequential file access, and this is how the test suite proves
//!   it does;
//! * [`AixModel`] — the calibrated AIX file-system cost curve from the
//!   paper's Table 1, used by `panda-model` to convert the byte stream of
//!   a simulated run into elapsed time.
//!
//! ## Observability
//!
//! Every backend reports its accesses through the unified
//! [`panda_obs::Recorder`] API: `FsRead` / `FsWrite` / `FsSync` events
//! carrying offset, size, sequentiality, and (when a recorder is
//! attached) per-call device time. Attach one with the `with_recorder`
//! constructors or [`FileSystem::set_recorder`]; [`IoStats`] is a thin
//! adapter over the same event stream.

#![warn(missing_docs)]

pub mod aix;
pub mod error;
pub mod local;
pub mod mem;
pub mod null;
mod obs;
pub mod stats;
pub mod submit;
pub mod throttle;
pub mod traits;

pub use aix::AixModel;
pub use error::FsError;
pub use local::LocalFs;
pub use mem::MemFs;
pub use null::NullFs;
pub use stats::IoStats;
pub use submit::SubmitFs;
pub use throttle::ThrottledFs;
pub use traits::{FileHandle, FileSystem, SyncPolicy};
