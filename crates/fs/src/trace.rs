//! Bounded access traces (deprecated).
//!
//! Beyond aggregate counters, it is often useful to *see* the access
//! pattern an I/O strategy produced — the paper's whole argument is
//! about the difference between "1 MB sequential writes" and "small
//! strided writes arriving in random order". A [`TraceLog`] records the
//! first `capacity` positioned accesses on a backend (offset, length,
//! direction, sequential-or-seek) for inspection by tests, examples,
//! and tools.
//!
//! **Deprecated:** the unified observability layer subsumes this.
//! Attach a [`panda_obs::TimelineRecorder`] (e.g. via
//! `MemFs::with_recorder` or `FileSystem::set_recorder`) and read
//! `FsRead`/`FsWrite`/`FsSync` events from its timeline instead — same
//! information, plus timing, shared with every other layer. These shims
//! remain for one release so existing consumers migrate gradually.

#![allow(deprecated)]

use parking_lot::Mutex;

/// Direction of a traced access.
#[deprecated(since = "0.2.0", note = "use panda_obs::EventKind instead")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A positioned read.
    Read,
    /// A positioned write.
    Write,
    /// A sync/flush.
    Sync,
}

/// One traced access.
#[deprecated(since = "0.2.0", note = "use panda_obs::TimelineEvent instead")]
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Read, write, or sync.
    pub kind: TraceKind,
    /// File the access targeted.
    pub file: String,
    /// Byte offset (0 for sync).
    pub offset: u64,
    /// Length in bytes (0 for sync).
    pub len: usize,
    /// Whether the access continued the previous one on its handle.
    pub sequential: bool,
}

impl TraceEntry {
    /// Render like `W field.s0 @4096+1024 seq` for logs.
    pub fn display(&self) -> String {
        let k = match self.kind {
            TraceKind::Read => "R",
            TraceKind::Write => "W",
            TraceKind::Sync => "S",
        };
        format!(
            "{k} {} @{}+{} {}",
            self.file,
            self.offset,
            self.len,
            if self.sequential { "seq" } else { "SEEK" }
        )
    }
}

/// A bounded, shared access log. Recording stops (but counting in
/// [`crate::IoStats`] continues) once `capacity` entries are held, so
/// tracing a large run is safe.
#[deprecated(since = "0.2.0", note = "use panda_obs::TimelineRecorder instead")]
#[derive(Debug)]
pub struct TraceLog {
    entries: Mutex<Vec<TraceEntry>>,
    capacity: usize,
}

impl TraceLog {
    /// A log that keeps at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        TraceLog {
            entries: Mutex::new(Vec::new()),
            capacity,
        }
    }

    /// Record an entry if capacity remains.
    pub fn record(&self, entry: TraceEntry) {
        let mut entries = self.entries.lock();
        if entries.len() < self.capacity {
            entries.push(entry);
        }
    }

    /// Snapshot the recorded entries.
    pub fn entries(&self) -> Vec<TraceEntry> {
        self.entries.lock().clone()
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True iff nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all recorded entries (capacity is retained).
    pub fn clear(&self) {
        self.entries.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(offset: u64, sequential: bool) -> TraceEntry {
        TraceEntry {
            kind: TraceKind::Write,
            file: "f".to_string(),
            offset,
            len: 8,
            sequential,
        }
    }

    #[test]
    fn records_up_to_capacity() {
        let log = TraceLog::new(2);
        assert!(log.is_empty());
        log.record(entry(0, true));
        log.record(entry(8, true));
        log.record(entry(16, true)); // dropped
        assert_eq!(log.len(), 2);
        assert_eq!(log.entries()[1].offset, 8);
    }

    #[test]
    fn clear_resets() {
        let log = TraceLog::new(4);
        log.record(entry(0, true));
        log.clear();
        assert!(log.is_empty());
        log.record(entry(4, false));
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn display_is_readable() {
        let e = entry(4096, false);
        assert_eq!(e.display(), "W f @4096+8 SEEK");
        let s = TraceEntry {
            kind: TraceKind::Sync,
            file: "x".into(),
            offset: 0,
            len: 0,
            sequential: true,
        };
        assert!(s.display().starts_with("S x"));
    }
}
