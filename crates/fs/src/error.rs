//! File-system errors.

use std::fmt;

/// Errors raised by a [`crate::FileSystem`] backend.
#[derive(Debug)]
pub enum FsError {
    /// The named file does not exist.
    NotFound {
        /// The missing path.
        path: String,
    },
    /// A read extended past the end of the file.
    ReadPastEnd {
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: usize,
        /// Actual file length.
        file_len: u64,
    },
    /// A path escaped the backend's root or contained forbidden
    /// components.
    InvalidPath {
        /// The offending path.
        path: String,
    },
    /// An underlying OS error (LocalFs only).
    Io(std::io::Error),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound { path } => write!(f, "file not found: {path}"),
            FsError::ReadPastEnd {
                offset,
                len,
                file_len,
            } => write!(
                f,
                "read of {len} bytes at offset {offset} past end of {file_len}-byte file"
            ),
            FsError::InvalidPath { path } => write!(f, "invalid path: {path}"),
            FsError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for FsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FsError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FsError {
    fn from(e: std::io::Error) -> Self {
        FsError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(FsError::NotFound { path: "a/b".into() }
            .to_string()
            .contains("a/b"));
        let e = FsError::ReadPastEnd {
            offset: 10,
            len: 5,
            file_len: 12,
        };
        assert!(e.to_string().contains("12"));
    }
}
