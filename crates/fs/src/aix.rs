//! Calibrated AIX file-system cost model (Table 1 of the paper).
//!
//! The NAS SP2's per-node disks had a 3.0 MB/s peak transfer rate; going
//! through the AIX file system with 1 MB requests, the paper measured
//! 2.85 MB/s for reads and 2.23 MB/s for writes. We model one positioned
//! access of `n` bytes as
//!
//! ```text
//! t(n) = c_op + n / raw_bandwidth        (+ seek penalty if non-sequential)
//! ```
//!
//! and calibrate the per-operation overhead `c_op` so that the modeled
//! throughput at the paper's 1 MB reference request equals the measured
//! peak exactly. This reproduces the paper's observation that "the
//! underlying AIX file system throughput declines when writing a small
//! file with write size less than 1 MB": a fixed overhead hits small
//! requests proportionally harder, and it hits writes much harder than
//! reads (AIX write-behind and allocation overheads were large).
//!
//! All times are virtual nanoseconds; the model performs no I/O.

/// One binary megabyte, the paper's reference request size.
pub const MB: f64 = 1024.0 * 1024.0;

/// Direction of an access, for cost lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoDirection {
    /// A file-system read.
    Read,
    /// A file-system write.
    Write,
}

/// The calibrated cost curve of one I/O node's AIX file system.
///
/// ```
/// use panda_fs::aix::{AixModel, IoDirection};
/// let m = AixModel::nas_sp2();
/// // Calibrated to Table 1's measured peaks at 1 MB requests ...
/// assert!((m.peak_mbs(IoDirection::Read) - 2.85).abs() < 1e-9);
/// assert!((m.peak_mbs(IoDirection::Write) - 2.23).abs() < 1e-9);
/// // ... and small writes pay the paper's small-request penalty.
/// assert!(m.throughput_mbs(64 << 10, IoDirection::Write) < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AixModel {
    /// Raw sequential disk bandwidth, bytes/second.
    pub raw_bandwidth: f64,
    /// Fixed overhead per read operation, seconds.
    pub read_op_overhead: f64,
    /// Fixed overhead per write operation, seconds.
    pub write_op_overhead: f64,
    /// Average seek penalty for a non-sequential access, seconds.
    pub seek_penalty: f64,
}

impl AixModel {
    /// The NAS SP2 configuration from Table 1: 3.0 MB/s raw disk,
    /// overheads calibrated to the measured 2.85 / 2.23 MB/s peaks at
    /// 1 MB requests, and a 20 ms average seek (typical for the era's
    /// SCSI disks; used only by the non-sequential baselines).
    pub fn nas_sp2() -> Self {
        let raw = 3.0 * MB;
        let measured_read = 2.85 * MB;
        let measured_write = 2.23 * MB;
        AixModel {
            raw_bandwidth: raw,
            read_op_overhead: MB / measured_read - MB / raw,
            write_op_overhead: MB / measured_write - MB / raw,
            seek_penalty: 0.020,
        }
    }

    /// Time for one sequential access of `bytes`, in seconds.
    pub fn access_time(&self, bytes: usize, dir: IoDirection) -> f64 {
        let overhead = match dir {
            IoDirection::Read => self.read_op_overhead,
            IoDirection::Write => self.write_op_overhead,
        };
        overhead + bytes as f64 / self.raw_bandwidth
    }

    /// Time for one access of `bytes`, in virtual nanoseconds, including
    /// the seek penalty when `sequential` is false.
    pub fn access_time_ns(&self, bytes: usize, dir: IoDirection, sequential: bool) -> u64 {
        let mut t = self.access_time(bytes, dir);
        if !sequential {
            t += self.seek_penalty;
        }
        (t * 1e9).round() as u64
    }

    /// Modeled throughput in MB/s for back-to-back sequential accesses of
    /// `bytes` each.
    pub fn throughput_mbs(&self, bytes: usize, dir: IoDirection) -> f64 {
        bytes as f64 / MB / self.access_time(bytes, dir)
    }

    /// The normalization baseline the paper uses: throughput at the
    /// reference 1 MB request size.
    pub fn peak_mbs(&self, dir: IoDirection) -> f64 {
        self.throughput_mbs(1 << 20, dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_reproduces_table1_peaks() {
        let m = AixModel::nas_sp2();
        assert!((m.peak_mbs(IoDirection::Read) - 2.85).abs() < 1e-9);
        assert!((m.peak_mbs(IoDirection::Write) - 2.23).abs() < 1e-9);
    }

    #[test]
    fn throughput_declines_below_1mb() {
        let m = AixModel::nas_sp2();
        let w_1mb = m.throughput_mbs(1 << 20, IoDirection::Write);
        let w_512k = m.throughput_mbs(1 << 19, IoDirection::Write);
        let w_64k = m.throughput_mbs(1 << 16, IoDirection::Write);
        assert!(w_512k < w_1mb);
        assert!(w_64k < w_512k);
        // Writes decline faster than reads (bigger fixed overhead).
        let r_ratio = m.throughput_mbs(1 << 19, IoDirection::Read)
            / m.throughput_mbs(1 << 20, IoDirection::Read);
        let w_ratio = w_512k / w_1mb;
        assert!(w_ratio < r_ratio);
    }

    #[test]
    fn large_requests_approach_raw_bandwidth() {
        let m = AixModel::nas_sp2();
        // With one huge request the fixed overhead amortizes away.
        let t = m.throughput_mbs(64 << 20, IoDirection::Read);
        assert!(t > 2.95 && t <= 3.0);
    }

    #[test]
    fn seek_penalty_only_on_nonsequential() {
        let m = AixModel::nas_sp2();
        let seq = m.access_time_ns(4096, IoDirection::Read, true);
        let rnd = m.access_time_ns(4096, IoDirection::Read, false);
        assert_eq!(rnd - seq, 20_000_000);
    }

    #[test]
    fn access_time_is_monotone_in_size() {
        let m = AixModel::nas_sp2();
        let mut prev = 0u64;
        for kb in [1usize, 4, 64, 256, 1024, 4096] {
            let t = m.access_time_ns(kb << 10, IoDirection::Write, true);
            assert!(t > prev);
            prev = t;
        }
    }
}
